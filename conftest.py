"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(the offline CI environment lacks the ``wheel`` package needed for PEP 517
editable installs, so ``python setup.py develop`` or this path shim is used).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
