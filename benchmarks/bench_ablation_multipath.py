"""Ablation benchmark: the intermediate "k given paths" model.

The paper's Section 2 points out that the LP framework handles the case
"several paths are given, and we can use them together" between the single
path and free path extremes.  This ablation sweeps the number of candidate
paths per flow (k = 1, 2, 3) on a SWAN workload and verifies that the LP
objective and the heuristic schedule interpolate monotonically between the
single path and free path models.
"""

import pytest

from conftest import BENCH_SCALE
from repro.core.heuristic import lp_heuristic_schedule
from repro.core.multipath import solve_multipath_lp
from repro.core.timeindexed import solve_time_indexed_lp
from repro.network.topologies import swan_topology
from repro.workloads.generator import WorkloadSpec, generate_instance

K_VALUES = (1, 2, 3)


def run_sweep():
    graph = swan_topology()
    num_coflows = max(2, int(round(10 * BENCH_SCALE)))
    spec = WorkloadSpec(
        profile="TPC-DS", num_coflows=num_coflows, seed=77, demand_scale=1.5
    )
    instance = generate_instance(graph, spec, model="single_path", rng=77)
    single = solve_time_indexed_lp(instance)
    free = solve_time_indexed_lp(instance.with_model("free_path"), grid=single.grid)
    rows = {
        "single_path": {
            "bound": single.objective,
            "heuristic": lp_heuristic_schedule(single).weighted_completion_time(),
        },
        "free_path": {
            "bound": free.objective,
            "heuristic": lp_heuristic_schedule(free).weighted_completion_time(),
        },
    }
    for k in K_VALUES:
        solution = solve_multipath_lp(instance, k=k, grid=single.grid)
        rows[f"multipath(k={k})"] = {
            "bound": solution.objective,
            "heuristic": lp_heuristic_schedule(solution).weighted_completion_time(),
        }
    return rows


@pytest.mark.benchmark(group="ablation-multipath")
def test_ablation_multipath(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nmodel               LP bound    heuristic")
    for name, row in rows.items():
        print(f"{name:<18s} {row['bound']:>10.1f} {row['heuristic']:>12.1f}")

    free_bound = rows["free_path"]["bound"]
    single_bound = rows["single_path"]["bound"]
    bounds = [rows[f"multipath(k={k})"]["bound"] for k in K_VALUES]
    # More candidate paths never hurt, and the sweep is sandwiched between
    # the two extreme models.
    for earlier, later in zip(bounds, bounds[1:]):
        assert later <= earlier + 1e-6
    for bound in bounds:
        assert bound >= free_bound - 1e-6
    # With the pinned path always among the candidates, even k = 1 is a
    # relaxation of the single path model.
    assert bounds[0] <= single_bound + 1e-6
    # By k = 3 the gap to the free path model has closed substantially.
    assert bounds[-1] <= free_bound + 0.25 * max(single_bound - free_bound, 1e-9) + 1e-6
