"""Benchmark: paper Figure 7 — free path model on G-Scale (weighted).

Same series and checks as Figure 6, on Google's larger G-Scale WAN.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="fig07-freepath-gscale")
def test_fig07_freepath_gscale(benchmark):
    result = run_and_report(benchmark, "fig07", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        assert row[F.SERIES_HEURISTIC] >= bound - 1e-6
        assert row[F.SERIES_HEURISTIC] <= row[F.SERIES_BEST_LAMBDA] + 1e-9
        assert row[F.SERIES_BEST_LAMBDA] <= row[F.SERIES_AVERAGE_LAMBDA] + 1e-9
        assert row[F.SERIES_AVERAGE_LAMBDA] <= 2.1 * bound
        assert row[F.SERIES_HEURISTIC] <= 1.5 * bound
