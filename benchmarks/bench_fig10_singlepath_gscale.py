"""Benchmark: paper Figure 10 — single path model on G-Scale (weighted).

Same series and checks as Figure 9, on the larger G-Scale WAN.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="fig10-singlepath-gscale")
def test_fig10_singlepath_gscale(benchmark):
    result = run_and_report(benchmark, "fig10", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        assert row[F.SERIES_HEURISTIC] >= bound - 1e-6
        assert row[F.SERIES_JAHANJOU] >= bound - 1e-6
        assert row[F.SERIES_HEURISTIC] < row[F.SERIES_JAHANJOU]
        assert row[F.SERIES_HEURISTIC] <= 1.6 * bound
