"""Ablation benchmark: LP-based scheduling vs simple greedy heuristics.

Not a paper figure — an extra comparison point showing what the LP machinery
buys over the priority heuristics practitioners might reach for first
(FIFO and weighted shortest-job-first), on contended SWAN workloads.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="ablation-baselines")
def test_ablation_baselines(benchmark):
    result = run_and_report(benchmark, "ablation_baselines", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        heuristic = row[F.SERIES_HEURISTIC]
        assert heuristic >= bound - 1e-6
        # The LP heuristic is never worse than FIFO beyond slotting noise and
        # is close to the lower bound.
        assert heuristic <= row[F.SERIES_FIFO] * 1.1
        assert heuristic <= 1.6 * bound
        # The greedy baselines are real schedules: no better than half the
        # slotted LP bound (they run in continuous time).
        assert row[F.SERIES_FIFO] >= 0.5 * bound
        assert row[F.SERIES_WSJF] >= 0.5 * bound
