"""Benchmark: the paper's worked example (Figures 2-4).

Regenerates the toy instance whose optimal objectives the paper states
explicitly — 7 for the single path model (Figure 3) and 5 for the free path
model (Figure 4) — and checks that the LP heuristic reproduces both numbers
exactly.
"""

import pytest

from repro import Coflow, CoflowInstance, Flow, paper_example_topology, solve_coflow_schedule


def build_instances():
    graph = paper_example_topology()
    coflows = [
        Coflow([Flow("v1", "t", 1.0, path=("v1", "t"))], name="red"),
        Coflow([Flow("v2", "t", 1.0, path=("v2", "t"))], name="green"),
        Coflow([Flow("v3", "t", 1.0, path=("v3", "t"))], name="orange"),
        Coflow([Flow("s", "t", 3.0, path=("s", "v2", "t"))], name="blue"),
    ]
    single = CoflowInstance(graph, coflows, model="single_path", name="figure3")
    free = CoflowInstance(graph, coflows, model="free_path", name="figure4")
    return single, free


def solve_both():
    single, free = build_instances()
    sp = solve_coflow_schedule(single, algorithm="lp-heuristic", num_slots=8)
    fp = solve_coflow_schedule(free, algorithm="lp-heuristic", num_slots=8)
    return sp, fp


@pytest.mark.benchmark(group="fig02-example")
def test_fig02_paper_example(benchmark):
    sp, fp = benchmark.pedantic(solve_both, rounds=1, iterations=1)
    print(
        f"\nsingle path: objective {sp.objective:.1f} (paper optimum 7), "
        f"LP bound {sp.lower_bound:.2f}"
    )
    print(
        f"free path:   objective {fp.objective:.1f} (paper optimum 5), "
        f"LP bound {fp.lower_bound:.2f}"
    )
    assert sp.objective == pytest.approx(7.0)
    assert fp.objective == pytest.approx(5.0)
    assert fp.objective < sp.objective
