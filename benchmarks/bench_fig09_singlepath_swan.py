"""Benchmark: paper Figure 9 — single path model on SWAN (weighted).

Regenerates the comparison of the time-indexed LP (bound + heuristic), the
interval-indexed LP at ε = 0.2 (bound + heuristic) and the Jahanjou et al.
baseline, and asserts the paper's central claim for this figure: the
time-indexed LP heuristic improves significantly on Jahanjou et al.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="fig09-singlepath-swan")
def test_fig09_singlepath_swan(benchmark):
    result = run_and_report(benchmark, "fig09", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        assert row[F.SERIES_HEURISTIC] >= bound - 1e-6
        assert row[F.SERIES_INTERVAL_HEURISTIC] >= row[F.SERIES_INTERVAL_LP_BOUND] - 1e-6
        assert row[F.SERIES_JAHANJOU] >= bound - 1e-6
        # Paper headline: "we significantly improved over Jahanjou et al.".
        assert row[F.SERIES_HEURISTIC] < row[F.SERIES_JAHANJOU]
        # The heuristic itself stays within a small factor of the bound.
        assert row[F.SERIES_HEURISTIC] <= 1.6 * bound
