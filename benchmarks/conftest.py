"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one figure (or ablation table) of the
paper.  Because every run involves solving LPs, benchmarks execute exactly
one round/iteration by default; they measure end-to-end experiment time and
— more importantly — print the regenerated table and assert the qualitative
"shape checks" recorded in EXPERIMENTS.md.

The workload scale can be adjusted through the ``REPRO_BENCH_SCALE``
environment variable (default 1.0 = the repository's default experiment
sizes; larger values approach the paper's original 200-job traces at the
cost of much longer LP solves).
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Scale multiplier applied to every benchmark experiment.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_and_report(benchmark, experiment_id: str, scale: float):
    """Run one experiment under pytest-benchmark and print its table.

    Returns the :class:`~repro.experiments.runner.ExperimentResult` so the
    calling benchmark can assert its shape checks.
    """
    from repro.experiments import format_result_table, get_experiment, run_experiment

    config = get_experiment(experiment_id)
    result = benchmark.pedantic(
        run_experiment,
        args=(config,),
        kwargs={"scale": scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result_table(result))
    return result
