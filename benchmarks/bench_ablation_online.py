"""Ablation benchmark: online scheduling via geometric batching (Section 7 outlook).

The paper's conclusion points to online coflow scheduling as the next
challenge, citing the offline-to-online batching framework.  This benchmark
compares, on a bursty FB workload with spread-out release times:

* the clairvoyant offline LP heuristic (knows all releases up front),
* the online batching framework driving that same offline algorithm, and
* a non-clairvoyant greedy online baseline (weighted SJF at every event),

and checks the structural expectations: the online algorithms never beat the
offline LP bound by more than slotting noise, and the batching framework
stays within a small constant factor of the offline schedule.
"""

import pytest

from conftest import BENCH_SCALE
from repro.core.heuristic import lp_heuristic_schedule
from repro.core.timeindexed import solve_time_indexed_lp
from repro.network.topologies import swan_topology
from repro.online.batch import greedy_online_schedule, online_batch_schedule
from repro.workloads.generator import WorkloadSpec, generate_instance


def run_comparison():
    graph = swan_topology()
    num_coflows = max(3, int(round(10 * BENCH_SCALE)))
    spec = WorkloadSpec(
        profile="FB",
        num_coflows=num_coflows,
        seed=123,
        demand_scale=1.5,
        release_spread=2.0,  # spread arrivals so batching actually matters
    )
    instance = generate_instance(graph, spec, model="free_path", rng=123)
    lp = solve_time_indexed_lp(instance)
    offline = lp_heuristic_schedule(lp).weighted_completion_time()
    online = online_batch_schedule(instance, rng=0)
    greedy = greedy_online_schedule(instance)
    return {
        "lp_bound": lp.objective,
        "offline_heuristic": offline,
        "online_batch": online.weighted_completion_time,
        "online_batches": online.num_batches,
        "online_greedy": greedy.weighted_completion_time,
    }


@pytest.mark.benchmark(group="ablation-online")
def test_ablation_online(benchmark):
    row = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print("\nLP lower bound            : %10.1f" % row["lp_bound"])
    print("offline LP heuristic      : %10.1f" % row["offline_heuristic"])
    print(
        "online batching (LP)      : %10.1f  (%d batches)"
        % (row["online_batch"], row["online_batches"])
    )
    print("online greedy (WSJF)      : %10.1f" % row["online_greedy"])

    # Offline knowledge can only help.
    assert row["online_batch"] >= row["offline_heuristic"] - 1e-6
    # The doubling framework's constant: generous envelope of 4x offline.
    assert row["online_batch"] <= 4.0 * row["offline_heuristic"]
    # The greedy baseline runs in continuous time; it cannot beat half the
    # slotted LP bound and should stay within 3x of the offline heuristic.
    assert row["online_greedy"] >= 0.5 * row["lp_bound"]
    assert row["online_greedy"] <= 3.0 * row["offline_heuristic"]
    # Batching actually formed more than one batch on this spread-out workload.
    assert row["online_batches"] >= 2
