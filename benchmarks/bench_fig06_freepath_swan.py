"""Benchmark: paper Figure 6 — free path model on SWAN (weighted).

Regenerates the four-workload comparison of the time-indexed LP lower bound,
the LP heuristic (λ = 1), the best sampled λ and the average λ of the
Stretch algorithm, and asserts the paper's qualitative findings:

* the LP objective lower-bounds every algorithm,
* the λ = 1 heuristic is the strongest practical choice and stays close to
  the bound,
* the expected Stretch objective respects the 2-approximation of Theorem 4.4.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="fig06-freepath-swan")
def test_fig06_freepath_swan(benchmark):
    result = run_and_report(benchmark, "fig06", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        assert row[F.SERIES_HEURISTIC] >= bound - 1e-6
        assert row[F.SERIES_BEST_LAMBDA] >= bound - 1e-6
        assert row[F.SERIES_BEST_LAMBDA] <= row[F.SERIES_AVERAGE_LAMBDA] + 1e-9
        # Paper finding: lambda = 1 is the best choice across all experiments.
        assert row[F.SERIES_HEURISTIC] <= row[F.SERIES_BEST_LAMBDA] + 1e-9
        # Theorem 4.4 (expectation over lambda), with slotting slack.
        assert row[F.SERIES_AVERAGE_LAMBDA] <= 2.1 * bound
        # Paper finding: the heuristic tracks the bound closely.
        assert row[F.SERIES_HEURISTIC] <= 1.5 * bound
