"""Benchmark: paper Figure 11 — free path model, unweighted, SWAN, vs Terra.

Regenerates the unweighted (total completion time) comparison against Terra's
offline SRTF algorithm.  The paper observes that Terra is competitive — even
slightly better than the slotted LP heuristic on some workloads — because it
schedules in continuous time while the LP pays slot-granularity overheads.
The shape check therefore requires the two to be within a modest factor of
each other rather than a strict ordering.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="fig11-terra-swan")
def test_fig11_terra_swan(benchmark):
    result = run_and_report(benchmark, "fig11", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        heuristic = row[F.SERIES_HEURISTIC]
        terra = row[F.SERIES_TERRA]
        assert heuristic >= bound - 1e-6
        assert row[F.SERIES_BEST_LAMBDA] <= row[F.SERIES_AVERAGE_LAMBDA] + 1e-9
        # Terra operates in continuous time: it may dip below the slotted LP
        # bound but stays in the same ballpark as the heuristic (paper: "we
        # are close to what Terra gets").
        assert terra <= 1.5 * heuristic
        assert heuristic <= 2.0 * terra
