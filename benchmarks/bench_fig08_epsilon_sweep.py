"""Benchmark: paper Figure 8 — impact of the time-interval parameter ε.

Sweeps the geometric-grid parameter ε for the free path model on SWAN with
the FB workload and checks the paper's observations: growing ε shrinks the
LP (fewer variables, faster solves) while the quality of both the bound and
the heuristic degrades.
"""

import numpy as np
import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="fig08-epsilon-sweep")
def test_fig08_epsilon_sweep(benchmark):
    result = run_and_report(benchmark, "fig08", BENCH_SCALE)
    columns = list(result.values.keys())
    eps_values = [float(c.split("=")[1]) for c in columns]
    order = np.argsort(eps_values)

    variables = np.array(
        [result.values[columns[i]]["lp_variables"] for i in order]
    )
    heuristic = np.array(
        [result.values[columns[i]][F.SERIES_INTERVAL_HEURISTIC] for i in order]
    )
    bound = np.array(
        [result.values[columns[i]][F.SERIES_INTERVAL_LP_BOUND] for i in order]
    )

    # LP size shrinks monotonically as epsilon grows.
    assert np.all(np.diff(variables) <= 0)
    # The heuristic never beats the corresponding LP bound.
    assert np.all(heuristic >= bound - 1e-6)
    # Quality degrades overall: the coarsest grid is no better than the finest.
    assert heuristic[-1] >= heuristic[0] - 1e-6
    # Every heuristic value must remain a valid (>= bound) schedule value and
    # the degradation from finest to coarsest should be visible but bounded.
    assert heuristic[-1] <= 5.0 * heuristic[0]
