"""Standalone entry point for the performance harness.

Thin wrapper over :mod:`repro.perf.harness` so the harness can be run
directly from a checkout without installing the package:

    python benchmarks/harness.py --quick

The same harness backs the ``repro bench`` CLI command; see the module
docstring of :mod:`repro.perf.harness` for the scenario list and the
``BENCH_<date>.json`` schema.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    from repro.cli import main as cli_main

    return cli_main(["bench", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":
    sys.exit(main())
