"""Ablation benchmark: idle-slot compaction (Section 6.1 "Rounding").

The raw Stretch schedule leaves slots idle once flows finish early (paper
Figure 5); the implementation moves whole slots into earlier idle slots when
release times allow.  This ablation measures the Stretch algorithm with and
without that compaction and checks that compaction never hurts and typically
helps.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="ablation-compaction")
def test_ablation_compaction(benchmark):
    result = run_and_report(benchmark, "ablation_compaction", BENCH_SCALE)
    helped_somewhere = False
    for workload, row in result.values.items():
        with_compaction = row[F.SERIES_AVERAGE_LAMBDA]
        without = row[F.SERIES_STRETCH_NO_COMPACTION]
        bound = row[F.SERIES_LP_BOUND]
        # Both variants are valid schedules (>= the LP bound); compaction can
        # only move transmissions earlier, so the averaged objective with
        # compaction must not exceed the one without by more than sampling
        # noise (the two series use independent lambda draws).
        assert with_compaction >= bound - 1e-6
        assert without >= bound - 1e-6
        assert with_compaction <= without * 1.05
        if with_compaction < without * 0.999:
            helped_somewhere = True
    assert helped_somewhere, "compaction should improve at least one workload"
