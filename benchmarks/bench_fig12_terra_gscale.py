"""Benchmark: paper Figure 12 — free path model, unweighted, G-Scale, vs Terra.

Same series and checks as Figure 11 on Google's G-Scale WAN.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="fig12-terra-gscale")
def test_fig12_terra_gscale(benchmark):
    result = run_and_report(benchmark, "fig12", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        heuristic = row[F.SERIES_HEURISTIC]
        terra = row[F.SERIES_TERRA]
        assert heuristic >= bound - 1e-6
        assert terra <= 1.5 * heuristic
        assert heuristic <= 2.0 * terra
