"""Ablation benchmark: LP size and solve time vs grid granularity and model.

The paper's Section 6.1 discusses the central engineering trade-off of the
approach: finer time slots give better schedules but larger LPs.  This
benchmark measures, on one SWAN workload, how the number of LP variables and
the HiGHS solve time scale across

* the two transmission models (single path vs free path), and
* uniform grids of decreasing slot length vs geometric grids of growing ε,

and checks the structural expectations (free path LPs are larger than single
path LPs on the same instance; halving the slot length roughly doubles the
variable count; geometric grids are dramatically smaller).
"""

import time

import pytest

from conftest import BENCH_SCALE
from repro.core.timeindexed import build_time_indexed_lp, suggest_horizon
from repro.lp.solver import solve_lp
from repro.network.topologies import swan_topology
from repro.schedule.timegrid import TimeGrid
from repro.workloads.generator import WorkloadSpec, generate_instance


def measure():
    graph = swan_topology()
    num_coflows = max(2, int(round(8 * BENCH_SCALE)))
    spec = WorkloadSpec(
        profile="TPC-DS", num_coflows=num_coflows, seed=42, demand_scale=1.5
    )
    rows = []
    for model in ("single_path", "free_path"):
        instance = generate_instance(graph, spec, model=model, rng=42)
        base_slots = suggest_horizon(instance)
        grids = {
            "uniform(L=1)": TimeGrid.uniform(base_slots, 1.0),
            "uniform(L=0.5)": TimeGrid.uniform(base_slots * 2, 0.5),
            "geometric(eps=0.2)": TimeGrid.geometric(base_slots, 0.2),
            "geometric(eps=0.5436)": TimeGrid.geometric(base_slots, 0.5436),
        }
        for grid_name, grid in grids.items():
            start = time.perf_counter()
            lp, _ = build_time_indexed_lp(instance, grid)
            build_seconds = time.perf_counter() - start
            result = solve_lp(lp, require_optimal=True)
            rows.append(
                {
                    "model": model,
                    "grid": grid_name,
                    "slots": grid.num_slots,
                    "variables": lp.num_variables,
                    "constraints": lp.num_constraints,
                    "build_seconds": build_seconds,
                    "solve_seconds": result.solve_seconds,
                    "objective": float(result.objective),
                }
            )
    return rows


@pytest.mark.benchmark(group="ablation-lp-scaling")
def test_ablation_lp_scaling(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\nmodel        grid                    slots   vars    constr  solve(s)")
    for row in rows:
        print(
            f"{row['model']:<12s} {row['grid']:<22s} {row['slots']:>5d} "
            f"{row['variables']:>7d} {row['constraints']:>7d} "
            f"{row['solve_seconds']:>8.3f}"
        )

    by_key = {(r["model"], r["grid"]): r for r in rows}
    for grid in ("uniform(L=1)", "uniform(L=0.5)"):
        # Free path LPs carry the per-edge variables and are therefore larger.
        assert (
            by_key[("free_path", grid)]["variables"]
            > by_key[("single_path", grid)]["variables"]
        )
    for model in ("single_path", "free_path"):
        fine = by_key[(model, "uniform(L=0.5)")]
        coarse = by_key[(model, "uniform(L=1)")]
        assert fine["variables"] > 1.5 * coarse["variables"]
        # Geometric grids are far smaller than uniform ones.
        geo = by_key[(model, "geometric(eps=0.5436)")]
        assert geo["variables"] < coarse["variables"]
        # Coarser grids never produce a larger LP than finer geometric grids.
        assert (
            by_key[(model, "geometric(eps=0.5436)")]["slots"]
            <= by_key[(model, "geometric(eps=0.2)")]["slots"]
        )
