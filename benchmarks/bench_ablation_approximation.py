"""Ablation benchmark: empirical check of the 2-approximation (Theorem 4.4).

Runs the Stretch algorithm with 20 λ samples across all four workloads on
SWAN and verifies that the *average* objective (an estimate of the
expectation the theorem bounds) stays below twice the LP lower bound, and
that the fixed choice λ = 1 (the heuristic) dominates the random choices in
practice — the two findings the paper highlights when discussing Figure 6.
"""

import pytest

from conftest import BENCH_SCALE, run_and_report
from repro.experiments import figures as F


@pytest.mark.benchmark(group="ablation-approximation")
def test_ablation_approximation(benchmark):
    result = run_and_report(benchmark, "ablation_approximation", BENCH_SCALE)
    for workload, row in result.values.items():
        bound = row[F.SERIES_LP_BOUND]
        assert row[F.SERIES_AVERAGE_LAMBDA] <= 2.1 * bound
        assert row[F.SERIES_BEST_LAMBDA] <= row[F.SERIES_AVERAGE_LAMBDA] + 1e-9
        assert row[F.SERIES_HEURISTIC] <= row[F.SERIES_BEST_LAMBDA] + 1e-9
        assert row[F.SERIES_HEURISTIC] >= bound - 1e-6
