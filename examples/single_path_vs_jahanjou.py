#!/usr/bin/env python3
"""Single path model: time-indexed LP scheduling vs Jahanjou et al.

Reproduces the comparison behind the paper's Figures 9-10 on one workload:
flows are pinned to random shortest paths on the SWAN WAN (exactly as the
paper's Section 6.2 does, since the traces carry no path information), and
the same instance is scheduled by

* the time-indexed LP heuristic and the Stretch algorithm (this paper), and
* the interval-indexed LP + α-point rounding of Jahanjou et al. (SPAA 2017),
  at both the ratio-optimising ε = 0.5436 and the finer ε = 0.2.

Run with::

    python examples/single_path_vs_jahanjou.py [num_coflows]
"""

import sys

from repro import api, swan_topology
from repro.workloads import WorkloadSpec, generate_instance


def main():
    num_coflows = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    graph = swan_topology()
    spec = WorkloadSpec(
        profile="FB",
        num_coflows=num_coflows,
        weighted=True,
        demand_scale=2.0,
        seed=7,
    )
    instance = generate_instance(graph, spec, model="single_path")
    print(f"instance: {instance}")
    print("every flow pinned to a uniformly random shortest path\n")

    heuristic = api.solve(instance, "lp-heuristic")
    stretch = api.solve(
        instance, "stretch-best", rng=0, num_samples=10,
        lp_solution=heuristic.lp_solution,
    )
    jahanjou_opt = api.solve(instance, "jahanjou")           # epsilon = 0.5436
    jahanjou_fine = api.solve(instance, "jahanjou", epsilon=0.2)

    rows = [
        ("Time indexed LP (lower bound)", heuristic.lower_bound),
        ("LP heuristic (lambda = 1)", heuristic.objective),
        ("Stretch (best of 10 lambdas)", stretch.objective),
        ("Jahanjou et al. (eps = 0.5436)", jahanjou_opt.objective),
        ("Jahanjou et al. (eps = 0.2)", jahanjou_fine.objective),
    ]
    width = max(len(name) for name, _ in rows)
    bound = heuristic.lower_bound
    print(f"{'algorithm'.ljust(width)} | weighted completion time | vs LP bound")
    print("-" * (width + 44))
    for name, value in rows:
        print(f"{name.ljust(width)} | {value:24.0f} | {value / bound:10.2f}x")

    print(
        "\nThe interval-aligned batching of the Jahanjou et al. rounding "
        "prevents fine-grained interleaving across coflows, which is exactly "
        "why the paper's Figures 9-10 show the time-indexed LP approach "
        "winning by a wide margin."
    )


if __name__ == "__main__":
    main()
