#!/usr/bin/env python3
"""Inter-datacenter WAN scenario: geo-distributed analytics on SWAN.

The paper's motivating scenario (Section 1): several geo-distributed
datacenters exchange large intermediate results of analytics / ML jobs over
a WAN, and an uncoordinated schedule inflates job completion times.  This
example builds a TPC-DS-style mix of jobs on Microsoft's SWAN topology and
compares:

* the LP lower bound (how well any scheduler could possibly do),
* the paper's LP-based heuristic and Stretch algorithm,
* Terra's offline SRTF algorithm (the prior art for the free path model),
* an uncoordinated FIFO baseline.

Run with::

    python examples/wan_transfer.py [num_coflows]
"""

import sys

from repro import api, swan_topology
from repro.workloads import WorkloadSpec, generate_instance


def main():
    num_coflows = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    graph = swan_topology()
    spec = WorkloadSpec(
        profile="TPC-DS",
        num_coflows=num_coflows,
        weighted=False,  # Terra's SRTF targets the unweighted objective
        demand_scale=3.0,
        release_spread=0.3,  # bursty arrivals -> real contention on the WAN
        seed=2019,
    )
    instance = generate_instance(graph, spec, model="free_path")
    print(f"instance: {instance}")
    print(f"total demand: {instance.total_demand():.1f} data units over "
          f"{instance.graph.num_edges} directed WAN links\n")

    # One call fans the instance across every algorithm; the uniform-grid LP
    # is solved once and shared by the LP-based ones.
    algorithms = ["lp-heuristic", "stretch-average", "terra", "weighted-sjf", "fifo"]
    reports = api.solve_many(
        [instance], algorithms, config=api.SolverConfig(rng=0, num_samples=10)
    )
    by_algorithm = {r.algorithm: r for r in reports}
    lp_bound = by_algorithm["lp-heuristic"].lower_bound

    rows = [
        ("LP lower bound", lp_bound),
        ("LP heuristic (lambda = 1)", by_algorithm["lp-heuristic"].objective),
        ("Stretch (average lambda)", by_algorithm["stretch-average"].objective),
        ("Terra (offline SRTF)", by_algorithm["terra"].objective),
        ("Weighted SJF", by_algorithm["weighted-sjf"].objective),
        ("FIFO (uncoordinated)", by_algorithm["fifo"].objective),
    ]
    width = max(len(name) for name, _ in rows)
    print(f"{'algorithm'.ljust(width)} | total completion time | vs LP bound")
    print("-" * (width + 40))
    for name, value in rows:
        ratio = value / lp_bound if lp_bound > 0 else float("inf")
        print(f"{name.ljust(width)} | {value:21.1f} | {ratio:10.2f}x")

    fifo_ratio = (
        by_algorithm["fifo"].objective / lp_bound if lp_bound > 0 else float("inf")
    )
    heuristic_ratio = (
        by_algorithm["lp-heuristic"].objective / lp_bound
        if lp_bound > 0
        else float("inf")
    )
    print(
        f"\nThe LP heuristic sits at {heuristic_ratio:.2f}x the lower bound while "
        f"the uncoordinated FIFO baseline pays {fifo_ratio:.2f}x — coordinating "
        "coflows (rather than individual flows) is what closes that gap, which "
        "is exactly the motivation the coflow abstraction was introduced for."
    )


if __name__ == "__main__":
    main()
