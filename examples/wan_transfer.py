#!/usr/bin/env python3
"""Inter-datacenter WAN scenario: geo-distributed analytics on SWAN.

The paper's motivating scenario (Section 1): several geo-distributed
datacenters exchange large intermediate results of analytics / ML jobs over
a WAN, and an uncoordinated schedule inflates job completion times.  This
example builds a TPC-DS-style mix of jobs on Microsoft's SWAN topology and
compares:

* the LP lower bound (how well any scheduler could possibly do),
* the paper's LP-based heuristic and Stretch algorithm,
* Terra's offline SRTF algorithm (the prior art for the free path model),
* an uncoordinated FIFO baseline.

Run with::

    python examples/wan_transfer.py [num_coflows]
"""

import sys

from repro import CoflowScheduler, swan_topology
from repro.baselines import fifo_schedule, terra_offline_schedule, weighted_sjf_schedule
from repro.workloads import WorkloadSpec, generate_instance


def main():
    num_coflows = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    graph = swan_topology()
    spec = WorkloadSpec(
        profile="TPC-DS",
        num_coflows=num_coflows,
        weighted=False,  # Terra's SRTF targets the unweighted objective
        demand_scale=3.0,
        release_spread=0.3,  # bursty arrivals -> real contention on the WAN
        seed=2019,
    )
    instance = generate_instance(graph, spec, model="free_path")
    print(f"instance: {instance}")
    print(f"total demand: {instance.total_demand():.1f} data units over "
          f"{instance.graph.num_edges} directed WAN links\n")

    scheduler = CoflowScheduler(instance, rng=0)
    lp_bound = scheduler.lower_bound
    heuristic = scheduler.heuristic()
    stretch = scheduler.stretch_evaluation(num_samples=10)
    terra = terra_offline_schedule(instance)
    fifo = fifo_schedule(instance)
    sjf = weighted_sjf_schedule(instance)

    rows = [
        ("LP lower bound", lp_bound),
        ("LP heuristic (lambda = 1)", heuristic.schedule.total_completion_time()),
        ("Stretch (average lambda)", float(
            sum(r.schedule.total_completion_time() for r in stretch.results)
            / stretch.num_samples
        )),
        ("Terra (offline SRTF)", terra.total_completion_time),
        ("Weighted SJF", sjf.total_completion_time),
        ("FIFO (uncoordinated)", fifo.total_completion_time),
    ]
    width = max(len(name) for name, _ in rows)
    print(f"{'algorithm'.ljust(width)} | total completion time | vs LP bound")
    print("-" * (width + 40))
    for name, value in rows:
        ratio = value / lp_bound if lp_bound > 0 else float("inf")
        print(f"{name.ljust(width)} | {value:21.1f} | {ratio:10.2f}x")

    fifo_ratio = fifo.total_completion_time / lp_bound if lp_bound > 0 else float("inf")
    heuristic_ratio = (
        heuristic.schedule.total_completion_time() / lp_bound if lp_bound > 0 else float("inf")
    )
    print(
        f"\nThe LP heuristic sits at {heuristic_ratio:.2f}x the lower bound while "
        f"the uncoordinated FIFO baseline pays {fifo_ratio:.2f}x — coordinating "
        "coflows (rather than individual flows) is what closes that gap, which "
        "is exactly the motivation the coflow abstraction was introduced for."
    )


if __name__ == "__main__":
    main()
