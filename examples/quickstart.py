#!/usr/bin/env python3
"""Quickstart: schedule the paper's own example coflow instance.

This script reproduces the worked example of the paper's Figures 2-4: a
5-node network, four coflows, and the difference between the single path
model (optimal total completion time 7) and the free path model (optimal 5).

Run with::

    python examples/quickstart.py
"""

from repro import Coflow, CoflowInstance, Flow, api, paper_example_topology
from repro.schedule import render_gantt


def build_coflows():
    """The four coflows of the paper's Figure 2.

    Three unit-size coflows from v1/v2/v3 to t plus one size-3 coflow from s
    to t.  Paths (used only by the single path model) follow Figure 3, where
    the blue coflow shares the v2->t edge with the green one.
    """
    return [
        Coflow([Flow("v1", "t", 1.0, path=("v1", "t"))], name="red"),
        Coflow([Flow("v2", "t", 1.0, path=("v2", "t"))], name="green"),
        Coflow([Flow("v3", "t", 1.0, path=("v3", "t"))], name="orange"),
        Coflow([Flow("s", "t", 3.0, path=("s", "v2", "t"))], name="blue"),
    ]


def report(title, result):
    print(f"\n=== {title} ===")
    print(f"LP lower bound        : {result.lower_bound:.3f}")
    print(f"schedule objective    : {result.objective:.3f}")
    print(f"gap to LP lower bound : {result.gap:.3f}x")
    for coflow, time in zip(result.instance.coflows, result.coflow_completion_times):
        print(f"  coflow {coflow.name:<7s} completes at t = {time:g}")
    print(render_gantt(result.schedule, per_coflow=True, max_slots=12))


def main():
    graph = paper_example_topology()
    coflows = build_coflows()

    # --- single path model: every flow is pinned to its Figure 3 path. ----
    single = CoflowInstance(graph, coflows, model="single_path", name="figure3")
    result_sp = api.solve(single, "lp-heuristic", num_slots=8)
    report("Single path model (paper Figure 3, optimum = 7)", result_sp)

    # --- free path model: flows may split over all available paths. -------
    free = CoflowInstance(graph, coflows, model="free_path", name="figure4")
    result_fp = api.solve(free, "lp-heuristic", num_slots=8)
    report("Free path model (paper Figure 4, optimum = 5)", result_fp)

    # --- the randomized Stretch algorithm (Theorem 4.4) -------------------
    result_stretch = api.solve(
        free, "stretch-average", num_slots=8, rng=0, num_samples=20
    )
    evaluation = result_stretch.extras["evaluation"]
    print("\n=== Stretch algorithm on the free path instance ===")
    print(f"LP lower bound                 : {result_stretch.lower_bound:.3f}")
    print(f"average objective over 20 λ    : {evaluation.average_objective:.3f}")
    print(f"best λ objective ({evaluation.best_lambda:.2f})       : {evaluation.best_objective:.3f}")
    print(
        "expected objective stays below 2x the LP bound, as Theorem 4.4 "
        "guarantees."
    )


if __name__ == "__main__":
    main()
