#!/usr/bin/env python3
"""MapReduce shuffle scenario: the classic switch-model coflow setting.

The original coflow abstraction (Chowdhury & Stoica) models a cluster as a
giant non-blocking switch: every machine has bounded ingress/egress rates and
a shuffle is a coflow of mapper->reducer flows.  The paper's footnote 1
explains how that setting embeds into the general-graph model used here; this
example builds the embedding explicitly with the switch gadget, schedules two
competing shuffles plus a high-priority interactive query, and shows how
weights steer the schedule.

Run with::

    python examples/mapreduce_shuffle.py
"""

from repro import Coflow, CoflowInstance, Flow, api
from repro.network.gadgets import machine_nodes, switch_fabric_topology


def build_shuffle(name, mappers, reducers, data_per_pair, weight, release_time=0.0):
    """An all-to-all shuffle coflow from *mappers* to *reducers*."""
    flows = []
    for m in mappers:
        for r in reducers:
            if m == r:
                continue
            flows.append(
                Flow(m, r, data_per_pair, release_time=release_time,
                     name=f"{m}->{r}")
            )
    return Coflow(flows, weight=weight, release_time=release_time, name=name)


def main():
    # An 6-machine cluster behind a non-blocking switch; each port moves one
    # data unit per time slot in each direction.
    graph = switch_fabric_topology(6, ingress_rate=1.0, egress_rate=1.0)
    machines = machine_nodes(graph)

    batch_shuffle = build_shuffle(
        "batch-etl",
        mappers=machines[:3],
        reducers=machines[3:],
        data_per_pair=2.0,
        weight=1.0,
    )
    ml_shuffle = build_shuffle(
        "ml-training",
        mappers=machines[2:4],
        reducers=machines[:2],
        data_per_pair=1.5,
        weight=5.0,
        release_time=1.0,
    )
    interactive = Coflow(
        [Flow(machines[5], machines[0], 0.5, release_time=2.0, name="query")],
        weight=50.0,
        release_time=2.0,
        name="interactive-query",
    )

    instance = CoflowInstance(
        graph,
        [batch_shuffle, ml_shuffle, interactive],
        model="free_path",
        name="mapreduce-shuffles",
    )
    print(f"instance: {instance}\n")

    for label, coflows in (
        ("priority weights as configured", None),
        ("all weights equal (no prioritisation)", [c.unweighted() for c in instance.coflows]),
    ):
        inst = instance if coflows is None else instance.with_coflows(coflows)
        result = api.solve(inst, "lp-heuristic", rng=0)
        times = result.coflow_completion_times
        print(f"--- {label} ---")
        print(f"LP lower bound: {result.lower_bound:.2f}   "
              f"weighted completion time: {result.objective:.2f}")
        for coflow, t in zip(inst.coflows, times):
            print(f"  {coflow.name:<18s} weight {coflow.weight:5.1f}  "
                  f"completes at t = {t:g}")
        print()

    print(
        "With weights, the interactive query and the ML shuffle finish early "
        "while the bulk ETL shuffle absorbs the delay; with equal weights the "
        "ETL shuffle's volume dominates the schedule."
    )


if __name__ == "__main__":
    main()
