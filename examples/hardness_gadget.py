#!/usr/bin/env python3
"""The Section 5 hardness gadget: coflow scheduling ⊇ concurrent open shop.

The paper proves (Theorem 5.1) that coflow scheduling in networks is NP-hard
to approximate below a factor of 2 by reducing from concurrent open shop:
machine *i* becomes a unit-capacity edge ``x_i -> y_i`` and job *j* becomes a
coflow with one flow per machine it needs.  This example builds the reduction
explicitly, computes the exact open shop optimum by brute force, and shows
that the LP lower bound, the LP heuristic and the Stretch algorithm all land
where the theory says they must:

    LP bound  <=  exact optimum  <=  heuristic / Stretch  <=  2 x optimum (+ slotting)

Run with::

    python examples/hardness_gadget.py
"""

import numpy as np

from repro import CoflowScheduler
from repro.openshop import (
    OpenShopInstance,
    brute_force_optimum,
    list_schedule,
    openshop_to_coflow_instance,
    wspt_order,
)


def main():
    rng = np.random.default_rng(2019)
    shop = OpenShopInstance.random(
        num_machines=3, num_jobs=5, rng=rng, max_processing=4.0, density=0.8
    )
    print("concurrent open shop instance")
    print(f"  machines: {shop.num_machines}, jobs: {shop.num_jobs}")
    print("  processing matrix (machines x jobs):")
    for row in shop.processing:
        print("   ", "  ".join(f"{p:4.1f}" for p in row))
    print("  weights:", "  ".join(f"{w:4.1f}" for w in shop.weights))

    # Exact optimum (permutation schedules are optimal without release times).
    _, optimum = brute_force_optimum(shop)
    _, wspt_value = list_schedule(shop, wspt_order(shop))

    # The Section 5 reduction to coflow scheduling on disjoint unit edges.
    instance = openshop_to_coflow_instance(shop)
    scheduler = CoflowScheduler(instance, rng=0)
    heuristic = scheduler.heuristic()
    stretch = scheduler.stretch_evaluation(num_samples=20)

    rows = [
        ("coflow LP lower bound", scheduler.lower_bound),
        ("exact open shop optimum (brute force)", optimum),
        ("open shop WSPT list schedule", wspt_value),
        ("coflow LP heuristic (lambda = 1)", heuristic.objective),
        ("coflow Stretch (average lambda)", stretch.average_objective),
        ("coflow Stretch (best lambda)", stretch.best_objective),
    ]
    width = max(len(name) for name, _ in rows)
    print(f"\n{'quantity'.ljust(width)} | weighted completion time")
    print("-" * (width + 28))
    for name, value in rows:
        print(f"{name.ljust(width)} | {value:24.2f}")

    assert scheduler.lower_bound <= optimum + 1e-6
    slack = float(shop.weights.sum())  # one slot of rounding per job
    assert stretch.average_objective <= 2.0 * optimum + slack
    print(
        "\nAll relations hold: the LP bound never exceeds the exact optimum, "
        "and the Stretch algorithm stays within the guaranteed factor of 2 "
        "(plus integral-slot rounding).  The (2 - eps) inapproximability of "
        "concurrent open shop therefore carries over to coflow scheduling, "
        "which is why a 2-approximation is essentially the best possible."
    )


if __name__ == "__main__":
    main()
