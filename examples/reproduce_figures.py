#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section as a text table.

Runs the experiment configurations of :mod:`repro.experiments.figures`
(Figures 6-12) at a configurable scale and prints, for each figure, the same
series the paper plots plus the ratio of every algorithm to the LP lower
bound.  EXPERIMENTS.md records a reference run of this script.

Run with::

    python examples/reproduce_figures.py                # default scale (fast)
    python examples/reproduce_figures.py --scale 2.0    # closer to paper scale
    python examples/reproduce_figures.py --only fig06 fig09
"""

import argparse
import time

from repro.experiments import (
    ALL_EXPERIMENTS,
    format_result_table,
    run_experiment,
    summarize_shape_checks,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on the number of coflows per workload (1.0 = repo default)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="experiment ids to run (default: all paper figures)",
    )
    parser.add_argument(
        "--include-ablations",
        action="store_true",
        help="also run the ablation experiments listed in DESIGN.md",
    )
    args = parser.parse_args()

    if args.only:
        ids = list(args.only)
    else:
        ids = [k for k in sorted(ALL_EXPERIMENTS) if k.startswith("fig")]
        if args.include_ablations:
            ids += [k for k in sorted(ALL_EXPERIMENTS) if k.startswith("ablation")]

    for experiment_id in ids:
        config = ALL_EXPERIMENTS[experiment_id]
        start = time.perf_counter()
        result = run_experiment(config, scale=args.scale)
        elapsed = time.perf_counter() - start
        print(format_result_table(result))
        checks = summarize_shape_checks(result)
        if checks:
            print("\nshape checks:", ", ".join(
                f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in checks.items()
            ))
        print(f"(elapsed {elapsed:.1f}s)\n" + "=" * 90 + "\n")


if __name__ == "__main__":
    main()
