#!/usr/bin/env python3
"""Online arrivals: scheduling coflows that are revealed over time.

The paper's conclusion highlights online coflow scheduling as the next
challenge and points to the batching framework that turns an offline
approximation into an online algorithm.  This example simulates a bursty
stream of FB-style coflows arriving on SWAN and compares:

* the clairvoyant offline LP heuristic (knows every arrival in advance),
* the online geometric-batching framework driving that offline algorithm
  (only knows a coflow once it is released),
* its work-conserving variant (dispatches early whenever the net is idle),
* the incremental re-solve policy (re-prioritizes at every arrival from
  remaining work, via warm-started LPs), and
* the non-clairvoyant static weighted-SJF baseline.

The online schedules all run through the event-driven engine of
``repro.online`` — the same code path as the registered ``online-*``
algorithms.  Run with::

    python examples/online_arrivals.py [num_coflows]
"""

import sys

from repro import swan_topology
from repro.core import lp_heuristic_schedule, solve_time_indexed_lp
from repro.online import (
    GeometricBatchingPolicy,
    IncrementalResolvePolicy,
    WSJFPolicy,
    run_online_policy,
)
from repro.workloads import WorkloadSpec, generate_instance


def main():
    num_coflows = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    graph = swan_topology()
    spec = WorkloadSpec(
        profile="FB",
        num_coflows=num_coflows,
        weighted=True,
        demand_scale=1.5,
        release_spread=2.0,
        seed=99,
    )
    instance = generate_instance(graph, spec, model="free_path", rng=99)
    print(f"instance: {instance}")
    print(
        f"releases span [0, {instance.max_release_time():.1f}] — the online "
        "algorithms only learn a coflow at its release time\n"
    )

    lp = solve_time_indexed_lp(instance)
    offline = lp_heuristic_schedule(lp).weighted_completion_time()
    online = run_online_policy(instance, GeometricBatchingPolicy(2.0))
    online_wc = run_online_policy(
        instance, GeometricBatchingPolicy(2.0, early_start=True)
    )
    resolve = run_online_policy(instance, IncrementalResolvePolicy())
    wsjf = run_online_policy(instance, WSJFPolicy())

    rows = [
        ("LP lower bound (offline)", lp.objective),
        ("offline LP heuristic (clairvoyant)", offline),
        (f"online batching ({online.num_batches} batches)", online.weighted_completion_time),
        (f"work-conserving batching ({online_wc.num_batches} batches)", online_wc.weighted_completion_time),
        ("online re-solve (per-arrival LPs)", resolve.weighted_completion_time),
        ("online static weighted SJF", wsjf.weighted_completion_time),
    ]
    width = max(len(name) for name, _ in rows)
    print(f"{'algorithm'.ljust(width)} | weighted completion time | vs offline heuristic")
    print("-" * (width + 50))
    for name, value in rows:
        ratio = value / offline if offline > 0 else float("inf")
        print(f"{name.ljust(width)} | {value:24.1f} | {ratio:8.2f}x")

    print("\nbatch structure:")
    for batch in online.batches:
        members = ", ".join(
            instance.coflows[j].name or f"C{j}" for j in batch.coflow_indices
        )
        print(
            f"  epoch {batch.epoch_index}: starts at t = {batch.start_time:.1f}, "
            f"makespan {batch.makespan:.1f}, coflows [{members}]"
        )

    print(
        "\nThe batching framework pays a bounded waiting cost for its "
        "worst-case guarantee, while the greedy scheduler is strong on "
        "lightly loaded streams but has no guarantee — the trade-off the "
        "paper's conclusion leaves open for future work."
    )


if __name__ == "__main__":
    main()
