"""Worklist dataflow over the project call graph.

The interprocedural rules (:mod:`repro.lint.interproc`) all reduce to two
graph questions, answered here:

- **Reachability with provenance** (:func:`reachable`): which functions can
  a set of roots transitively call, and — for diagnostics — through which
  chain?  Rule messages print the chain (``run_worker -> _solve_units ->
  _store_results``) so a violation three hops from its root is actionable
  without the reader re-deriving the path.

- **Effect closure** (:func:`effect_closure`): for each root, every effect
  fact (wall-clock read, raw write, global mutation, ...) observable in its
  transitive callees, tagged with the file/line where the effect lives and
  the chain that reaches it.  The kernel-purity certificate is exactly the
  statement that this closure, filtered to the impure kinds, is empty.

Both run a plain breadth-first worklist: the graph is a few hundred nodes,
so asymptotics are irrelevant, but determinism is not — iteration order is
sorted everywhere so two runs over the same extracts emit findings in the
same order (the lint report is committed JSON; nondeterministic ordering
would make every CI run a spurious diff).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import CallGraph, Effect


@dataclass(frozen=True)
class Reached:
    """One function in a closure, with the chain that proves membership."""

    qual: str
    root: str
    #: Call chain from root to this function, inclusive of both ends.
    chain: Tuple[str, ...]


def reachable(graph: CallGraph, roots: Sequence[str]) -> Dict[str, Reached]:
    """BFS closure of *roots* with one (shortest, first-found) chain each.

    Roots absent from the graph are skipped silently: a rule may list
    aspirational entry points (e.g. a registry decorator no file uses yet)
    without failing.  BFS from the sorted root list makes the retained
    chain deterministic: shortest first, lexicographically earliest root
    wins ties.
    """
    closure: Dict[str, Reached] = {}
    queue: deque[Reached] = deque()
    for root in sorted(set(roots)):
        if root in graph.symbols and root not in closure:
            entry = Reached(qual=root, root=root, chain=(root,))
            closure[root] = entry
            queue.append(entry)
    while queue:
        current = queue.popleft()
        for callee in graph.callees(current.qual):
            if callee in closure:
                continue
            entry = Reached(
                qual=callee,
                root=current.root,
                chain=current.chain + (callee,),
            )
            closure[callee] = entry
            queue.append(entry)
    return closure


@dataclass(frozen=True)
class ReachedEffect:
    """One effect fact observed somewhere in a root's call closure."""

    effect: Effect
    #: Function whose body contains the effect.
    qual: str
    rel: str
    #: Chain from the closure root to ``qual``.
    chain: Tuple[str, ...]


def effect_closure(
    graph: CallGraph,
    roots: Sequence[str],
    kinds: Optional[Set[str]] = None,
) -> List[ReachedEffect]:
    """Every effect of the given *kinds* in the closure of *roots*.

    Sorted by (rel, line, kind) so the emitting rule's findings are stable
    across runs and machines.
    """
    closure = reachable(graph, roots)
    out: List[ReachedEffect] = []
    for qual in sorted(closure):
        fn = graph.functions.get(qual)
        if fn is None:
            continue
        rel = graph.symbols[qual].rel
        for effect in fn.effects:
            if kinds is not None and effect.kind not in kinds:
                continue
            out.append(
                ReachedEffect(
                    effect=effect,
                    qual=qual,
                    rel=rel,
                    chain=closure[qual].chain,
                )
            )
    out.sort(key=lambda r: (r.rel, r.effect.line, r.effect.kind, r.effect.detail))
    return out


def format_chain(chain: Tuple[str, ...], root_name: str) -> str:
    """Render a call chain compactly, stripping the common root prefix.

    ``repro.fabric.worker.run_worker`` inside root ``repro`` renders as
    ``fabric.worker.run_worker`` — shorter, and identical across fixture
    packages and the real tree (golden-test friendly).
    """
    prefix = f"{root_name}."
    trimmed = [
        qual[len(prefix):] if qual.startswith(prefix) else qual
        for qual in chain
    ]
    return " -> ".join(trimmed)


def callers_outside(
    graph: CallGraph, targets: Iterable[str], allowed: Set[str]
) -> List[Tuple[str, str]]:
    """(caller, target) pairs where caller is not in *allowed*.

    Used by the fabric write-safety rule: the store-mutation surface's
    callers must all sit inside the lease-holding closure.
    """
    out: List[Tuple[str, str]] = []
    for target in sorted(set(targets)):
        for caller in sorted(graph.reverse_edges.get(target, ())):
            if caller not in allowed:
                out.append((caller, target))
    return out
