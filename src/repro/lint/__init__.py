"""``repro.lint`` — AST-based determinism & discipline analysis.

The repository's reproducibility invariants (stateless seed derivation,
single sanctioned wall-clock site, relative float tolerances, atomic
temp+rename writes, plain-JSON boundaries, registry completeness, no
silent broad excepts, no internal use of deprecated shims) are enforced
mechanically by the rules in :mod:`repro.lint.rules`, driven by the
framework in :mod:`repro.lint.framework` and executed by
:func:`repro.lint.runner.run_lint`.

Since PR 9 the per-file rules are backed by an *interprocedural* layer:
:mod:`repro.lint.callgraph` builds a project-wide symbol table and call
graph (digest-cacheable per file), :mod:`repro.lint.dataflow` runs closure
queries over it, and :mod:`repro.lint.interproc` registers the graph-scoped
rule families — R1xx seed flow, R2xx fabric write-safety, R3xx kernel
purity (which also emits the ``KERNEL_PURITY.json`` certificate).

Run it as ``repro lint`` (nonzero exit on findings) or programmatically::

    from repro.lint import run_lint
    result = run_lint()          # lints the installed repro package
    assert result.ok, [f.render() for f in result.findings]
    assert result.certificate["verdict"] == "pure"
"""

from repro.lint.callgraph import (
    CallGraph,
    FileExtract,
    extract_file,
    extract_source,
    source_digest,
)
from repro.lint.dataflow import effect_closure, format_chain, reachable
from repro.lint.framework import (
    FileContext,
    Finding,
    ProjectContext,
    RuleInfo,
    get_rule,
    register_rule,
    rule_codes,
    rule_table,
)
from repro.lint.interproc import build_certificate, kernel_roots, seed_roots
from repro.lint.report import (
    format_result,
    format_rule_table,
    result_to_json,
    write_certificate,
    write_lint_report,
)
from repro.lint.runner import (
    LintResult,
    changed_files,
    default_root,
    expand_selection,
    run_lint,
)
from repro.lint.rules import BUILTIN_RULES

__all__ = [
    "CallGraph",
    "FileExtract",
    "extract_file",
    "extract_source",
    "source_digest",
    "effect_closure",
    "format_chain",
    "reachable",
    "build_certificate",
    "kernel_roots",
    "seed_roots",
    "write_certificate",
    "changed_files",
    "expand_selection",
    "FileContext",
    "Finding",
    "ProjectContext",
    "RuleInfo",
    "get_rule",
    "register_rule",
    "rule_codes",
    "rule_table",
    "format_result",
    "format_rule_table",
    "result_to_json",
    "write_lint_report",
    "LintResult",
    "default_root",
    "run_lint",
    "BUILTIN_RULES",
]
