"""``repro.lint`` — AST-based determinism & discipline analysis.

The repository's reproducibility invariants (stateless seed derivation,
single sanctioned wall-clock site, relative float tolerances, atomic
temp+rename writes, plain-JSON boundaries, registry completeness, no
silent broad excepts, no internal use of deprecated shims) are enforced
mechanically by the rules in :mod:`repro.lint.rules`, driven by the
framework in :mod:`repro.lint.framework` and executed by
:func:`repro.lint.runner.run_lint`.

Run it as ``repro lint`` (nonzero exit on findings) or programmatically::

    from repro.lint import run_lint
    result = run_lint()          # lints the installed repro package
    assert result.ok, [f.render() for f in result.findings]
"""

from repro.lint.framework import (
    FileContext,
    Finding,
    ProjectContext,
    RuleInfo,
    get_rule,
    register_rule,
    rule_codes,
    rule_table,
)
from repro.lint.report import (
    format_result,
    format_rule_table,
    result_to_json,
    write_lint_report,
)
from repro.lint.runner import LintResult, default_root, run_lint
from repro.lint.rules import BUILTIN_RULES

__all__ = [
    "FileContext",
    "Finding",
    "ProjectContext",
    "RuleInfo",
    "get_rule",
    "register_rule",
    "rule_codes",
    "rule_table",
    "format_result",
    "format_rule_table",
    "result_to_json",
    "write_lint_report",
    "LintResult",
    "default_root",
    "run_lint",
    "BUILTIN_RULES",
]
