"""The ``repro lint`` rule framework.

Five PRs of reproducibility discipline — stateless ``derive_seed``
addressing, byte-identical sweep resume, atomic temp+rename writes,
relative float tolerances, plain-JSON boundaries — live in this repository
as *conventions*.  This package encodes them as mechanical AST checks, the
same way :mod:`repro.scenarios.invariants` encodes runtime contracts as
differential invariants: a rule that cannot fire is a rule nobody needs to
remember.

Architecture
------------
* :class:`FileContext` — one parsed source file: source text, AST, resolved
  import aliases and the ``# repro-lint: allow[...]`` suppressions found in
  its comments.
* :class:`ProjectContext` — every file of a lint run, for cross-module
  checks (e.g. registry completeness).
* :func:`register_rule` — decorator registering a check under a stable
  ``R###`` code with a *file*, *project* or *graph* scope and optional
  per-path exemptions (the one sanctioned module a rule's discipline
  funnels through).  Graph-scoped checks receive the resolved
  :class:`~repro.lint.callgraph.CallGraph` alongside the project and power
  the interprocedural R1xx/R2xx/R3xx families.
* :class:`Finding` — one violation: rule code, file, position, message.

Suppressions
------------
A finding is suppressed by a ``# repro-lint: allow[R004]`` comment on the
same line (several codes separate with commas:
``# repro-lint: allow[R002,R007]``).  Suppressions are themselves checked:
one that suppresses nothing — a stale allow after the offending code moved
or was fixed — is reported as an ``R000`` *unused-suppression* finding, so
the allowlist can never silently rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

#: Code under which unused / unknown suppressions are reported.
UNUSED_SUPPRESSION = "R000"

#: Code under which unparseable files are reported (always active).
PARSE_ERROR = "E001"

_ALLOW_RE = re.compile(r"repro-lint:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, sortable by (path, line, col, rule)."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ImportMap:
    """Resolves local names to fully qualified dotted module paths.

    Built once per file from its ``import`` / ``from ... import``
    statements; :meth:`qualify` then turns an attribute chain like
    ``np.random.default_rng`` (with ``import numpy as np``) into
    ``"numpy.random.default_rng"``.  Names bound by assignment, not import,
    resolve to ``None`` — the rules only judge what they can prove.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # `import numpy.random` binds the name `numpy`.
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports resolve within the package
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.expr) -> Optional[str]:
        """Fully qualified dotted path of an attribute chain, if importable."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)]) if parts else base


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → rule codes allowed on that line.

    Comments are located with :mod:`tokenize` (so the marker inside a string
    literal is never mistaken for a suppression).  Unknown codes are kept —
    the runner reports them as ``R000`` findings rather than ignoring them.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if not match:
                continue
            codes = {
                code.strip() for code in match.group(1).split(",") if code.strip()
            }
            if codes:
                suppressions.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenizeError:  # pragma: no cover - ast parsed, so rare
        pass
    return suppressions


@dataclass
class FileContext:
    """One parsed file plus the per-file machinery every rule needs."""

    path: Path  #: absolute path on disk
    rel: str  #: posix path relative to the lint root
    source: str
    tree: ast.Module
    imports: ImportMap = field(init=False)
    suppressions: Dict[int, Set[str]] = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)
        self.suppressions = parse_suppressions(self.source)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """A :class:`Finding` anchored at *node*'s position in this file."""
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


@dataclass
class ProjectContext:
    """Every file of one lint run — the input to project-scoped rules."""

    root: Path
    files: List[FileContext]

    def matching(self, pattern: str) -> List[FileContext]:
        """Files whose root-relative path matches *pattern* (fnmatch)."""
        from fnmatch import fnmatch

        return [
            ctx
            for ctx in self.files
            if fnmatch(ctx.rel, pattern) or fnmatch(ctx.rel, f"*/{pattern}")
        ]


#: File-scoped check: yields findings for one file.
FileCheck = Callable[[FileContext], Iterable[Finding]]
#: Project-scoped check: yields findings across the whole file set.
ProjectCheck = Callable[[ProjectContext], Iterable[Finding]]


@dataclass(frozen=True)
class RuleInfo:
    """One registered rule: code, scope, exemptions and provenance.

    ``rationale`` names the PR that established the invariant the rule
    encodes — the same provenance discipline as the invariant registry of
    :mod:`repro.scenarios.invariants`.
    """

    code: str
    name: str
    description: str
    rationale: str
    scope: str  # "file" | "project" | "graph"
    check: Callable
    allowed_paths: Tuple[str, ...] = ()

    def exempts(self, rel: str) -> bool:
        """Whether *rel* is one of the rule's sanctioned modules."""
        return any(
            rel == allowed or rel.endswith(f"/{allowed}")
            for allowed in self.allowed_paths
        )


_RULES: Dict[str, RuleInfo] = {}


def register_rule(
    code: str,
    name: str,
    *,
    description: str,
    rationale: str = "",
    scope: str = "file",
    allowed_paths: Iterable[str] = (),
) -> Callable[[Callable], Callable]:
    """Decorator registering *check* under *code* (latest registration wins)."""
    if scope not in ("file", "project", "graph"):
        raise ValueError(
            f"rule scope must be 'file', 'project' or 'graph', got {scope!r}"
        )

    def decorator(check: Callable) -> Callable:
        _RULES[code] = RuleInfo(
            code=code,
            name=name,
            description=description,
            rationale=rationale,
            scope=scope,
            check=check,
            allowed_paths=tuple(allowed_paths),
        )
        return check

    return decorator


def get_rule(code: str) -> RuleInfo:
    """The registry entry for *code* (``ValueError`` with the catalogue if absent)."""
    try:
        return _RULES[code]
    except KeyError:
        raise ValueError(
            f"unknown lint rule {code!r}; registered rules: "
            + ", ".join(sorted(_RULES))
        ) from None


def rule_codes() -> Tuple[str, ...]:
    """Sorted codes of every registered rule."""
    return tuple(sorted(_RULES))


def rule_table() -> Tuple[RuleInfo, ...]:
    """All registry entries sorted by code (for the CLI and the README)."""
    return tuple(_RULES[code] for code in rule_codes())
