"""Interprocedural lint rules: seed flow, fabric write-safety, kernel purity.

These are the graph-scoped rule families built on :mod:`repro.lint.callgraph`
and :mod:`repro.lint.dataflow`.  Where the per-file rules (R001–R009) flag a
*spelling* — ``time.time()``, ``open(..., "w")`` — these flag a *path*: the
spelling may be three calls away from the entry point whose discipline it
breaks, so every finding message carries the call chain that proves the
connection.

Rule families
-------------
**R1xx seed flow.**  Every Generator reaching a solve / scenario / sweep
path must originate from ``derive_seed``/``derive_rng`` (i.e. the helpers
of :mod:`repro.utils.rng`, the one module allowed to touch numpy's
constructors).  Rng objects must not be stored in module globals (hidden
cross-call state) or reused across unit addresses inside a loop (the PR 4
sweep discipline: one derived stream per unit, or resume is not
byte-identical).

**R2xx fabric write-safety.**  Store mutation from fabric code is legal
only inside the lease-holding scope — ``run_worker``'s call closure in
``fabric/worker.py`` — because PR 7's zero-duplicate-solve guarantee rests
on "only the lease holder publishes".  Lease files themselves must follow
the write→read-back→arbitrate protocol, and check-then-act (`exists()`
then write) on fabric paths is a TOCTOU hole the exclusive-create
primitive exists to close.

**R3xx kernel purity.**  The ROADMAP's compiled-kernel item needs a
machine-checked guarantee that the simulator hot loop — everything
transitively reachable from the rate-allocation entry points and the event
step — is pure: no I/O, no wall clock, no raw entropy, no module-global
mutation, no argument mutation.  :func:`build_certificate` turns a passing
R3xx run into ``KERNEL_PURITY.json``, the artifact a future Cython/numba
backend asserts against before trusting that a port preserves semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import (
    ReachedEffect,
    effect_closure,
    format_chain,
    reachable,
)
from repro.lint.framework import Finding, ProjectContext, register_rule

# --------------------------------------------------------------------------- #
# root sets
# --------------------------------------------------------------------------- #
#: Files whose public functions anchor the solve/scenario/sweep seed
#: discipline: a Generator live anywhere in their call closures must have
#: been derived, not constructed.
SEED_ROOT_FILES = (
    "api/batch.py",
    "scenarios/engine.py",
    "experiments/sweep.py",
    "fabric/worker.py",
    "online/engine.py",
)

#: Decorators whose carriers are registry entry points (and hence roots).
REGISTRY_DECORATORS = ("register_algorithm", "register_family")

#: Files that constitute the solve path for the rng-reuse check: a loop
#: handing one rng to repeated calls into these is reusing a stream across
#: unit addresses.
SOLVE_PATH_FILES = (
    "api/batch.py",
    "api/algorithms.py",
    "scenarios/engine.py",
    "experiments/sweep.py",
    "online/engine.py",
    "sim/*.py",
)

#: The lease-holding entry point: the only scope fabric store mutation may
#: hang from.
LEASE_SCOPE = ("fabric/worker.py", "run_worker")

#: Kernel root files: every public module-level function here is a root.
KERNEL_ROOT_FILES = ("sim/rate_allocation.py",)

#: Extra named kernel roots beyond the public surface of the root files.
KERNEL_ROOT_FUNCTIONS = (("sim/simulator.py", "simulate_priority_schedule"),)

#: Effect kinds that break kernel purity (argument mutation is split out
#: into R303 so its finding reads differently).
IMPURE_KINDS = {
    "io_read",
    "io_write",
    "raw_write",
    "stdout",
    "wall_clock",
    "raw_entropy",
    "rng_construct",
    "store_mutation",
    "global_mut",
}

#: Files the kernel closure must not touch at all (R302): persistence and
#: orchestration layers whose presence in the closure means the kernel is
#: not portable, whatever the individual effects say.
KERNEL_FORBIDDEN_FILES = ("store/*.py", "fabric/*.py", "cli.py", "utils/io.py")


def seed_roots(graph: CallGraph) -> List[str]:
    """Registry-decorated functions plus the public surface of the seed
    root files (sorted, deduplicated)."""
    roots: Set[str] = set(graph.decorated(*REGISTRY_DECORATORS))
    for qual in graph.functions_matching(*SEED_ROOT_FILES):
        fn = graph.functions[qual]
        if "." not in fn.local and not fn.name.startswith("_"):
            roots.add(qual)
    return sorted(roots)


def kernel_roots(graph: CallGraph) -> List[str]:
    """The purity roots: the rate-allocation public surface + the event step."""
    roots: Set[str] = set()
    for qual in graph.functions_matching(*KERNEL_ROOT_FILES):
        fn = graph.functions[qual]
        if "." not in fn.local and not fn.name.startswith("_"):
            roots.add(qual)
    for rel_pattern, name in KERNEL_ROOT_FUNCTIONS:
        for qual in graph.functions_matching(rel_pattern):
            if graph.functions[qual].local == name:
                roots.add(qual)
    return sorted(roots)


def _finding(
    rel: str, line: int, rule: str, message: str, col: int = 1
) -> Finding:
    return Finding(path=rel, line=line, col=col, rule=rule, message=message)


# --------------------------------------------------------------------------- #
# R1xx — seed flow
# --------------------------------------------------------------------------- #
@register_rule(
    "R101",
    "seed-origin",
    description=(
        "rng constructors reachable from solve/scenario/sweep entry points "
        "must live in utils/rng.py; derive the stream with "
        "derive_rng/as_generator instead"
    ),
    rationale=(
        "PR 3/PR 4 made every unit's stream a pure function of its address "
        "via derive_seed; a constructor elsewhere in the closure reopens "
        "the door to position-dependent streams"
    ),
    scope="graph",
    allowed_paths=("utils/rng.py",),
)
def seed_origin(project: ProjectContext, graph: CallGraph) -> Iterable[Finding]:
    roots = seed_roots(graph)
    for hit in effect_closure(graph, roots, kinds={"rng_construct"}):
        chain = format_chain(hit.chain, graph.root_name)
        yield _finding(
            hit.rel,
            hit.effect.line,
            "R101",
            (
                f"{hit.effect.detail} constructed on a seeded path "
                f"(reached via {chain}); only utils/rng.py may touch numpy "
                "constructors — use as_generator/derive_rng"
            ),
        )


@register_rule(
    "R102",
    "no-module-rng",
    description=(
        "rng objects must not be bound at module level: a module-global "
        "Generator is hidden mutable state shared across every caller"
    ),
    rationale=(
        "PR 4's byte-identical sweep resume requires streams addressed per "
        "unit, never ambient; a module rng advances differently depending "
        "on import and call order"
    ),
    scope="graph",
    allowed_paths=("utils/rng.py",),
)
def no_module_rng(project: ProjectContext, graph: CallGraph) -> Iterable[Finding]:
    for rel in sorted(graph.extracts):
        for name, line in graph.extracts[rel].module_rng_globals:
            yield _finding(
                rel,
                line,
                "R102",
                (
                    f"module-level rng binding {name!r}: generators are "
                    "per-unit values (derive them where used), not module "
                    "state"
                ),
            )


@register_rule(
    "R103",
    "no-rng-reuse-across-units",
    description=(
        "a Generator bound before a loop must not be passed into solve-path "
        "calls inside the loop: each unit address derives its own stream"
    ),
    rationale=(
        "reusing one stream across loop iterations makes unit results "
        "depend on visit order, which is exactly what PR 4's stateless "
        "derive_seed addressing removed"
    ),
    scope="graph",
    allowed_paths=("utils/rng.py",),
)
def no_rng_reuse(project: ProjectContext, graph: CallGraph) -> Iterable[Finding]:
    solve_path = set(graph.functions_matching(*SOLVE_PATH_FILES))
    for rel in sorted(graph.extracts):
        for fn in graph.extracts[rel].functions:
            for arg in fn.loop_rng_args:
                callee = graph.resolve_call(rel, fn, arg.call)
                if callee is None:
                    continue
                closure = reachable(graph, [callee])
                if not solve_path.intersection(closure):
                    continue
                callee_name = format_chain((callee,), graph.root_name)
                yield _finding(
                    rel,
                    arg.call.line,
                    "R103",
                    (
                        f"rng {arg.variable!r} (bound line {arg.bound_line}) "
                        f"is reused across loop iterations by {callee_name}; "
                        "derive one stream per unit address instead"
                    ),
                )


# --------------------------------------------------------------------------- #
# R2xx — fabric write-safety
# --------------------------------------------------------------------------- #
@register_rule(
    "R201",
    "fabric-write-lease",
    description=(
        "store mutation in fabric code must be reachable only from the "
        "lease-holding scope (run_worker's call closure)"
    ),
    rationale=(
        "PR 7's zero-duplicate-solve guarantee rests on 'only the lease "
        "holder publishes'; a fabric write outside run_worker's closure "
        "publishes without holding anything"
    ),
    scope="graph",
)
def fabric_write_lease(
    project: ProjectContext, graph: CallGraph
) -> Iterable[Finding]:
    lease_file, lease_entry = LEASE_SCOPE
    lease_roots = [
        qual
        for qual in graph.functions_matching(lease_file)
        if graph.functions[qual].local == lease_entry
    ]
    held = set(reachable(graph, lease_roots))
    for qual in graph.functions_matching("fabric/*.py"):
        if qual in held:
            continue
        fn = graph.functions[qual]
        rel = graph.symbols[qual].rel
        for effect in fn.effects:
            if effect.kind != "store_mutation":
                continue
            yield _finding(
                rel,
                effect.line,
                "R201",
                (
                    f"store mutation ({effect.detail}) in {fn.local} is not "
                    f"reachable from {lease_entry}; fabric writes must hang "
                    "from the lease-holding scope"
                ),
            )


@register_rule(
    "R202",
    "lease-write-readback",
    description=(
        "every non-exclusive lease-file write must be followed by a "
        "read-back in the same function (the arbitration protocol), and "
        "exists()-guarded writes on fabric paths are TOCTOU holes"
    ),
    rationale=(
        "PR 7's reclaim protocol is write -> read back -> arbitrate: two "
        "workers may overwrite each other's claim, and only the read-back "
        "decides who actually holds it; exclusive_write_json is the "
        "sanctioned create-if-absent"
    ),
    scope="graph",
)
def lease_write_readback(
    project: ProjectContext, graph: CallGraph
) -> Iterable[Finding]:
    for qual in graph.functions_matching("fabric/*.py"):
        fn = graph.functions[qual]
        rel = graph.symbols[qual].rel
        readback_lines = [
            e.line for e in fn.effects if e.kind == "lease_readback"
        ]
        for effect in fn.effects:
            if effect.kind == "lease_write":
                if not any(line > effect.line for line in readback_lines):
                    yield _finding(
                        rel,
                        effect.line,
                        "R202",
                        (
                            f"lease write to {effect.detail} in {fn.local} "
                            "has no read-back after it; the arbitration "
                            "protocol is write -> read -> arbitrate"
                        ),
                    )
            elif effect.kind == "toctou_exists":
                yield _finding(
                    rel,
                    effect.line,
                    "R202",
                    (
                        f"exists()-guarded write to {effect.detail} in "
                        f"{fn.local} races between check and act; use "
                        "exclusive_write_json (atomic create) instead"
                    ),
                )


@register_rule(
    "R203",
    "atomic-commit-boundary",
    description=(
        "aliased raw write/publish primitives (os.fdopen, tempfile.mkstemp, "
        "os.link, shutil.copy*) belong in utils/io.py only; everywhere else "
        "writes go through the atomic helpers"
    ),
    rationale=(
        "PR 4 funnelled result publication through atomic temp+rename; "
        "R004 catches the direct spellings per file, this closes the "
        "aliased forms a single-file rule cannot see through"
    ),
    scope="graph",
    allowed_paths=("utils/io.py",),
)
def atomic_commit_boundary(
    project: ProjectContext, graph: CallGraph
) -> Iterable[Finding]:
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        rel = graph.symbols[qual].rel
        for effect in fn.effects:
            if effect.kind != "raw_write":
                continue
            yield _finding(
                rel,
                effect.line,
                "R203",
                (
                    f"{effect.detail} in {fn.local}: raw write primitives "
                    "live behind utils/io.py's atomic helpers, not in "
                    "caller code"
                ),
            )


# --------------------------------------------------------------------------- #
# R3xx — kernel purity
# --------------------------------------------------------------------------- #
@register_rule(
    "R301",
    "kernel-purity",
    description=(
        "functions transitively reachable from the rate-allocation entry "
        "points and the simulator event step must be free of I/O, wall "
        "clock, raw entropy, rng construction and module-global mutation"
    ),
    rationale=(
        "the ROADMAP's compiled-kernel item needs a machine-checked purity "
        "guarantee before the hot loop can be ported; receiver-owned (self) "
        "state like memo caches is explicitly allowed"
    ),
    scope="graph",
)
def kernel_purity(project: ProjectContext, graph: CallGraph) -> Iterable[Finding]:
    roots = kernel_roots(graph)
    for hit in effect_closure(graph, roots, kinds=IMPURE_KINDS):
        chain = format_chain(hit.chain, graph.root_name)
        yield _finding(
            hit.rel,
            hit.effect.line,
            "R301",
            (
                f"impure effect {hit.effect.kind} ({hit.effect.detail}) in "
                f"kernel closure, reached via {chain}"
            ),
        )


@register_rule(
    "R302",
    "kernel-boundary",
    description=(
        "the kernel call closure must not enter the persistence or "
        "orchestration layers (store/, fabric/, cli.py, utils/io.py)"
    ),
    rationale=(
        "a compiled backend can port arithmetic, not a store dependency; "
        "an edge into those layers means the kernel boundary leaked even "
        "if no individual effect fires"
    ),
    scope="graph",
)
def kernel_boundary(project: ProjectContext, graph: CallGraph) -> Iterable[Finding]:
    from fnmatch import fnmatch

    roots = kernel_roots(graph)
    closure = reachable(graph, roots)
    for qual in sorted(closure):
        sym = graph.symbols[qual]
        if not any(
            fnmatch(sym.rel, pattern) or fnmatch(sym.rel, f"*/{pattern}")
            for pattern in KERNEL_FORBIDDEN_FILES
        ):
            continue
        chain = format_chain(closure[qual].chain, graph.root_name)
        yield _finding(
            sym.rel,
            sym.line,
            "R302",
            (
                f"{sym.local} is inside the kernel closure via {chain}; "
                "the kernel must not depend on persistence/orchestration "
                "layers"
            ),
        )


@register_rule(
    "R303",
    "kernel-argument-mutation",
    description=(
        "kernel-closure functions must not mutate their (non-self) "
        "arguments: callers hand in arrays the compiled backend will "
        "treat as immutable inputs"
    ),
    rationale=(
        "in-place argument mutation is invisible at the call site and "
        "breaks the array-in/array-out contract the compiled kernel "
        "port assumes"
    ),
    scope="graph",
)
def kernel_argument_mutation(
    project: ProjectContext, graph: CallGraph
) -> Iterable[Finding]:
    roots = kernel_roots(graph)
    for hit in effect_closure(graph, roots, kinds={"param_mut"}):
        chain = format_chain(hit.chain, graph.root_name)
        yield _finding(
            hit.rel,
            hit.effect.line,
            "R303",
            (
                f"kernel function mutates argument ({hit.effect.detail}), "
                f"reached via {chain}; return the new value instead"
            ),
        )


#: The codes whose combined verdict the purity certificate records.
CERTIFICATE_RULES = ("R301", "R302", "R303")

#: Certificate schema (bump on shape changes so a stale committed file
#: fails loudly in the comparing test rather than silently drifting).
CERTIFICATE_SCHEMA = 1


def build_certificate(
    graph: CallGraph,
    digests: Dict[str, str],
    surviving: Sequence[Finding],
    sanctioned: Sequence[Finding],
) -> Dict:
    """The ``KERNEL_PURITY.json`` document for one analysis run.

    Deliberately timestamp-free: the certificate is a pure function of the
    analyzed sources, so the committed copy stays byte-stable until the
    kernel (or the analyzer) actually changes — and the regeneration test
    can compare dictionaries directly.

    Parameters
    ----------
    digests:
        rel -> source digest for every analyzed file; the certificate keeps
        only the files the kernel closure touches.
    surviving:
        R3xx findings that survived suppression filtering (verdict
        ``impure`` if any exist).
    sanctioned:
        R3xx findings consumed by a ``# repro-lint: allow[...]`` comment —
        recorded so every waived effect is visible in the artifact with its
        location (the rationale lives in the comment at that line).
    """
    roots = kernel_roots(graph)
    closure = reachable(graph, roots)
    prefix = f"{graph.root_name}."

    def strip(qual: str) -> str:
        return qual[len(prefix):] if qual.startswith(prefix) else qual

    closure_rels = sorted({graph.symbols[qual].rel for qual in closure})
    return {
        "schema": CERTIFICATE_SCHEMA,
        "kind": "kernel-purity-certificate",
        "rules": list(CERTIFICATE_RULES),
        "verdict": "impure" if surviving else "pure",
        "roots": [strip(qual) for qual in roots],
        "closure": [
            {
                "function": strip(qual),
                "file": graph.symbols[qual].rel,
                "line": graph.symbols[qual].line,
            }
            for qual in sorted(closure)
        ],
        "violations": [
            {
                "rule": f.rule,
                "file": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(surviving)
        ],
        "sanctioned": [
            {
                "rule": f.rule,
                "file": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(sanctioned)
        ],
        "files": {
            rel: digests[rel] for rel in closure_rels if rel in digests
        },
    }
