"""Project-wide symbol table and call graph for interprocedural lint.

PR 6's rules see one file at a time, so any discipline violation that
crosses a function boundary — an unseeded rng threaded through a helper, a
raw write reached via a wrapper — is invisible to them.  This module gives
the R1xx/R2xx/R3xx rule families (:mod:`repro.lint.interproc`) the project
view they need, in two strictly separated stages:

**Extraction** (:func:`extract_file`) walks one parsed file and produces a
:class:`FileExtract`: the symbols it defines, the *raw* call sites inside
each function (classified but unresolved), the function's local *effect
facts* (wall-clock reads, raw writes, entropy, global mutation, ...), and
everything else the graph rules need from that file.  Extraction only looks
at one file, so its output is a pure function of the file's bytes — which
is what makes the digest-keyed cache sound: a warm run deserializes the
extract of every unchanged file and never re-parses it.

**Resolution** (:class:`CallGraph`) joins every extract into one graph.
Name resolution covers module-level names, ``repro.``-absolute imports,
``self`` method calls, method calls on locals whose class is inferred from
an assignment (``leases = LeaseManager(...)``) or a parameter annotation,
and one level of attribute hops through annotated class attributes
(``instance.graph.capacity_vector()``).  Like the per-file
:class:`~repro.lint.framework.ImportMap`, the graph only judges what it can
prove: an unresolvable call produces no edge (and is counted, so the golden
tests can pin the resolution rate).

Symbols are addressed by qualified name ``<root>.<module>.<Class>.<func>``
where ``<root>`` is the lint root's directory name — ``repro`` for the real
tree, the fixture package name in tests — so rules match on root-relative
file patterns (``sim/rate_allocation.py``), never on the spelled-out root.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatch
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import FileContext, ImportMap, parse_suppressions

#: Schema stamp for serialized extracts (bump on any shape change: a cache
#: written by an older analyzer must be discarded, not misread).
EXTRACT_SCHEMA = 1

# --------------------------------------------------------------------------- #
# effect tables
# --------------------------------------------------------------------------- #
#: Wall-clock reads (mirrors rule R002's table).
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.strftime",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Irreproducible entropy sources (mirrors rule R001's tables).
RAW_ENTROPY_CALLS = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
}

#: Generator/bit-stream constructors.  Only :mod:`repro.utils.rng` may call
#: these; everywhere else a Generator must come from the utils.rng helpers.
RNG_CONSTRUCTOR_CALLS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
}

#: The sanctioned rng factories (their results are derive_seed-rooted or
#: explicitly caller-seeded): calls to these are *not* rng-construction
#: violations, and a variable bound to one still counts as an rng value for
#: the reuse-across-units check (R103).
SANCTIONED_RNG_FACTORIES = {
    "as_generator",
    "derive_rng",
    "spawn_rng",
    "iter_generators",
}

#: Raw write/publish primitives the atomic-write boundary (utils/io) owns.
#: Deliberately disjoint from rule R004's per-file patterns: R004 already
#: flags the direct spellings (``open(..., "w")``, ``.write_text``); these
#: are the aliased / lower-level forms a per-file rule cannot see through.
RAW_WRITE_CALLS = {
    "os.fdopen",
    "os.link",
    "tempfile.mkstemp",
    "tempfile.NamedTemporaryFile",
    "shutil.copy",
    "shutil.copy2",
    "shutil.copyfile",
    "shutil.move",
}

#: File-reading calls (impure for the kernel, fine elsewhere).
IO_READ_CALLS = {
    "json.load",
}

#: Attribute methods that read file content.
IO_READ_ATTRS = {"read_text", "read_bytes"}

#: Attribute methods that write file content (R004's attribute set, reused
#: here as *effect facts* rather than per-file findings).
IO_WRITE_ATTRS = {"write_text", "write_bytes"}

#: Store-mutation methods (the ResultStore write surface).
STORE_MUTATION_ATTRS = {"put", "put_failure", "clear_failure", "put_run"}

#: The sanctioned atomic-write helpers (by bare name, as imported).
ATOMIC_WRITE_HELPERS = {
    "atomic_writer",
    "atomic_write_text",
    "atomic_write_json",
    "exclusive_write_json",
}


# --------------------------------------------------------------------------- #
# serializable extract model
# --------------------------------------------------------------------------- #
@dataclass
class CallSite:
    """One raw (unresolved) call inside a function.

    ``kind`` decides how :class:`CallGraph` resolves ``data``:

    - ``"name"`` — ``f(...)``: ``data = (f,)``
    - ``"qual"`` — importable dotted call: ``data = (dotted,)``
    - ``"self"`` — ``self.m(...)``: ``data = (m,)``
    - ``"typed"`` — ``v.m(...)`` with the class of ``v`` inferred:
      ``data = (type_name, m)``
    - ``"attr"`` — ``v.a.m(...)``: ``data = (type_of_v, a, m)``
    - ``"ret"`` — ``v.m(...)`` where ``v = f(...)``: the class of ``v`` is
      ``f``'s return annotation, resolved in *f's* file at graph time:
      ``data = (callable_ref, m)``
    """

    kind: str
    data: Tuple[str, ...]
    line: int


@dataclass
class Effect:
    """One local effect fact: what a function does besides compute."""

    kind: str  # wall_clock | raw_entropy | rng_construct | raw_write |
    #            io_read | io_write | stdout | store_mutation | global_mut |
    #            param_mut | lease_write | lease_readback | toctou_exists
    line: int
    detail: str


@dataclass
class LoopRngArg:
    """A loop-invariant rng value passed into a call inside a loop.

    The seed-reuse rule (R103) needs exactly this shape: which variable,
    where it was bound, and which call inside the loop received it.  The
    callee reference is a :class:`CallSite` so resolution (does this call
    reach the solve path?) happens at graph-build time.
    """

    variable: str
    bound_line: int
    call: CallSite


@dataclass
class FunctionExtract:
    """Everything the graph rules need to know about one function."""

    local: str  # "func" or "Class.func"
    name: str
    line: int
    end_line: int
    decorators: Tuple[str, ...] = ()
    params: Tuple[str, ...] = ()
    #: Return-annotation class name (resolved against this file's imports),
    #: None when unannotated or not a plain class.
    returns: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    effects: List[Effect] = field(default_factory=list)
    loop_rng_args: List[LoopRngArg] = field(default_factory=list)


@dataclass
class ClassExtract:
    """One class: its annotated attribute types and base class names."""

    name: str
    line: int
    bases: Tuple[str, ...] = ()
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class FileExtract:
    """The cacheable per-file product of :func:`extract_file`."""

    rel: str
    functions: List[FunctionExtract] = field(default_factory=list)
    classes: List[ClassExtract] = field(default_factory=list)
    module_rng_globals: List[Tuple[str, int]] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    suppressions: Dict[int, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        doc = asdict(self)
        doc["schema"] = EXTRACT_SCHEMA
        # JSON keys are strings; suppression lines round-trip through int().
        doc["suppressions"] = {
            str(line): sorted(codes) for line, codes in self.suppressions.items()
        }
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "FileExtract":
        if doc.get("schema") != EXTRACT_SCHEMA:
            raise ValueError(f"extract schema mismatch: {doc.get('schema')!r}")
        return cls(
            rel=doc["rel"],
            functions=[
                FunctionExtract(
                    local=f["local"],
                    name=f["name"],
                    line=f["line"],
                    end_line=f["end_line"],
                    decorators=tuple(f["decorators"]),
                    params=tuple(f["params"]),
                    returns=f.get("returns"),
                    calls=[CallSite(c["kind"], tuple(c["data"]), c["line"]) for c in f["calls"]],
                    effects=[Effect(e["kind"], e["line"], e["detail"]) for e in f["effects"]],
                    loop_rng_args=[
                        LoopRngArg(
                            a["variable"],
                            a["bound_line"],
                            CallSite(
                                a["call"]["kind"],
                                tuple(a["call"]["data"]),
                                a["call"]["line"],
                            ),
                        )
                        for a in f["loop_rng_args"]
                    ],
                )
                for f in doc["functions"]
            ],
            classes=[
                ClassExtract(
                    name=c["name"],
                    line=c["line"],
                    bases=tuple(c["bases"]),
                    attr_types=dict(c["attr_types"]),
                )
                for c in doc["classes"]
            ],
            module_rng_globals=[
                (str(name), int(line)) for name, line in doc["module_rng_globals"]
            ],
            imports=dict(doc["imports"]),
            suppressions={
                int(line): list(codes)
                for line, codes in doc["suppressions"].items()
            },
        )


def source_digest(source: str) -> str:
    """Content key for the extract cache (first 16 hex chars of SHA-256)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# extraction helpers
# --------------------------------------------------------------------------- #
def _type_name(node: Optional[ast.expr], imports: ImportMap) -> Optional[str]:
    """Best-effort class name of an annotation (dotted when importable).

    ``Optional[X]`` / ``"X"`` string annotations / ``X | None`` unions peel
    down to ``X``; anything genuinely ambiguous resolves to ``None`` — the
    rules only judge what they can prove.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: re-parse the inner expression.
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        value = _type_name(node.value, imports)
        if value in ("typing.Optional", "Optional"):
            return _type_name(node.slice, imports)
        return None  # containers (List[...], Dict[...]) are not receivers
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # X | None / None | X
        left = _type_name(node.left, imports)
        right = _type_name(node.right, imports)
        candidates = [c for c in (left, right) if c not in (None, "None")]
        return candidates[0] if len(candidates) == 1 else None
    if isinstance(node, ast.Name):
        return imports.aliases.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        qualified = imports.qualify(node)
        if qualified is not None:
            return qualified
        parts: List[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if isinstance(cursor, ast.Name):
            return ".".join([cursor.id, *reversed(parts)])
    return None


def _call_name(node: ast.expr) -> Optional[str]:
    """The bare trailing name of a call target (for decorator matching)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_write_mode_call(node: ast.Call, mode_position: int) -> bool:
    mode: Optional[ast.expr] = None
    if len(node.args) > mode_position:
        mode = node.args[mode_position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wax+")
    return False


def _binding_names(target: ast.expr) -> Set[str]:
    """Names *bound* by an assignment target.

    ``a, (b, c) = ...`` binds a/b/c; ``d[k] = ...`` and ``d.x = ...`` bind
    nothing — they *mutate* d, and treating d as locally bound would mask
    exactly the global-mutation facts the kernel-purity rule exists for.
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names.update(_binding_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    return set()


def _assigned_names(node: ast.AST) -> Set[str]:
    """Every plain name bound by assignment-like statements under *node*."""
    names: Set[str] = set()
    for child in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            targets = [child.target]
        elif isinstance(child, ast.For):
            targets = [child.target]
        elif isinstance(child, (ast.withitem,)) and child.optional_vars is not None:
            targets = [child.optional_vars]
        for target in targets:
            names.update(_binding_names(target))
    return names


class _FunctionWalker:
    """Single pass over one function body collecting calls + effects."""

    def __init__(
        self,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        *,
        class_name: Optional[str],
        imports: ImportMap,
        module_level_names: Set[str],
        local_classes: Set[str],
        module_functions: Set[str],
    ) -> None:
        self.fn = fn
        self.class_name = class_name
        self.imports = imports
        self.module_level_names = module_level_names
        self.local_classes = local_classes
        self.module_functions = module_functions
        args = fn.args
        self.params: List[str] = [
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        if args.vararg:
            self.params.append(args.vararg.arg)
        if args.kwarg:
            self.params.append(args.kwarg.arg)
        #: Parameter / local variable name -> inferred class name.
        self.var_types: Dict[str, str] = {}
        #: Local variable name -> callable ref whose return value it holds
        #: (resolved to a class through that callable's annotation later).
        self.ret_binds: Dict[str, str] = {}
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            typed = _type_name(a.annotation, imports)
            if typed is not None:
                self.var_types[a.arg] = typed
        self.local_binds = _assigned_names(fn)
        self.is_method = class_name is not None and bool(self.params) and (
            self.params[0] in ("self", "cls")
        )
        #: rng-bound locals: name -> (line, sanctioned)
        self.rng_binds: Dict[str, Tuple[int, bool]] = {}
        self.global_decls: Set[str] = set()
        self.calls: List[CallSite] = []
        self.effects: List[Effect] = []
        self.loop_rng_args: List[LoopRngArg] = []

    # -- classification ------------------------------------------------- #
    def _rng_constructor_kind(self, call: ast.Call) -> Optional[bool]:
        """None if not an rng constructor; else True when sanctioned."""
        qualified = self.imports.qualify(call.func)
        if qualified in RNG_CONSTRUCTOR_CALLS:
            return False
        name = _call_name(call.func)
        if name in SANCTIONED_RNG_FACTORIES:
            return True
        if qualified is not None and qualified.rsplit(".", 1)[-1] in SANCTIONED_RNG_FACTORIES:
            return True
        return None

    def _classify_call(self, call: ast.Call) -> Optional[CallSite]:
        func = call.func
        qualified = self.imports.qualify(func)
        if qualified is not None:
            return CallSite("qual", (qualified,), call.lineno)
        if isinstance(func, ast.Name):
            return CallSite("name", (func.id,), call.lineno)
        if isinstance(func, ast.Attribute):
            method = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and self.class_name is not None:
                    return CallSite("self", (method,), call.lineno)
                typed = self.var_types.get(base.id)
                if typed is not None:
                    return CallSite("typed", (typed, method), call.lineno)
                if base.id in self.local_classes:
                    return CallSite("typed", (base.id, method), call.lineno)
                ret_of = self.ret_binds.get(base.id)
                if ret_of is not None:
                    return CallSite("ret", (ret_of, method), call.lineno)
                return None
            if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                owner = base.value.id
                if owner in ("self", "cls") and self.class_name is not None:
                    return CallSite(
                        "attr", (self.class_name, base.attr, method), call.lineno
                    )
                typed = self.var_types.get(owner)
                if typed is not None:
                    return CallSite("attr", (typed, base.attr, method), call.lineno)
        return None

    def _record_effects(self, call: ast.Call) -> None:
        qualified = self.imports.qualify(call.func)
        func = call.func
        name = func.id if isinstance(func, ast.Name) else None
        attr = func.attr if isinstance(func, ast.Attribute) else None
        line = call.lineno

        if qualified in WALL_CLOCK_CALLS:
            self.effects.append(Effect("wall_clock", line, qualified))
        elif qualified in RAW_ENTROPY_CALLS or (
            qualified is not None and qualified.startswith("random.")
        ):
            self.effects.append(Effect("raw_entropy", line, qualified))
        elif qualified in RNG_CONSTRUCTOR_CALLS:
            self.effects.append(Effect("rng_construct", line, qualified))
        elif qualified in RAW_WRITE_CALLS:
            if qualified == "os.fdopen" and not _is_write_mode_call(call, 1):
                pass  # read-mode fdopen is io_read territory, not a write
            else:
                self.effects.append(Effect("raw_write", line, qualified))
        elif qualified in IO_READ_CALLS:
            self.effects.append(Effect("io_read", line, qualified))

        if name == "open" and _is_write_mode_call(call, 1):
            self.effects.append(Effect("io_write", line, "open"))
        elif name == "open":
            self.effects.append(Effect("io_read", line, "open"))
        elif name == "print":
            self.effects.append(Effect("stdout", line, "print"))
        elif name in ATOMIC_WRITE_HELPERS:
            self.effects.append(Effect("store_mutation", line, name))
            self._record_lease_write(call, name)

        if attr in IO_WRITE_ATTRS:
            self.effects.append(Effect("io_write", line, f".{attr}"))
        elif attr in IO_READ_ATTRS:
            self.effects.append(Effect("io_read", line, f".{attr}"))
        elif attr == "open" and _is_write_mode_call(call, 0):
            self.effects.append(Effect("io_write", line, ".open"))
        elif attr in STORE_MUTATION_ATTRS:
            self.effects.append(Effect("store_mutation", line, f".{attr}"))
        elif attr == "read" and isinstance(func, ast.Attribute):
            # A read-back after a lease write (see R202): any `<x>.read(...)`.
            self.effects.append(Effect("lease_readback", line, ".read"))

    def _record_lease_write(self, call: ast.Call, helper: str) -> None:
        """A non-exclusive atomic write whose target looks like a lease file."""
        if helper == "exclusive_write_json":
            return  # exclusive create is the sanctioned race-free claim
        if not call.args:
            return
        target = ast.unparse(call.args[0])
        if ".path(" in target or "lease" in target.lower():
            self.effects.append(Effect("lease_write", call.lineno, target))

    def _record_mutations(self, node: ast.AST) -> None:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            self._record_mutation_target(target, node)

    def _record_mutation_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._record_mutation_target(element, node)
            return
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self.effects.append(
                    Effect("global_mut", node.lineno, f"global {target.id}")
                )
            return
        # Subscript / attribute stores: find the base name.
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        root = base.id
        rendered = ast.unparse(target)
        if root in ("self", "cls"):
            return  # receiver-owned state is the caller's to mutate
        if root in self.global_decls or (
            root in self.module_level_names and root not in self.local_binds
            and root not in self.params
        ):
            self.effects.append(Effect("global_mut", node.lineno, rendered))
        elif root in self.params:
            self.effects.append(Effect("param_mut", node.lineno, rendered))

    def _record_toctou(self, node: ast.If) -> None:
        """`if (not) p.exists(): <write to p>` — check-then-act on a path."""
        test = node.test
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
        if not (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Attribute)
            and test.func.attr in ("exists", "is_file")
        ):
            return
        guarded = ast.unparse(test.func.value)
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            name = _call_name(child.func)
            if name == "exclusive_write_json":
                continue  # the sanctioned create-if-absent primitive
            is_write = (
                name in ATOMIC_WRITE_HELPERS
                or self.imports.qualify(child.func) in RAW_WRITE_CALLS
                or (name == "open" and _is_write_mode_call(child, 1))
                or (
                    isinstance(child.func, ast.Attribute)
                    and child.func.attr in IO_WRITE_ATTRS
                )
                or self.imports.qualify(child.func) == "os.replace"
            )
            if not is_write or not child.args:
                continue
            if ast.unparse(child.args[0]).startswith(guarded):
                self.effects.append(
                    Effect("toctou_exists", child.lineno, guarded)
                )

    def _record_rng_bind(self, node: ast.AST) -> None:
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            return
        kind = self._rng_constructor_kind(node.value)
        if kind is None:
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.rng_binds[target.id] = (node.lineno, kind)

    def _infer_var_type(self, node: ast.AST) -> None:
        """`v = ClassName(...)` pins v's class for method-call resolution."""
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            return
        func = node.value.func
        typed: Optional[str] = None
        if isinstance(func, ast.Name):
            if func.id in self.local_classes:
                typed = func.id
            else:
                alias = self.imports.aliases.get(func.id)
                if alias is not None and alias[:1].isalpha() and any(
                    part[:1].isupper() for part in alias.rsplit(".", 1)[-1:]
                ):
                    typed = alias
        elif isinstance(func, ast.Attribute):
            qualified = self.imports.qualify(func)
            if qualified is not None and qualified.rsplit(".", 1)[-1][:1].isupper():
                typed = qualified
        if typed is None:
            # Not a constructor: remember which callable produced the value
            # so `v = f(...); v.m()` resolves through f's return annotation.
            ref: Optional[str] = None
            if isinstance(func, ast.Name):
                ref = self.imports.aliases.get(func.id, func.id)
            elif isinstance(func, ast.Attribute):
                ref = self.imports.qualify(func)
            if ref is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.ret_binds[target.id] = ref
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.var_types[target.id] = typed

    def _collect_loop_rng_args(self, loop: ast.AST) -> None:
        loop_line = loop.lineno
        rebound_inside = _assigned_names(loop)
        for child in ast.walk(loop):
            if not isinstance(child, ast.Call):
                continue
            site = self._classify_call(child)
            if site is None:
                continue
            arg_names = [
                a.id for a in child.args if isinstance(a, ast.Name)
            ] + [
                k.value.id
                for k in child.keywords
                if isinstance(k.value, ast.Name)
            ]
            for name in arg_names:
                bound = self.rng_binds.get(name)
                if bound is None:
                    continue
                bound_line, _sanctioned = bound
                if bound_line < loop_line and name not in rebound_inside:
                    self.loop_rng_args.append(
                        LoopRngArg(
                            variable=name, bound_line=bound_line, call=site
                        )
                    )

    # -- driver ---------------------------------------------------------- #
    def run(self) -> None:
        # Two passes: bindings first (so a call on line N resolves against a
        # type assigned on line M > N too — good enough for lint purposes),
        # then calls/effects/mutations.
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            self._infer_var_type(node)
            self._record_rng_bind(node)
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Call):
                site = self._classify_call(node)
                if site is not None:
                    self.calls.append(site)
                self._record_effects(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._record_mutations(node)
            elif isinstance(node, ast.If):
                self._record_toctou(node)
            elif isinstance(node, (ast.For, ast.While)):
                self._collect_loop_rng_args(node)


def extract_file(ctx: FileContext) -> FileExtract:
    """Extract symbols, call sites and effect facts from one parsed file."""
    imports = ctx.imports
    module_level_names: Set[str] = set()
    local_classes: Set[str] = set()
    module_functions: Set[str] = set()
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            local_classes.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_functions.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_level_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            module_level_names.add(node.target.id)

    extract = FileExtract(
        rel=ctx.rel,
        imports=dict(imports.aliases),
        suppressions={
            line: sorted(codes) for line, codes in ctx.suppressions.items()
        },
    )

    def extract_function(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef", class_name: Optional[str]
    ) -> FunctionExtract:
        walker = _FunctionWalker(
            fn,
            class_name=class_name,
            imports=imports,
            module_level_names=module_level_names,
            local_classes=local_classes,
            module_functions=module_functions,
        )
        walker.run()
        local = f"{class_name}.{fn.name}" if class_name else fn.name
        return FunctionExtract(
            local=local,
            name=fn.name,
            line=fn.lineno,
            end_line=fn.end_lineno or fn.lineno,
            decorators=tuple(
                name
                for name in (_call_name(d) for d in fn.decorator_list)
                if name is not None
            ),
            params=tuple(walker.params),
            returns=_type_name(fn.returns, imports),
            calls=walker.calls,
            effects=walker.effects,
            loop_rng_args=walker.loop_rng_args,
        )

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract.functions.append(extract_function(node, None))
        elif isinstance(node, ast.ClassDef):
            attr_types: Dict[str, str] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    typed = _type_name(stmt.annotation, imports)
                    if typed is not None:
                        attr_types[stmt.target.id] = typed
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    extract.functions.append(extract_function(stmt, node.name))
                    # A property's return annotation types the attribute of
                    # the same name (`instance.graph` -> NetworkGraph).
                    decorators = {
                        _call_name(d) for d in stmt.decorator_list
                    }
                    if "property" in decorators or "cached_property" in decorators:
                        typed = _type_name(stmt.returns, imports)
                        if typed is not None:
                            attr_types[stmt.name] = typed
                    # `self.x: T = ...` in any method also types attribute x.
                    for child in ast.walk(stmt):
                        if (
                            isinstance(child, ast.AnnAssign)
                            and isinstance(child.target, ast.Attribute)
                            and isinstance(child.target.value, ast.Name)
                            and child.target.value.id == "self"
                        ):
                            typed = _type_name(child.annotation, imports)
                            if typed is not None:
                                attr_types[child.target.attr] = typed
            extract.classes.append(
                ClassExtract(
                    name=node.name,
                    line=node.lineno,
                    bases=tuple(
                        name
                        for name in (_call_name(b) for b in node.bases)
                        if name is not None
                    ),
                    attr_types=attr_types,
                )
            )
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            qualified = imports.qualify(node.value.func)
            name = _call_name(node.value.func)
            if qualified in RNG_CONSTRUCTOR_CALLS or name in SANCTIONED_RNG_FACTORIES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        extract.module_rng_globals.append(
                            (target.id, node.lineno)
                        )
    return extract


def extract_source(rel: str, source: str) -> FileExtract:
    """Parse *source* and extract it (used when no FileContext exists yet)."""
    tree = ast.parse(source, filename=rel)
    ctx = FileContext(path=None, rel=rel, source=source, tree=tree)  # type: ignore[arg-type]
    return extract_file(ctx)


# --------------------------------------------------------------------------- #
# the resolved graph
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Symbol:
    """One resolved function in the project graph."""

    qual: str  # <root>.<module path>.<Class>.<func>
    rel: str
    local: str  # "func" or "Class.func"
    line: int


class CallGraph:
    """The project call graph: symbols, edges, and resolution machinery.

    Built from per-file extracts (fresh or cache-loaded); all resolution is
    deterministic and order-independent, so two builds over the same
    extracts produce identical edge sets — the golden tests pin this.
    """

    def __init__(self, root_name: str, extracts: Dict[str, FileExtract]) -> None:
        self.root_name = root_name
        self.extracts = extracts
        #: module dotted path (without root prefix) per rel
        self.module_of: Dict[str, str] = {}
        #: full dotted module (root-prefixed) -> rel
        self.rel_of_module: Dict[str, str] = {}
        self.symbols: Dict[str, Symbol] = {}
        self.functions: Dict[str, FunctionExtract] = {}
        #: (rel, ClassName) -> ClassExtract
        self.classes: Dict[Tuple[str, str], ClassExtract] = {}
        #: bare class name -> [rel, ...] (for annotation-by-name resolution)
        self._class_rels: Dict[str, List[str]] = {}
        self.edges: Dict[str, List[Tuple[str, int]]] = {}
        self.reverse_edges: Dict[str, Set[str]] = {}
        self.unresolved_calls = 0
        self.resolved_calls = 0
        self._build_tables()
        self._build_edges()

    # -- table construction --------------------------------------------- #
    @staticmethod
    def _rel_to_module(rel: str) -> str:
        parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _build_tables(self) -> None:
        for rel, extract in sorted(self.extracts.items()):
            module = self._rel_to_module(rel)
            self.module_of[rel] = module
            full = f"{self.root_name}.{module}" if module else self.root_name
            self.rel_of_module[full] = rel
            for cls in extract.classes:
                self.classes[(rel, cls.name)] = cls
                self._class_rels.setdefault(cls.name, []).append(rel)
            for fn in extract.functions:
                qual = self.qualify(rel, fn.local)
                self.symbols[qual] = Symbol(
                    qual=qual, rel=rel, local=fn.local, line=fn.line
                )
                self.functions[qual] = fn

    def qualify(self, rel: str, local: str) -> str:
        module = self.module_of[rel]
        prefix = f"{self.root_name}.{module}" if module else self.root_name
        return f"{prefix}.{local}"

    # -- resolution ------------------------------------------------------ #
    def _resolve_class(
        self, rel: str, type_name: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        """(rel, ClassName) for a type string, seen from file *rel*."""
        if type_name is None:
            return None
        type_name = type_name.strip("'\"")
        if "." in type_name:
            module, _, cls = type_name.rpartition(".")
            target_rel = self.rel_of_module.get(module)
            if target_rel is not None and (target_rel, cls) in self.classes:
                return (target_rel, cls)
            # The dotted path may itself be module.Class.attr-free already;
            # fall through to bare-name matching on the last segment.
            type_name = cls
        if (rel, type_name) in self.classes:
            return (rel, type_name)
        rels = self._class_rels.get(type_name, [])
        if len(rels) == 1:
            return (rels[0], type_name)
        return None  # undefined or ambiguous: prove nothing

    def _method_symbol(
        self, rel: str, cls: str, method: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[str]:
        """The symbol for Class.method, following base classes by name."""
        seen = _seen or set()
        if (rel, cls) in seen:
            return None
        seen.add((rel, cls))
        qual = self.qualify(rel, f"{cls}.{method}")
        if qual in self.symbols:
            return qual
        extract = self.classes.get((rel, cls))
        if extract is None:
            return None
        for base in extract.bases:
            resolved = self._resolve_class(rel, base)
            if resolved is not None:
                found = self._method_symbol(*resolved, method, seen)
                if found is not None:
                    return found
        return None

    def _resolve_site(
        self, rel: str, caller: FunctionExtract, site: CallSite
    ) -> Optional[str]:
        extract = self.extracts[rel]
        if site.kind == "name":
            (name,) = site.data
            qual = self.qualify(rel, name)
            if qual in self.symbols:
                return qual
            resolved = self._resolve_class(rel, name)
            if resolved is not None and resolved[0] == rel and name not in extract.imports:
                return self._method_symbol(*resolved, "__init__")
            imported = extract.imports.get(name)
            if imported is not None:
                return self._resolve_dotted(imported)
            return None
        if site.kind == "qual":
            (dotted,) = site.data
            return self._resolve_dotted(dotted)
        if site.kind == "self":
            (method,) = site.data
            cls = caller.local.split(".", 1)[0]
            return self._method_symbol(rel, cls, method)
        if site.kind == "typed":
            type_name, method = site.data
            resolved = self._resolve_class(rel, type_name)
            if resolved is None:
                return None
            return self._method_symbol(*resolved, method)
        if site.kind == "ret":
            callable_ref, method = site.data
            if "." in callable_ref:
                producer = self._resolve_dotted(callable_ref)
            else:
                producer = self.qualify(rel, callable_ref)
                if producer not in self.symbols:
                    producer = None
            if producer is None:
                return None
            returns = self.functions[producer].returns
            target = self._resolve_class(self.symbols[producer].rel, returns)
            if target is None:
                return None
            return self._method_symbol(*target, method)
        if site.kind == "attr":
            type_name, attr, method = site.data
            resolved = self._resolve_class(rel, type_name)
            if resolved is None:
                return None
            attr_rel, attr_cls = resolved
            attr_type = self.classes[(attr_rel, attr_cls)].attr_types.get(attr)
            target = self._resolve_class(attr_rel, attr_type)
            if target is None:
                return None
            return self._method_symbol(*target, method)
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        """A fully qualified import path -> project symbol, if it is one."""
        parts = dotted.split(".")
        # Longest module prefix first: repro.a.b.C.m -> module repro.a.b,
        # symbol C.m; or module repro.a.b.c, symbol m.
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            rel = self.rel_of_module.get(module)
            if rel is None:
                continue
            local = ".".join(parts[cut:])
            qual = self.qualify(rel, local)
            if qual in self.symbols:
                return qual
            if len(parts) - cut == 1:
                # Bare class reference: route to the constructor.
                resolved = self._resolve_class(rel, local)
                if resolved is not None:
                    return self._method_symbol(*resolved, "__init__")
            if len(parts) - cut == 2:
                resolved = self._resolve_class(rel, parts[cut])
                if resolved is not None:
                    return self._method_symbol(*resolved, parts[cut + 1])
            return None
        return None

    def _build_edges(self) -> None:
        for qual, fn in sorted(self.functions.items()):
            rel = self.symbols[qual].rel
            out: List[Tuple[str, int]] = []
            for site in fn.calls:
                callee = self._resolve_site(rel, fn, site)
                if callee is None:
                    self.unresolved_calls += 1
                    continue
                self.resolved_calls += 1
                out.append((callee, site.line))
                self.reverse_edges.setdefault(callee, set()).add(qual)
            self.edges[qual] = out

    # -- queries ---------------------------------------------------------- #
    def resolve_call(
        self, rel: str, caller: FunctionExtract, site: CallSite
    ) -> Optional[str]:
        """Public resolution entry point for rules that hold raw call sites
        (e.g. the rng-reuse check resolving a loop body's callee)."""
        return self._resolve_site(rel, caller, site)

    def callees(self, qual: str) -> List[str]:
        return sorted({callee for callee, _ in self.edges.get(qual, [])})

    def edge_set(self) -> Set[Tuple[str, str]]:
        """Every (caller, callee) pair — what the golden test pins."""
        return {
            (caller, callee)
            for caller, out in self.edges.items()
            for callee, _ in out
        }

    def functions_matching(self, *patterns: str) -> List[str]:
        """Symbols whose file matches any fnmatch *pattern* (sorted)."""
        return sorted(
            qual
            for qual, sym in self.symbols.items()
            if any(
                fnmatch(sym.rel, pattern) or fnmatch(sym.rel, f"*/{pattern}")
                for pattern in patterns
            )
        )

    def decorated(self, *decorator_names: str) -> List[str]:
        """Symbols carrying any of the given decorator names (sorted)."""
        wanted = set(decorator_names)
        return sorted(
            qual
            for qual, fn in self.functions.items()
            if wanted.intersection(fn.decorators)
        )

    def file_dependencies(self) -> Dict[str, Set[str]]:
        """rel -> set of rels it depends on (imports and resolved calls)."""
        deps: Dict[str, Set[str]] = {rel: set() for rel in self.extracts}
        for rel, extract in self.extracts.items():
            for dotted in extract.imports.values():
                resolved = self._resolve_dotted(dotted)
                if resolved is not None:
                    deps[rel].add(self.symbols[resolved].rel)
                else:
                    # Module import: repro.utils.io -> utils/io.py
                    target = self.rel_of_module.get(dotted)
                    if target is None:
                        # `from repro.utils.io import X` qualifies X fully;
                        # peel trailing segments until a module matches.
                        parts = dotted.split(".")
                        for cut in range(len(parts) - 1, 0, -1):
                            target = self.rel_of_module.get(".".join(parts[:cut]))
                            if target is not None:
                                break
                    if target is not None:
                        deps[rel].add(target)
        for caller, out in self.edges.items():
            for callee, _ in out:
                deps[self.symbols[caller].rel].add(self.symbols[callee].rel)
        for rel in deps:
            deps[rel].discard(rel)
        return deps

    def reverse_file_closure(self, changed: Iterable[str]) -> Set[str]:
        """*changed* plus every file that (transitively) depends on one.

        This is the ``--diff`` lint scope: a change to ``utils/rng.py``
        re-lints every caller of its helpers, because an interface change
        there can create violations in files whose text did not change.
        """
        deps = self.file_dependencies()
        dependents: Dict[str, Set[str]] = {}
        for rel, targets in deps.items():
            for target in targets:
                dependents.setdefault(target, set()).add(rel)
        closure: Set[str] = set()
        frontier = [rel for rel in changed if rel in self.extracts]
        while frontier:
            rel = frontier.pop()
            if rel in closure:
                continue
            closure.add(rel)
            frontier.extend(dependents.get(rel, ()))
        return closure


# --------------------------------------------------------------------------- #
# the digest-keyed cache
# --------------------------------------------------------------------------- #
CACHE_SCHEMA = 1


def load_cache(path) -> Dict[str, Dict]:
    """The cache file's per-rel entries ({} on any mismatch or damage)."""
    import json
    from pathlib import Path

    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if doc.get("schema") != CACHE_SCHEMA or doc.get("extract_schema") != EXTRACT_SCHEMA:
        return {}
    files = doc.get("files")
    return files if isinstance(files, dict) else {}


def save_cache(path, entries: Dict[str, Dict]) -> None:
    """Persist per-rel extract entries atomically (the write discipline)."""
    from repro.utils.io import atomic_write_json

    atomic_write_json(
        path,
        {
            "schema": CACHE_SCHEMA,
            "extract_schema": EXTRACT_SCHEMA,
            "files": entries,
        },
        sort_keys=True,
    )
