"""The built-in ``repro lint`` rules (R001–R008).

Each rule encodes one invariant a previous PR established at runtime; the
``rationale`` field records which.  File-scoped rules get a
:class:`~repro.lint.framework.FileContext`; the registry-completeness rule
is project-scoped and sees every file at once.  Rules are pure AST
analyses — they never import or execute the code under inspection, so
linting a broken tree is safe.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.framework import (
    FileContext,
    Finding,
    ProjectContext,
    register_rule,
)

# --------------------------------------------------------------------------- #
# R001 — no raw entropy
# --------------------------------------------------------------------------- #
#: Legacy numpy global-state entry points (implicit hidden seed state).
_NUMPY_GLOBAL_STATE = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "bytes",
}

#: Entropy sources with no reproducible identity at all.
_RAW_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
                "secrets.token_hex", "secrets.randbelow"}


@register_rule(
    "R001",
    "no-raw-entropy",
    description=(
        "random.*, argless np.random.default_rng(), os.urandom and uuid4 "
        "are banned; all randomness flows through utils.rng "
        "(as_generator / derive_seed / derive_rng)"
    ),
    rationale=(
        "PR 3: scenario addressing is bit-reproducible only because every "
        "stream is derived statelessly from (root_seed, *path)"
    ),
    allowed_paths=("utils/rng.py",),
)
def check_raw_entropy(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.imports.qualify(node.func)
        if qual is None:
            continue
        if qual.startswith("random.") or qual == "random.Random":
            yield ctx.finding(
                node,
                "R001",
                f"call to stdlib '{qual}' (process-global entropy); use "
                "repro.utils.rng.as_generator / derive_rng instead",
            )
        elif qual in _RAW_ENTROPY:
            yield ctx.finding(
                node,
                "R001",
                f"call to '{qual}' (irreproducible entropy); derive "
                "randomness from a seed via repro.utils.rng",
            )
        elif (
            qual == "numpy.random.default_rng"
            and not node.args
            and not node.keywords
        ):
            yield ctx.finding(
                node,
                "R001",
                "argless np.random.default_rng() seeds from the OS; pass a "
                "seed or use repro.utils.rng.as_generator / derive_rng",
            )
        elif (
            qual.startswith("numpy.random.")
            and qual.rsplit(".", 1)[-1] in _NUMPY_GLOBAL_STATE
        ):
            yield ctx.finding(
                node,
                "R001",
                f"legacy numpy global-state API '{qual}'; use a Generator "
                "from repro.utils.rng instead",
            )


# --------------------------------------------------------------------------- #
# R002 — no wall clock
# --------------------------------------------------------------------------- #
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.strftime",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register_rule(
    "R002",
    "no-wall-clock",
    description=(
        "time.time() / datetime.now() are banned outside the sanctioned "
        "stamping helper (utils.timing.report_stamp); durations use "
        "time.perf_counter"
    ),
    rationale=(
        "PR 2/PR 3: report content must be reproducible from inputs; the "
        "only wall-clock a report may carry is its 'created' stamp, "
        "written by one helper"
    ),
    allowed_paths=("utils/timing.py",),
)
def check_wall_clock(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.imports.qualify(node.func)
        if qual in _WALL_CLOCK:
            yield ctx.finding(
                node,
                "R002",
                f"wall-clock read '{qual}'; stamp reports via "
                "repro.utils.timing.report_stamp()/file_stamp() (durations: "
                "time.perf_counter)",
            )


# --------------------------------------------------------------------------- #
# R003 — no float equality
# --------------------------------------------------------------------------- #
def _is_floatish(node: ast.expr) -> bool:
    """Whether *node* is provably a float expression (literal or float())."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_floatish(node.operand)
    ):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register_rule(
    "R003",
    "no-float-equality",
    description=(
        "== / != against float values is banned; use math.isclose or the "
        "TimeGrid relative-tolerance discipline"
    ),
    rationale=(
        "PR 4: absolute comparisons broke at ~1e6 horizons; all float "
        "tolerance in the library is relative to magnitude"
    ),
)
def check_float_equality(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_floatish(left) or _is_floatish(right):
                yield ctx.finding(
                    node,
                    "R003",
                    "float equality comparison; use math.isclose(...) or "
                    "the TimeGrid relative-tolerance helpers",
                )
                break


# --------------------------------------------------------------------------- #
# R004 — no non-atomic writes
# --------------------------------------------------------------------------- #
def _write_mode(node: ast.Call, mode_position: int) -> Optional[str]:
    """The constant file-mode argument of an open-like call, if any."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) > mode_position:
        mode_node = node.args[mode_position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _is_writing(mode: Optional[str]) -> bool:
    return mode is not None and any(ch in mode for ch in "wax+")


@register_rule(
    "R004",
    "no-nonatomic-write",
    description=(
        "open(..., 'w') / Path.write_text are banned; all output files go "
        "through utils.io.atomic_writer / atomic_write_* (temp + os.replace)"
    ),
    rationale=(
        "PR 4: kill-and-resume is safe only because a file either exists "
        "completely or not at all; the store's temp+rename discipline is "
        "now the shared utils.io helper"
    ),
    allowed_paths=("utils/io.py",),
)
def check_nonatomic_write(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_writing(_write_mode(node, 1)):
                yield ctx.finding(
                    node,
                    "R004",
                    "non-atomic open(..., 'w'); use "
                    "repro.utils.io.atomic_writer / atomic_write_*",
                )
            continue
        qual = ctx.imports.qualify(func)
        if qual == "os.fdopen":
            if _is_writing(_write_mode(node, 1)):
                yield ctx.finding(
                    node,
                    "R004",
                    "non-atomic os.fdopen(..., 'w'); use "
                    "repro.utils.io.atomic_writer / atomic_write_*",
                )
            continue
        if isinstance(func, ast.Attribute):
            if func.attr == "open" and _is_writing(_write_mode(node, 0)):
                yield ctx.finding(
                    node,
                    "R004",
                    "non-atomic .open('w'); use "
                    "repro.utils.io.atomic_writer / atomic_write_*",
                )
            elif func.attr in ("write_text", "write_bytes"):
                yield ctx.finding(
                    node,
                    "R004",
                    f"non-atomic .{func.attr}(...); use "
                    "repro.utils.io.atomic_write_text / atomic_write_json",
                )


# --------------------------------------------------------------------------- #
# R005 — plain JSON at the boundary
# --------------------------------------------------------------------------- #
@register_rule(
    "R005",
    "json-boundary",
    description=(
        "direct json.dump/json.dumps only inside the serialization boundary "
        "(store.serialize, store.fingerprint, utils.io); everything else "
        "writes via atomic_write_json, which numpy-normalizes first"
    ),
    rationale=(
        "PR 4/PR 5: numpy scalars reaching json.dump either crash or "
        "silently change rendering; results cross the boundary as plain "
        "JSON only"
    ),
    allowed_paths=("utils/io.py", "store/serialize.py", "store/fingerprint.py"),
)
def check_json_boundary(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.imports.qualify(node.func)
        if qual in ("json.dump", "json.dumps"):
            yield ctx.finding(
                node,
                "R005",
                f"direct {qual.split('.')[-1]} outside the serialization "
                "boundary; write files via utils.io.atomic_write_json and "
                "build keys via store.fingerprint.canonical_json",
            )


# --------------------------------------------------------------------------- #
# R006 — registry completeness (project-scoped)
# --------------------------------------------------------------------------- #
def _registrations(
    project: ProjectContext,
) -> List[Tuple[FileContext, ast.AST, Optional[str], Dict[str, object], Set[str]]]:
    """Every ``@register_algorithm`` site: (file, node, name, kwargs, refs)."""
    sites = []
    for ctx in project.files:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                func = decorator.func
                target = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if target != "register_algorithm":
                    continue
                name: Optional[str] = None
                if decorator.args and isinstance(decorator.args[0], ast.Constant):
                    value = decorator.args[0].value
                    name = value if isinstance(value, str) else None
                kwargs: Dict[str, object] = {}
                for keyword in decorator.keywords:
                    if keyword.arg is not None and isinstance(
                        keyword.value, ast.Constant
                    ):
                        kwargs[keyword.arg] = keyword.value.value
                refs: Set[str] = {node.name}
                for child in ast.walk(node):
                    if isinstance(child, ast.Name):
                        refs.add(child.id)
                    elif isinstance(child, ast.Attribute):
                        refs.add(child.attr)
                sites.append((ctx, decorator, name, kwargs, refs))
    return sites


@register_rule(
    "R006",
    "registry-completeness",
    description=(
        "every *_schedule entry point in baselines/ is reachable from a "
        "@register_algorithm registration, and registrations in online "
        "modules carry online=True"
    ),
    rationale=(
        "PR 1/PR 5: the registry is the single dispatch surface (CLI, "
        "batch, sweep, verify); an unregistered entry point is invisible "
        "to all of them, and a mis-flagged online policy dodges the "
        "online invariants"
    ),
    scope="project",
)
def check_registry_completeness(project: ProjectContext) -> Iterator[Finding]:
    sites = _registrations(project)
    referenced: Set[str] = set()
    for _ctx, _node, _name, _kwargs, refs in sites:
        referenced.update(refs)

    # (a) completeness: baselines entry points must be reachable.
    for ctx in project.matching("baselines/*.py"):
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") or not node.name.endswith("_schedule"):
                continue
            if node.name not in referenced:
                yield ctx.finding(
                    node,
                    "R006",
                    f"schedule entry point '{node.name}' is not referenced "
                    "by any @register_algorithm registration; register it "
                    "so the CLI/batch/sweep/verify layers can reach it",
                )

    # (b) flag consistency: online modules register online policies.
    online_files = {id(c) for c in project.matching("online/*.py")}
    for ctx, node, name, kwargs, _refs in sites:
        label = name or "<dynamic>"
        if id(ctx) in online_files and kwargs.get("online") is not True:
            yield ctx.finding(
                node,
                "R006",
                f"registration '{label}' in an online module must set "
                "online=True so the online invariants cover it",
            )
        elif (
            name is not None
            and name.startswith("online-")
            and kwargs.get("online") is not True
        ):
            yield ctx.finding(
                node,
                "R006",
                f"registration '{label}' is named like an online policy "
                "but does not set online=True",
            )

    # (c) an online/policies.py module with no registrations at all has
    # fallen out of the registry entirely.
    for ctx in project.matching("online/policies.py"):
        if not any(id(site_ctx) == id(ctx) for site_ctx, *_ in sites):
            yield Finding(
                path=ctx.rel,
                line=1,
                col=1,
                rule="R006",
                message=(
                    "online/policies.py defines no @register_algorithm "
                    "registration; online policies must be registered"
                ),
            )


# --------------------------------------------------------------------------- #
# R007 — no silent broad except
# --------------------------------------------------------------------------- #
def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises the caught exception (bare ``raise``)."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _broad_names(type_node: Optional[ast.expr]) -> List[str]:
    if type_node is None:
        return ["bare except"]
    nodes = (
        list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
    )
    return [
        node.id
        for node in nodes
        if isinstance(node, ast.Name) and node.id in ("Exception", "BaseException")
    ]


@register_rule(
    "R007",
    "no-silent-broad-except",
    description=(
        "except Exception / bare except is banned unless the handler "
        "re-raises; sanctioned crash-recording sites carry an explicit "
        "allow[R007]"
    ),
    rationale=(
        "PR 3: the verification harness records crashes as data "
        "deliberately; everywhere else a broad except hides programming "
        "errors behind plausible results"
    ),
)
def check_broad_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_names(node.type)
        if not broad or _handler_reraises(node):
            continue
        label = broad[0]
        yield ctx.finding(
            node,
            "R007",
            f"broad '{'except' if label == 'bare except' else f'except {label}'}'"
            " silently swallows programming errors; catch the specific "
            "failure types (or re-raise)",
        )


# --------------------------------------------------------------------------- #
# R008 — no deprecated shims
# --------------------------------------------------------------------------- #
_DEPRECATED = {"solve_coflow_schedule", "SchedulingOutcome"}


@register_rule(
    "R008",
    "no-deprecated-shims",
    description=(
        "solve_coflow_schedule / SchedulingOutcome are external "
        "compatibility shims; inside src/ everything dispatches through "
        "repro.api (solve / SolveReport)"
    ),
    rationale=(
        "PR 1: the unified API is the single dispatch surface; internal "
        "shim usage would let capability flags and report semantics drift"
    ),
    allowed_paths=(
        "__init__.py",
        "core/__init__.py",
        "core/scheduler.py",
        "api/report.py",
    ),
)
def check_deprecated_shims(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in _DEPRECATED:
                    yield ctx.finding(
                        node,
                        "R008",
                        f"import of deprecated shim '{alias.name}'; use "
                        "repro.api.solve / SolveReport inside src/",
                    )
        elif isinstance(node, ast.Name) and node.id in _DEPRECATED:
            yield ctx.finding(
                node,
                "R008",
                f"use of deprecated shim '{node.id}'; use repro.api.solve "
                "/ SolveReport inside src/",
            )
        elif isinstance(node, ast.Attribute) and node.attr in _DEPRECATED:
            yield ctx.finding(
                node,
                "R008",
                f"use of deprecated shim '{node.attr}'; use repro.api.solve "
                "/ SolveReport inside src/",
            )


# --------------------------------------------------------------------------- #
# R009 — no bare sleep / ad-hoc retry
# --------------------------------------------------------------------------- #
@register_rule(
    "R009",
    "no-bare-sleep",
    description=(
        "time.sleep is banned outside the sanctioned retry/backoff module "
        "(utils/retry.py); pauses go through Backoff.sleep"
    ),
    rationale=(
        "PR 7: the sweep fabric's recovery guarantees depend on every "
        "delay being bounded, enumerable and deterministically jittered; "
        "an ad-hoc sleep is an unbounded, unseeded wait the chaos harness "
        "cannot reason about"
    ),
    allowed_paths=("utils/retry.py",),
)
def check_bare_sleep(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.imports.qualify(node.func)
        if qual in ("time.sleep", "asyncio.sleep"):
            yield ctx.finding(
                node,
                "R009",
                f"bare sleep '{qual}'; route delays through "
                "repro.utils.retry.Backoff.sleep so they are bounded and "
                "deterministic",
            )


# --------------------------------------------------------------------------- #
# R010 — no direct solver-engine access
# --------------------------------------------------------------------------- #
@register_rule(
    "R010",
    "no-direct-linprog",
    description=(
        "scipy.optimize.linprog and the private _highspy engine are only "
        "touched inside repro.lp.backends; everything else solves through "
        "a SolverBackend (or the solve_lp wrapper on top of it)"
    ),
    rationale=(
        "PR 10: the staged solve pipeline's warm starts, dual extraction "
        "and caching discipline live in the backend layer; a direct engine "
        "call bypasses result normalization, the optimal-only cache rule "
        "and the HIGHS_AVAILABLE fallback"
    ),
    allowed_paths=("lp/backends/linprog.py", "lp/backends/highs.py"),
)
def check_direct_linprog(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if "_highspy" in alias.name:
                    yield ctx.finding(
                        node,
                        "R010",
                        f"import of private HiGHS engine '{alias.name}'; "
                        "use repro.lp.backends (PersistentHighsBackend) "
                        "instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if "_highspy" in module:
                yield ctx.finding(
                    node,
                    "R010",
                    f"import from private HiGHS engine '{module}'; use "
                    "repro.lp.backends (PersistentHighsBackend) instead",
                )
                continue
            for alias in node.names:
                if "_highspy" in alias.name:
                    yield ctx.finding(
                        node,
                        "R010",
                        f"import of private HiGHS engine '{alias.name}'; "
                        "use repro.lp.backends (PersistentHighsBackend) "
                        "instead",
                    )
                elif module == "scipy.optimize" and alias.name == "linprog":
                    yield ctx.finding(
                        node,
                        "R010",
                        "direct import of scipy.optimize.linprog; solve "
                        "through repro.lp.backends.LinprogBackend (or "
                        "repro.lp.solver.solve_lp) instead",
                    )
        elif isinstance(node, ast.Call):
            qual = ctx.imports.qualify(node.func)
            if qual == "scipy.optimize.linprog":
                yield ctx.finding(
                    node,
                    "R010",
                    "direct call to scipy.optimize.linprog; solve through "
                    "repro.lp.backends.LinprogBackend (or "
                    "repro.lp.solver.solve_lp) instead",
                )


#: Importing this module registers every built-in rule; the tuple is the
#: stable public catalogue (mirrors scenarios.families' registration style).
BUILTIN_RULES = (
    "R001",
    "R002",
    "R003",
    "R004",
    "R005",
    "R006",
    "R007",
    "R008",
    "R009",
    "R010",
)
