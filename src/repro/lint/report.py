"""Lint report rendering: CLI text, machine-readable JSON, LINT_*.json.

``LINT_<date>.json`` joins the ``BENCH_*.json`` / ``VERIFY_*.json`` report
family: stamped through :func:`repro.utils.timing.report_stamp`, written
atomically through :func:`repro.utils.io.atomic_write_json`, and uploaded
by the CI lint job as an artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.lint.framework import rule_table
from repro.lint.runner import LintResult
from repro.utils.io import atomic_write_json
from repro.utils.timing import file_stamp, report_stamp

SCHEMA_VERSION = 1


def result_to_json(result: LintResult) -> Dict:
    """The JSON document for *result* (what ``--format json`` prints)."""
    return {
        "schema": SCHEMA_VERSION,
        "created": report_stamp(),
        "root": str(result.root),
        "files_checked": result.files_checked,
        "rules": [
            {
                "code": info.code,
                "name": info.name,
                "scope": info.scope,
                "description": info.description,
                "rationale": info.rationale,
                "allowed_paths": list(info.allowed_paths),
            }
            for info in rule_table()
            if info.code in result.rules_run
        ],
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in result.findings
        ],
        "summary": {
            "findings": len(result.findings),
            "by_rule": result.by_rule(),
            "suppressions_used": result.suppressions_used,
            "ok": result.ok,
        },
        "timings": {
            stage: round(seconds, 6)
            for stage, seconds in result.timings.items()
        },
        "cache": {
            "hits": result.cache_hits,
            "misses": result.cache_misses,
        },
        "scope": {
            "files_targeted": result.files_targeted,
            "diff_base": result.diff_base,
        },
    }


def write_certificate(result: LintResult, output: str | Path = ".") -> Path:
    """Write ``KERNEL_PURITY.json``; *output* may be a directory or a path.

    The certificate document itself is deterministic (no timestamps — see
    :func:`repro.lint.interproc.build_certificate`), so writing it to the
    same tree state twice produces byte-identical files; the committed copy
    at the repo root only changes when the kernel or the analyzer does.
    """
    if result.certificate is None:
        raise ValueError(
            "no certificate on this result: run_lint must have run all of "
            "R301/R302/R303 (they are included in the default selection)"
        )
    path = Path(output)
    if path.suffix != ".json":
        path = path / "KERNEL_PURITY.json"
    return atomic_write_json(path, result.certificate, sort_keys=True)


def write_lint_report(result: LintResult, output: str | Path = ".") -> Path:
    """Write the JSON report; *output* may be a directory or a ``.json`` path."""
    path = Path(output)
    if path.suffix != ".json":
        path = path / f"LINT_{file_stamp()}.json"
    return atomic_write_json(path, result_to_json(result))


def format_result(result: LintResult) -> str:
    """Human-readable lint output (one line per finding plus a summary)."""
    lines: List[str] = [finding.render() for finding in result.findings]
    if lines:
        lines.append("")
    by_rule = ", ".join(
        f"{rule}:{count}" for rule, count in result.by_rule().items()
    )
    suppressed = (
        f", {result.suppressions_used} finding(s) suppressed"
        if result.suppressions_used
        else ""
    )
    verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    detail = f" [{by_rule}]" if by_rule else ""
    lines.append(
        f"repro lint: {result.files_checked} files, "
        f"{len(result.rules_run)} rules -> {verdict}{detail}{suppressed}"
    )
    return "\n".join(lines)


def format_rule_table() -> str:
    """The rule catalogue (``repro lint --list-rules``)."""
    lines: List[str] = []
    for info in rule_table():
        exempt = (
            f" (sanctioned: {', '.join(info.allowed_paths)})"
            if info.allowed_paths
            else ""
        )
        lines.append(f"{info.code} {info.name} [{info.scope}]{exempt}")
        lines.append(f"     {info.description}")
        if info.rationale:
            lines.append(f"     rationale: {info.rationale}")
    lines.append(
        "R000 unused-suppression: an allow[...] comment that suppresses "
        "nothing is itself a finding"
    )
    lines.append(
        'suppression syntax: trailing comment "# repro-lint: allow[R004]" '
        "(comma-separate several codes)"
    )
    return "\n".join(lines)
