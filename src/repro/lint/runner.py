"""Lint execution: walk a tree, run the rules, apply suppressions.

:func:`run_lint` is the single entry point the CLI and the tests use.  It
returns a :class:`LintResult` whose findings are already suppression-
filtered, augmented with ``R000`` unused-suppression findings and sorted —
the CLI only formats and exits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint import rules as _rules  # noqa: F401 - registers the built-ins
from repro.lint.framework import (
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    FileContext,
    Finding,
    ProjectContext,
    get_rule,
    rule_codes,
)


def default_root() -> Path:
    """The installed ``repro`` package directory — what ``repro lint`` checks."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_python_files(root: Path) -> List[Path]:
    """Every ``.py`` file under *root* (sorted; ``__pycache__`` skipped)."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


@dataclass
class LintResult:
    """Outcome of one lint run (already filtered and sorted)."""

    root: Path
    findings: List[Finding]
    files_checked: int
    rules_run: Tuple[str, ...]
    suppressions_used: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def _build_contexts(
    root: Path, files: Sequence[Path]
) -> Tuple[List[FileContext], List[Finding]]:
    contexts: List[FileContext] = []
    parse_failures: List[Finding] = []
    for path in files:
        rel = (
            path.relative_to(root).as_posix()
            if root.is_dir()
            else path.name
        )
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            parse_failures.append(
                Finding(
                    path=rel,
                    line=int(line),
                    col=1,
                    rule=PARSE_ERROR,
                    message=f"could not parse file: {exc}",
                )
            )
            continue
        contexts.append(FileContext(path=path, rel=rel, source=source, tree=tree))
    return contexts, parse_failures


def run_lint(
    root: Optional[str | Path] = None,
    *,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint *root* (default: the installed ``repro`` package).

    Parameters
    ----------
    root:
        Directory (or single file) to analyze.
    select:
        Rule codes to run (default: all registered rules).  Unknown codes
        raise ``ValueError`` with the catalogue, mirroring the scenario
        engine's fail-fast validation.

    Returns
    -------
    LintResult
        Suppression-filtered findings (sorted by path/line/col/rule) plus
        ``R000`` findings for suppressions that matched nothing — a stale
        ``allow[...]`` is itself a finding, so the allowlist cannot rot.
    """
    root = Path(root) if root is not None else default_root()
    if not root.exists():
        raise ValueError(f"lint target {root} does not exist")
    chosen = tuple(select) if select is not None else rule_codes()
    if not chosen:
        raise ValueError("select must name at least one rule")
    # R000 (unused suppressions) and E001 (parse errors) are meta-checks,
    # selectable but not registry entries; everything else fails fast on
    # typos with the full catalogue in the message.
    infos = [
        get_rule(code)
        for code in chosen
        if code not in (UNUSED_SUPPRESSION, PARSE_ERROR)
    ]

    files = iter_python_files(root)
    contexts, findings = _build_contexts(root, files)
    by_rel = {ctx.rel: ctx for ctx in contexts}
    project = ProjectContext(root=root, files=contexts)

    raw: List[Finding] = []
    for info in infos:
        if info.scope == "project":
            raw.extend(info.check(project))
        else:
            for ctx in contexts:
                if info.exempts(ctx.rel):
                    continue
                raw.extend(info.check(ctx))

    # Apply suppressions: an allow[CODE] comment on the finding's line
    # silences it and marks the suppression as consumed.
    consumed: Set[Tuple[str, int, str]] = set()
    for finding in raw:
        ctx = by_rel.get(finding.path)
        allowed = ctx.suppressions.get(finding.line, set()) if ctx else set()
        if finding.rule in allowed:
            consumed.add((finding.path, finding.line, finding.rule))
        else:
            findings.append(finding)

    # Report unused (or unknown-code) suppressions, unless R000 itself was
    # deselected.  A suppression for a rule outside the current selection
    # is not "unused" — the rule never ran, so it had no chance to match.
    registered = set(rule_codes())
    if UNUSED_SUPPRESSION in chosen or select is None:
        for ctx in contexts:
            for line, codes in sorted(ctx.suppressions.items()):
                for code in sorted(codes):
                    if code in registered and code not in chosen:
                        continue
                    if (ctx.rel, line, code) in consumed:
                        continue
                    reason = (
                        "suppresses nothing on this line"
                        if code in registered
                        else "names an unknown rule"
                    )
                    findings.append(
                        Finding(
                            path=ctx.rel,
                            line=line,
                            col=1,
                            rule=UNUSED_SUPPRESSION,
                            message=(
                                f"unused suppression: allow[{code}] {reason}; "
                                "remove the stale comment"
                            ),
                        )
                    )

    return LintResult(
        root=root,
        findings=sorted(findings),
        files_checked=len(files),
        rules_run=chosen,
        suppressions_used=len(consumed),
    )
