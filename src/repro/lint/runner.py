"""Lint execution: walk a tree, run the rules, apply suppressions.

:func:`run_lint` is the single entry point the CLI and the tests use.  It
returns a :class:`LintResult` whose findings are already suppression-
filtered, augmented with ``R000`` unused-suppression findings and sorted —
the CLI only formats and exits.

One parse, three scopes
-----------------------
Every file is read and parsed exactly once into a
:class:`~repro.lint.framework.FileContext`; the same parsed tree feeds the
file-scoped rules, the project-scoped rules, the per-file *extraction* for
the call graph, and the suppression pass.  Extraction results are cacheable
(``cache_path``): the cache is keyed by source digest, so a warm run reuses
the extract of every unchanged file and the graph build pays only for what
changed.  ``LintResult.timings`` records where the time went; the numbers
land in ``LINT_<date>.json`` so a slow lint run is a diagnosable artifact,
not an anecdote.

Diff scope
----------
``diff="REF"`` narrows the *file-scoped* rules (and the unused-suppression
meta-check) to the files changed versus a git ref **plus their
reverse-dependency closure** from the call graph — a change to
``utils/rng.py`` re-lints every caller, because an interface change there
can create violations in files whose text did not change.  Project- and
graph-scoped rules always see the full tree: their semantics are global
(registry completeness, call closures) and running them on a subset would
invent false positives.
"""

from __future__ import annotations

import ast
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint import interproc as _interproc  # noqa: F401 - registers R1xx-R3xx
from repro.lint import rules as _rules  # noqa: F401 - registers the built-ins
from repro.lint.callgraph import (
    CallGraph,
    FileExtract,
    extract_file,
    load_cache,
    save_cache,
    source_digest,
)
from repro.lint.framework import (
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    FileContext,
    Finding,
    ProjectContext,
    get_rule,
    rule_codes,
)
from repro.lint.interproc import CERTIFICATE_RULES, build_certificate


def default_root() -> Path:
    """The installed ``repro`` package directory — what ``repro lint`` checks."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_python_files(root: Path) -> List[Path]:
    """Every ``.py`` file under *root* (sorted; ``__pycache__`` skipped)."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def expand_selection(select: Sequence[str]) -> Tuple[str, ...]:
    """Resolve a ``--select`` list to concrete rule codes.

    Each entry is either an exact code (``R101``, ``R000``, ``E001``) or a
    family prefix (``R1`` selects every registered ``R1xx`` rule) — the
    spelling the issue tracker uses (``--select R1,R2,R3``).  Unknown
    entries raise ``ValueError`` with the catalogue, mirroring the scenario
    engine's fail-fast validation.
    """
    registered = rule_codes()
    meta = (UNUSED_SUPPRESSION, PARSE_ERROR)
    chosen: List[str] = []
    for entry in select:
        if entry in registered or entry in meta:
            if entry not in chosen:
                chosen.append(entry)
            continue
        expanded = [code for code in registered if code.startswith(entry)]
        if not expanded:
            raise ValueError(
                f"unknown lint rule or family {entry!r}; registered rules: "
                + ", ".join(registered)
            )
        for code in expanded:
            if code not in chosen:
                chosen.append(code)
    return tuple(chosen)


def changed_files(root: Path, ref: str) -> List[str]:
    """Root-relative posix paths of ``.py`` files changed versus *ref*.

    Includes uncommitted changes (``git diff REF`` semantics).  Raises
    ``ValueError`` when *root* is not inside a git work tree or the ref
    does not resolve — a typo'd ref must fail the run, not silently lint
    nothing.
    """
    anchor = root if root.is_dir() else root.parent
    try:
        toplevel_proc = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=anchor,
            capture_output=True,
            text=True,
            check=True,
        )
        diff_proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            cwd=anchor,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise ValueError(
            f"--diff {ref!r} failed: {detail.strip()}"
        ) from None
    toplevel = Path(toplevel_proc.stdout.strip())
    out: List[str] = []
    for name in diff_proc.stdout.splitlines():
        name = name.strip()
        if not name.endswith(".py"):
            continue
        absolute = toplevel / name
        try:
            out.append(absolute.relative_to(root).as_posix())
        except ValueError:
            continue  # changed, but outside the lint root
    return sorted(set(out))


@dataclass
class LintResult:
    """Outcome of one lint run (already filtered and sorted)."""

    root: Path
    findings: List[Finding]
    files_checked: int
    rules_run: Tuple[str, ...]
    suppressions_used: int = 0
    #: Seconds per stage: read_parse, extract, graph, rules, total.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Extract-cache statistics (both zero when no cache_path was given).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Files the file-scoped rules ran on (== files_checked without --diff).
    files_targeted: int = 0
    #: The git ref of a --diff run, None otherwise.
    diff_base: Optional[str] = None
    #: Kernel-purity certificate (present when all of R301/R302/R303 ran).
    certificate: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def _build_contexts(
    root: Path, files: Sequence[Path]
) -> Tuple[List[FileContext], List[Finding]]:
    contexts: List[FileContext] = []
    parse_failures: List[Finding] = []
    for path in files:
        rel = (
            path.relative_to(root).as_posix()
            if root.is_dir()
            else path.name
        )
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            parse_failures.append(
                Finding(
                    path=rel,
                    line=int(line),
                    col=1,
                    rule=PARSE_ERROR,
                    message=f"could not parse file: {exc}",
                )
            )
            continue
        contexts.append(FileContext(path=path, rel=rel, source=source, tree=tree))
    return contexts, parse_failures


def run_lint(
    root: Optional[str | Path] = None,
    *,
    select: Optional[Sequence[str]] = None,
    diff: Optional[str] = None,
    cache_path: Optional[str | Path] = None,
) -> LintResult:
    """Lint *root* (default: the installed ``repro`` package).

    Parameters
    ----------
    root:
        Directory (or single file) to analyze.
    select:
        Rule codes or family prefixes to run (default: all registered
        rules).  ``"R1"`` expands to every ``R1xx`` rule; unknown entries
        raise ``ValueError`` with the catalogue.
    diff:
        Git ref; when given, file-scoped rules run only on files changed
        versus the ref plus their reverse-dependency closure.  Project-
        and graph-scoped rules still analyze the full tree.
    cache_path:
        JSON extract-cache location.  Loaded if present (entries keyed by
        source digest), rewritten after the run.  Corrupt or
        schema-mismatched caches are ignored, never trusted.

    Returns
    -------
    LintResult
        Suppression-filtered findings (sorted by path/line/col/rule) plus
        ``R000`` findings for suppressions that matched nothing — a stale
        ``allow[...]`` is itself a finding, so the allowlist cannot rot.
    """
    started = time.perf_counter()
    root = Path(root) if root is not None else default_root()
    if not root.exists():
        raise ValueError(f"lint target {root} does not exist")
    if select is not None:
        chosen = expand_selection(tuple(select))
        if not chosen:
            raise ValueError("select must name at least one rule")
    else:
        chosen = rule_codes()
    infos = [
        get_rule(code)
        for code in chosen
        if code not in (UNUSED_SUPPRESSION, PARSE_ERROR)
    ]

    # ---- read + parse (once, shared by every scope) ---------------------- #
    t0 = time.perf_counter()
    files = iter_python_files(root)
    contexts, findings = _build_contexts(root, files)
    by_rel = {ctx.rel: ctx for ctx in contexts}
    project = ProjectContext(root=root, files=contexts)
    read_parse_seconds = time.perf_counter() - t0

    # ---- extraction (digest-keyed cache) --------------------------------- #
    t0 = time.perf_counter()
    digests = {ctx.rel: source_digest(ctx.source) for ctx in contexts}
    cached = load_cache(cache_path) if cache_path is not None else {}
    extracts: Dict[str, FileExtract] = {}
    cache_hits = 0
    cache_misses = 0
    need_graph = diff is not None or any(info.scope == "graph" for info in infos)
    if need_graph:
        entries: Dict[str, Dict] = {}
        for ctx in contexts:
            digest = digests[ctx.rel]
            entry = cached.get(ctx.rel)
            if entry is not None and entry.get("digest") == digest:
                try:
                    extracts[ctx.rel] = FileExtract.from_dict(entry["extract"])
                    cache_hits += 1
                except (KeyError, TypeError, ValueError):
                    entry = None  # damaged entry: fall through to re-extract
            if ctx.rel not in extracts:
                extracts[ctx.rel] = extract_file(ctx)
                if cache_path is not None:
                    cache_misses += 1
            entries[ctx.rel] = {
                "digest": digest,
                "extract": extracts[ctx.rel].to_dict(),
            }
        if cache_path is not None:
            save_cache(cache_path, entries)
    extract_seconds = time.perf_counter() - t0

    # ---- graph build ------------------------------------------------------ #
    t0 = time.perf_counter()
    graph: Optional[CallGraph] = None
    if need_graph:
        root_name = root.name if root.is_dir() else root.stem
        graph = CallGraph(root_name, extracts)
    graph_seconds = time.perf_counter() - t0

    # ---- diff scope ------------------------------------------------------- #
    target_rels: Set[str] = set(by_rel)
    if diff is not None:
        changed = changed_files(root, diff)
        assert graph is not None  # need_graph covers diff mode
        target_rels = graph.reverse_file_closure(changed)

    # ---- rules ------------------------------------------------------------ #
    t0 = time.perf_counter()
    raw: List[Finding] = []
    for info in infos:
        if info.scope == "graph":
            assert graph is not None
            raw.extend(
                finding
                for finding in info.check(project, graph)
                if not info.exempts(finding.path)
            )
        elif info.scope == "project":
            raw.extend(info.check(project))
        else:
            for ctx in contexts:
                if ctx.rel not in target_rels or info.exempts(ctx.rel):
                    continue
                raw.extend(info.check(ctx))
    rules_seconds = time.perf_counter() - t0

    # Apply suppressions: an allow[CODE] comment on the finding's line
    # silences it and marks the suppression as consumed.  Suppressed R3xx
    # findings are kept aside: the purity certificate lists them as
    # sanctioned effects rather than letting them vanish.
    consumed: Set[Tuple[str, int, str]] = set()
    sanctioned_r3: List[Finding] = []
    surviving_r3: List[Finding] = []
    for finding in raw:
        ctx = by_rel.get(finding.path)
        allowed = ctx.suppressions.get(finding.line, set()) if ctx else set()
        if finding.rule in allowed:
            consumed.add((finding.path, finding.line, finding.rule))
            if finding.rule in CERTIFICATE_RULES:
                sanctioned_r3.append(finding)
        else:
            findings.append(finding)
            if finding.rule in CERTIFICATE_RULES:
                surviving_r3.append(finding)

    # Report unused (or unknown-code) suppressions, unless R000 itself was
    # deselected.  A suppression for a rule outside the current selection
    # is not "unused" — the rule never ran, so it had no chance to match.
    # Under --diff only target files are judged: a file-scoped rule never
    # ran on the others, so their suppressions had no chance to match.
    registered = set(rule_codes())
    if UNUSED_SUPPRESSION in chosen or select is None:
        for ctx in contexts:
            if ctx.rel not in target_rels:
                continue
            for line, codes in sorted(ctx.suppressions.items()):
                for code in sorted(codes):
                    if code in registered and code not in chosen:
                        continue
                    if (ctx.rel, line, code) in consumed:
                        continue
                    reason = (
                        "suppresses nothing on this line"
                        if code in registered
                        else "names an unknown rule"
                    )
                    findings.append(
                        Finding(
                            path=ctx.rel,
                            line=line,
                            col=1,
                            rule=UNUSED_SUPPRESSION,
                            message=(
                                f"unused suppression: allow[{code}] {reason}; "
                                "remove the stale comment"
                            ),
                        )
                    )

    certificate: Optional[Dict] = None
    if graph is not None and all(code in chosen for code in CERTIFICATE_RULES):
        certificate = build_certificate(
            graph, digests, surviving_r3, sanctioned_r3
        )

    total_seconds = time.perf_counter() - started
    return LintResult(
        root=root,
        findings=sorted(findings),
        files_checked=len(files),
        rules_run=chosen,
        suppressions_used=len(consumed),
        timings={
            "read_parse": read_parse_seconds,
            "extract": extract_seconds,
            "graph": graph_seconds,
            "rules": rules_seconds,
            "total": total_seconds,
        },
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        files_targeted=len(target_rels),
        diff_base=diff,
        certificate=certificate,
    )
