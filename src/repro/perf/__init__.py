"""Performance measurement: the ``repro bench`` harness.

:mod:`repro.perf.harness` runs the repository's performance scenarios
(vectorized LP assembly vs the loop-based reference, the incremental
simulator vs full per-event re-allocation, and the shared-LP batch runner),
emits a ``BENCH_<date>.json`` trajectory file, and compares against the
previous report so regressions are visible run-over-run.
"""

from repro.perf.harness import (
    compare_reports,
    find_previous_report,
    format_report,
    run_bench,
    write_report,
)

__all__ = [
    "compare_reports",
    "find_previous_report",
    "format_report",
    "run_bench",
    "write_report",
]
