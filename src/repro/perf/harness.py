"""The ``repro bench`` performance harness.

Every scenario measures the *optimized* implementation against the
*pre-optimization reference* implementation preserved in
:mod:`repro.core.timeindexed_reference` and :mod:`repro.sim.reference`, in
the same process and on the same inputs — so each ``BENCH_<date>.json``
records a self-contained speedup trajectory rather than numbers measured on
different hardware at different times.

Scenarios
---------
``lp_build``
    Assembly time of the time-indexed LP (vectorized vs loop-based), plus
    LP rows / nonzeros and one HiGHS solve per case.
``simulator``
    Events/sec of the continuous-time simulator (incremental allocation +
    warm-started per-event LPs vs full per-event re-allocation) for the
    Terra (free path) and greedy (single path) scenarios, checking that both
    implementations produce the same completion times.
``lp_solve``
    The staged solve pipeline: ``strategy="direct"`` vs ``"refine"``
    (geometric stage + warm-started fine solve) vs ``"coarsen"``
    (dual-guided adaptive grid) on fine-uniform grids, tracking per-stage
    solve seconds and simplex iterations.
``shared_lp_batch``
    Wall time of the batch runner with shared-LP reuse and the solver
    warm-start cache.

Reports
-------
:func:`run_bench` returns a JSON-serializable report;
:func:`write_report` stores it as ``BENCH_<YYYYmmdd-HHMMSS>.json``;
:func:`compare_reports` diffs two reports case-by-case so the CLI can show
the run-over-run trajectory.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.timeindexed import build_time_indexed_lp, suggest_horizon
from repro.core.timeindexed_reference import build_time_indexed_lp_reference
from repro.lp.solver import solve_lp, solver_cache
from repro.network.topologies import swan_topology
from repro.schedule.timegrid import TimeGrid
from repro.sim.rate_allocation import coflow_standalone_time
from repro.sim.reference import (
    simulate_priority_schedule_reference,
    srtf_priority_reference,
    standalone_times_reference,
)
from repro.sim.simulator import simulate_priority_schedule
from repro.utils.io import atomic_write_json
from repro.utils.timing import file_stamp, report_stamp
from repro.workloads.generator import WorkloadSpec, generate_instance

SCHEMA_VERSION = 1

#: Acceptance thresholds this PR's trajectory is checked against (the CLI
#: reports them as PASS/FAIL but never fails the run — CI keeps the job
#: non-blocking for now).
LP_BUILD_TARGET_SPEEDUP = 3.0
SIMULATOR_TARGET_SPEEDUP = 2.0
LP_SOLVE_TARGET_SPEEDUP = 1.5

ALL_SCENARIOS = ("lp_build", "lp_solve", "simulator", "shared_lp_batch")


def _time_best(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-*repeats* wall time of ``fn()`` plus the last result."""
    best = float("inf")
    result: object = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _geomean(values: Sequence[float]) -> float:
    arr = np.asarray([v for v in values if v > 0], dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.log(arr).mean()))


# --------------------------------------------------------------------------- #
# scenario: LP assembly
# --------------------------------------------------------------------------- #
def bench_lp_build(*, quick: bool = False, repeats: int = 3) -> Dict:
    """Vectorized vs loop-based LP assembly on SWAN workloads."""
    graph = swan_topology()
    if quick:
        case_specs = [
            ("single_path", 8, "uniform", 1.0),
            ("free_path", 6, "uniform", 1.0),
        ]
    else:
        case_specs = [
            ("single_path", 12, "uniform", 1.0),
            ("single_path", 12, "uniform", 0.5),
            ("single_path", 12, "geometric", 0.2),
            ("free_path", 8, "uniform", 1.0),
            ("free_path", 8, "geometric", 0.2),
        ]
    cases: List[Dict] = []
    for model, num_coflows, grid_kind, grid_param in case_specs:
        spec = WorkloadSpec(
            profile="TPC-DS", num_coflows=num_coflows, seed=42, demand_scale=1.5
        )
        instance = generate_instance(graph, spec, model=model, rng=42)
        base_slots = suggest_horizon(instance)
        if grid_kind == "uniform":
            grid = TimeGrid.uniform(
                int(np.ceil(base_slots / grid_param)), grid_param
            )
            grid_label = f"uniform(L={grid_param:g})"
        else:
            grid = TimeGrid.geometric(base_slots, grid_param)
            grid_label = f"geometric(eps={grid_param:g})"

        ref_seconds, _ = _time_best(
            lambda: build_time_indexed_lp_reference(instance, grid), repeats
        )
        vec_seconds, built = _time_best(
            lambda: build_time_indexed_lp(instance, grid), repeats
        )
        lp, _bundle = built
        sizes = lp.size_summary()
        result = solve_lp(lp, require_optimal=True)
        cases.append(
            {
                "case": f"{model}/{grid_label}",
                "model": model,
                "num_coflows": num_coflows,
                "grid": grid_label,
                "slots": grid.num_slots,
                "variables": sizes["variables"],
                "rows": sizes["inequality_constraints"]
                + sizes["equality_constraints"],
                "nnz": sizes["nonzeros"],
                "build_seconds_reference": ref_seconds,
                "build_seconds": vec_seconds,
                "build_speedup": ref_seconds / vec_seconds if vec_seconds > 0 else 0.0,
                "solve_seconds": result.solve_seconds,
                "objective": float(result.objective),
            }
        )
    speedups = [c["build_speedup"] for c in cases]
    return {
        "cases": cases,
        "summary": {
            "min_build_speedup": min(speedups),
            "geomean_build_speedup": _geomean(speedups),
            "target_speedup": LP_BUILD_TARGET_SPEEDUP,
            "meets_target": min(speedups) >= LP_BUILD_TARGET_SPEEDUP,
        },
    }


# --------------------------------------------------------------------------- #
# scenario: staged solve pipeline
# --------------------------------------------------------------------------- #
def _stage_totals(solution) -> Tuple[float, Optional[int], bool]:
    """(total solve seconds, total simplex iterations, any warm stage)."""
    stages = solution.metadata.get("solve_path", {}).get("stages", [])
    seconds = sum(float(s.get("solve_seconds", 0.0)) for s in stages)
    iterations = [s.get("simplex_iterations") for s in stages]
    total_iterations = (
        sum(int(i) for i in iterations)
        if iterations and all(i is not None for i in iterations)
        else None
    )
    warm = any(bool(s.get("warm_start")) for s in stages)
    return seconds, total_iterations, warm


def bench_lp_solve(*, quick: bool = False, repeats: int = 1) -> Dict:
    """Direct vs refine vs coarsen solves on fine-uniform grids.

    The refine speedup is measured on *solver* seconds (the summed
    per-stage ``solve_seconds``) — the quantity the staged pipeline
    attacks; assembly time is the ``lp_build`` scenario's concern.  The
    coarsen rows additionally record the relative objective gap against
    the direct optimum and the retained (1+ε) guarantee.
    """
    from repro.core.timeindexed import solve_time_indexed_lp

    graph = swan_topology()
    if quick:
        case_specs = [("single_path", 8, 1.0), ("free_path", 6, 1.0)]
    else:
        case_specs = [
            ("single_path", 12, 1.0),
            ("single_path", 12, 0.5),
            ("free_path", 8, 1.0),
            ("free_path", 8, 0.5),
        ]
    cases: List[Dict] = []
    for model, num_coflows, slot_length in case_specs:
        spec = WorkloadSpec(
            profile="TPC-DS", num_coflows=num_coflows, seed=42, demand_scale=1.5
        )
        instance = generate_instance(graph, spec, model=model, rng=42)

        solutions: Dict[str, object] = {}
        totals: Dict[str, Tuple[float, Optional[int], bool]] = {}
        for strategy in ("direct", "refine", "coarsen"):
            best: Optional[Tuple[float, Optional[int], bool]] = None
            solution = None
            for _ in range(max(repeats, 1)):
                solution = solve_time_indexed_lp(
                    instance, slot_length=slot_length, strategy=strategy
                )
                measured = _stage_totals(solution)
                if best is None or measured[0] < best[0]:
                    best = measured
            solutions[strategy] = solution
            totals[strategy] = best

        direct, refine, coarsen = (
            solutions["direct"],
            solutions["refine"],
            solutions["coarsen"],
        )
        direct_seconds, direct_iters, _ = totals["direct"]
        refine_seconds, refine_iters, refine_warm = totals["refine"]
        coarsen_seconds, coarsen_iters, _ = totals["coarsen"]
        coarsen_info = coarsen.metadata["solve_path"].get("coarsen", {})
        rel_gap = abs(coarsen.objective - direct.objective) / max(
            abs(direct.objective), 1e-12
        )
        cases.append(
            {
                "case": f"{model}/uniform(L={slot_length:g})",
                "model": model,
                "num_coflows": num_coflows,
                "slots": direct.grid.num_slots,
                "solve_seconds_direct": direct_seconds,
                "solve_seconds_refine": refine_seconds,
                "solve_seconds_coarsen": coarsen_seconds,
                "simplex_iterations_direct": direct_iters,
                "simplex_iterations_refine": refine_iters,
                "simplex_iterations_coarsen": coarsen_iters,
                "refine_warm_start": refine_warm,
                "solve_speedup_refine": (
                    direct_seconds / refine_seconds if refine_seconds > 0 else 0.0
                ),
                "solve_speedup_coarsen": (
                    direct_seconds / coarsen_seconds if coarsen_seconds > 0 else 0.0
                ),
                "objective_direct": float(direct.objective),
                "objective_refine": float(refine.objective),
                "objective_coarsen": float(coarsen.objective),
                "refine_objective_matches": bool(
                    abs(refine.objective - direct.objective)
                    <= 1e-6 * max(abs(direct.objective), 1.0)
                ),
                "coarsen_rel_gap": rel_gap,
                "coarsen_slots_final": coarsen_info.get("slots_final"),
                "coarsen_guarantee_factor": coarsen_info.get("guarantee_factor"),
                "coarsen_within_guarantee": bool(
                    1.0 + rel_gap <= coarsen_info.get("guarantee_factor", 1.0) + 1e-9
                ),
            }
        )
    speedups = [c["solve_speedup_refine"] for c in cases]
    return {
        "cases": cases,
        "summary": {
            "min_solve_speedup": min(speedups),
            "geomean_solve_speedup": _geomean(speedups),
            "target_speedup": LP_SOLVE_TARGET_SPEEDUP,
            "meets_target": _geomean(speedups) >= LP_SOLVE_TARGET_SPEEDUP,
            "all_refine_match": all(c["refine_objective_matches"] for c in cases),
            "all_coarsen_within_guarantee": all(
                c["coarsen_within_guarantee"] for c in cases
            ),
        },
    }


# --------------------------------------------------------------------------- #
# scenario: simulator
# --------------------------------------------------------------------------- #
def bench_simulator(*, quick: bool = False, repeats: int = 1) -> Dict:
    """Incremental simulator vs full re-allocation (Terra / greedy scenarios)."""
    graph = swan_topology()
    case_specs = [
        ("terra/free-path", "free_path", 20 if quick else 28),
        ("sebf/single-path", "single_path", 120 if quick else 150),
    ]
    cases: List[Dict] = []
    for name, model, num_coflows in case_specs:
        spec = WorkloadSpec(
            profile="FB", num_coflows=num_coflows, seed=7, demand_scale=1.5
        )
        instance = generate_instance(graph, spec, model=model, rng=7)

        # Reference: loop-based standalone LPs, loop-based priority, full
        # re-allocation at every event.
        standalone_ref_seconds, standalone_ref = _time_best(
            lambda: standalone_times_reference(instance), 1
        )
        legacy_priority = srtf_priority_reference(instance, standalone_ref)
        ref_seconds, ref_sim = _time_best(
            lambda: simulate_priority_schedule_reference(instance, legacy_priority),
            repeats,
        )
        events = int(ref_sim.metadata["events"])

        # Optimized: cached standalone LPs, array-based priority,
        # incremental allocation with warm-started per-event LPs.
        standalone_seconds, standalone = _time_best(
            lambda: np.array(
                [
                    coflow_standalone_time(instance, j)
                    for j in range(instance.num_coflows)
                ]
            ),
            1,
        )
        if model == "free_path":
            from repro.baselines.terra import srtf_priority_fn

            priority = srtf_priority_fn(instance, standalone)
        else:
            from repro.baselines.greedy import sebf_priority_fn

            priority = sebf_priority_fn(instance, standalone)
        # First optimized run is cold (templates, memo and standalone caches
        # empty) — that conservative number is the headline and the one the
        # speedup target is checked against.  Additional repeats measure the
        # warm steady state, where the allocation memo absorbs most solves.
        opt_seconds, opt_sim = _time_best(
            lambda: simulate_priority_schedule(instance, priority, incremental=True),
            1,
        )
        warm_seconds = opt_seconds
        if repeats > 1:
            warm_seconds, _ = _time_best(
                lambda: simulate_priority_schedule(
                    instance, priority, incremental=True
                ),
                repeats - 1,
            )
        full_sim = simulate_priority_schedule(instance, priority, incremental=False)

        # The correctness contract: incremental allocation reproduces full
        # per-event re-allocation exactly.  The loop-based reference may
        # legitimately settle on a different (equally optimal) routing for a
        # degenerate free-path LP, which shifts later completion times
        # slightly, so it is compared at the objective level only.
        match = bool(
            np.allclose(
                opt_sim.coflow_completion_times,
                full_sim.coflow_completion_times,
                rtol=1e-9,
                atol=1e-9,
            )
        )
        weights = instance.weights
        ref_objective = float(np.dot(weights, ref_sim.coflow_completion_times))
        opt_objective = float(np.dot(weights, opt_sim.coflow_completion_times))
        reference_rel_diff = abs(opt_objective - ref_objective) / max(
            abs(ref_objective), 1e-12
        )
        opt_events = int(opt_sim.metadata["events"])
        ref_eps = events / ref_seconds if ref_seconds > 0 else float("inf")
        opt_eps = opt_events / opt_seconds if opt_seconds > 0 else float("inf")
        cases.append(
            {
                "case": name,
                "model": model,
                "num_coflows": num_coflows,
                "num_flows": instance.num_flows,
                "events": events,
                "events_optimized": opt_events,
                "seconds_reference": ref_seconds,
                "seconds": opt_seconds,
                "events_per_sec_reference": ref_eps,
                "events_per_sec": opt_eps,
                "events_per_sec_warm": (
                    opt_events / warm_seconds if warm_seconds > 0 else float("inf")
                ),
                "events_per_sec_speedup": opt_eps / ref_eps if ref_eps > 0 else 0.0,
                "standalone_seconds_reference": standalone_ref_seconds,
                "standalone_seconds": standalone_seconds,
                "allocations_computed": opt_sim.metadata["allocations_computed"],
                "allocations_reused": opt_sim.metadata["allocations_reused"],
                "incremental_matches_full": match,
                "reference_objective_rel_diff": reference_rel_diff,
            }
        )
    speedups = [c["events_per_sec_speedup"] for c in cases]
    return {
        "cases": cases,
        "summary": {
            "min_events_per_sec_speedup": min(speedups),
            "geomean_events_per_sec_speedup": _geomean(speedups),
            "target_speedup": SIMULATOR_TARGET_SPEEDUP,
            "meets_target": min(speedups) >= SIMULATOR_TARGET_SPEEDUP,
            "all_match": all(c["incremental_matches_full"] for c in cases)
            and all(c["reference_objective_rel_diff"] < 1e-2 for c in cases),
        },
    }


# --------------------------------------------------------------------------- #
# scenario: batch runner with shared LP + warm-start cache
# --------------------------------------------------------------------------- #
def bench_shared_lp_batch(*, quick: bool = False, repeats: int = 1) -> Dict:
    """solve_many with shared-LP reuse and the solver warm-start cache."""
    from repro.api import SolverConfig, solve_many

    graph = swan_topology()
    num_instances = 2
    num_coflows = 3 if quick else 4
    instances = [
        generate_instance(
            graph,
            WorkloadSpec(
                profile="FB", num_coflows=num_coflows, seed=100 + i, demand_scale=1.2
            ),
            model="free_path",
            rng=100 + i,
        )
        for i in range(num_instances)
    ]
    algorithms = ["lp-heuristic", "stretch-best"]
    config = SolverConfig(rng=0, num_samples=3)

    seconds, reports = _time_best(
        lambda: solve_many(instances, algorithms, config=config), repeats
    )

    # Warm-start demonstration: an identical program solved twice under one
    # cache is a hit the second time (exact solution reuse, no HiGHS run).
    from repro.core.timeindexed import solve_time_indexed_lp

    with solver_cache() as cache:
        cold_seconds, _cold = _time_best(
            lambda: solve_time_indexed_lp(instances[0]), 1
        )
        warm_seconds, warm = _time_best(
            lambda: solve_time_indexed_lp(instances[0]), 1
        )
    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")

    return {
        "cases": [
            {
                "case": "solve_many/shared-lp",
                "instances": num_instances,
                "algorithms": algorithms,
                "reports": len(reports),
                "seconds": seconds,
                "warm_start_cache": cache.stats(),
                "warm_start_hit": bool(
                    warm.lp_result.metadata.get("warm_start") == "reused"
                ),
            }
        ],
        "summary": {
            "seconds": seconds,
            "warm_start_speedup": warm_speedup,
        },
    }


# --------------------------------------------------------------------------- #
# report plumbing
# --------------------------------------------------------------------------- #
def run_bench(
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> Dict:
    """Run the requested scenarios and return the report dict."""
    chosen = tuple(scenarios) if scenarios else ALL_SCENARIOS
    unknown = [s for s in chosen if s not in ALL_SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown bench scenarios {unknown}; expected a subset of {ALL_SCENARIOS}"
        )
    build_repeats = repeats if repeats is not None else (3 if quick else 5)
    sim_repeats = repeats if repeats is not None else (1 if quick else 2)
    solve_repeats = repeats if repeats is not None else (1 if quick else 2)
    report: Dict = {
        "schema": SCHEMA_VERSION,
        "created": report_stamp(),
        "quick": quick,
        "repeats": {
            "lp_build": build_repeats,
            "lp_solve": solve_repeats,
            "simulator": sim_repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scenarios": {},
    }
    if "lp_build" in chosen:
        report["scenarios"]["lp_build"] = bench_lp_build(
            quick=quick, repeats=build_repeats
        )
    if "lp_solve" in chosen:
        report["scenarios"]["lp_solve"] = bench_lp_solve(
            quick=quick, repeats=solve_repeats
        )
    if "simulator" in chosen:
        report["scenarios"]["simulator"] = bench_simulator(
            quick=quick, repeats=sim_repeats
        )
    if "shared_lp_batch" in chosen:
        report["scenarios"]["shared_lp_batch"] = bench_shared_lp_batch(
            quick=quick, repeats=sim_repeats
        )
    return report


def write_report(
    report: Dict, output_dir: str | Path = ".", *, store=None
) -> Path:
    """Write *report* as ``BENCH_<YYYYmmdd-HHMMSS>.json`` in *output_dir*.

    With a :class:`~repro.store.ResultStore`, the report is additionally
    archived under the store's ``runs/bench/`` sequence — the durable
    trajectory that survives fresh checkouts and scratch output
    directories (see :func:`compare_with_previous`).
    """
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{file_stamp()}.json"
    atomic_write_json(path, report)
    if store is not None:
        store.put_run("bench", report)
    return path


def find_previous_report(output_dir: str | Path = ".") -> Optional[Path]:
    """The most recent ``BENCH_*.json`` in *output_dir*, if any.

    An output directory that does not exist yet (a fresh checkout's first
    bench run) simply has no trajectory: the result is ``None``, not an
    error.
    """
    directory = Path(output_dir)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def compare_with_previous(
    report: Dict, output_dir: str | Path = ".", *, store=None
) -> Dict:
    """The full comparison path: find, load and diff the previous report.

    This is the single entry point the CLI (and ``benchmarks/harness.py``)
    use, and it never assumes a previous report exists or parses: an empty
    trajectory (no prior ``BENCH_*.json``, e.g. the first run in a fresh
    checkout or CI workspace) yields ``{"previous": None, "skipped": ...}``
    marking this run as the trajectory's first point, and an unreadable or
    structurally foreign previous file is reported the same way instead of
    raising.

    With a :class:`~repro.store.ResultStore`, an output directory without
    any ``BENCH_*.json`` falls back to the store's archived ``runs/bench``
    trajectory, so run-over-run comparison keeps working across fresh
    checkouts and scratch CI workspaces.
    """
    previous_path = find_previous_report(output_dir)
    if previous_path is None and store is not None:
        archived = store.latest_run("bench")
        if archived is not None:
            comparison = compare_reports(archived, report)
            comparison["previous"] = "store:runs/bench"
            return comparison
    if previous_path is None:
        return {
            "previous": None,
            "scenarios": {},
            "skipped": "no previous BENCH_*.json found; this report is the "
            "first point of the trajectory",
        }
    try:
        previous = json.loads(previous_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return {
            "previous": previous_path.name,
            "scenarios": {},
            "skipped": f"could not read previous report: {exc}",
        }
    comparison = compare_reports(previous, report)
    comparison["previous"] = previous_path.name
    return comparison


def compare_reports(previous: Dict, current: Dict) -> Dict:
    """Case-by-case trajectory: current vs previous optimized numbers.

    Ratios are oriented so that values > 1 mean *current is faster*.
    Reports produced at different scales (``--quick`` vs full) are not
    comparable — the same case name covers different workload sizes — so
    the comparison is refused with an explanatory note, and individual
    cases are only paired when their workload-size fields agree.  A
    *previous* payload that is not a bench report at all (wrong JSON shape)
    is refused the same way rather than raising.
    """
    comparison: Dict = {"scenarios": {}}
    if not isinstance(previous, dict) or not isinstance(
        previous.get("scenarios", {}), dict
    ):
        comparison["skipped"] = (
            "previous report is not a bench report (unexpected JSON shape)"
        )
        return comparison
    if bool(previous.get("quick")) != bool(current.get("quick")):
        comparison["skipped"] = (
            "previous report was produced at a different scale "
            f"(quick={previous.get('quick')}) than this run "
            f"(quick={current.get('quick')}); ratios would compare different "
            "workload sizes"
        )
        return comparison
    size_fields = ("num_coflows", "slots", "events", "instances")
    for scenario, cur_data in current.get("scenarios", {}).items():
        prev_data = previous.get("scenarios", {}).get(scenario)
        if not prev_data:
            continue
        if not isinstance(prev_data, dict):
            continue
        prev_cases = {
            c["case"]: c
            for c in prev_data.get("cases", [])
            if isinstance(c, dict) and "case" in c
        }
        rows = []
        for cur_case in cur_data.get("cases", []):
            prev_case = prev_cases.get(cur_case["case"])
            if prev_case is None:
                continue
            if any(
                field in cur_case
                and field in prev_case
                and cur_case[field] != prev_case[field]
                for field in size_fields
            ):
                continue
            row: Dict = {"case": cur_case["case"]}
            for seconds_key in (
                "build_seconds",
                "seconds",
                "solve_seconds",
                "solve_seconds_direct",
                "solve_seconds_refine",
                "solve_seconds_coarsen",
            ):
                if seconds_key in cur_case and prev_case.get(seconds_key):
                    row[f"{seconds_key}_ratio"] = (
                        prev_case[seconds_key] / cur_case[seconds_key]
                        if cur_case[seconds_key] > 0
                        else float("inf")
                    )
            if "events_per_sec" in cur_case and prev_case.get("events_per_sec"):
                row["events_per_sec_ratio"] = (
                    cur_case["events_per_sec"] / prev_case["events_per_sec"]
                )
            rows.append(row)
        comparison["scenarios"][scenario] = rows
    return comparison


def format_report(report: Dict) -> str:
    """Human-readable summary of a bench report (CLI output)."""
    lines: List[str] = []
    scenarios = report.get("scenarios", {})

    lp = scenarios.get("lp_build")
    if lp:
        lines.append("LP assembly (vectorized vs loop reference)")
        lines.append(
            f"{'case':<32s} {'slots':>5s} {'rows':>8s} {'nnz':>9s} "
            f"{'loop(ms)':>9s} {'vec(ms)':>8s} {'speedup':>8s} {'solve(s)':>9s}"
        )
        for c in lp["cases"]:
            lines.append(
                f"{c['case']:<32s} {c['slots']:>5d} {c['rows']:>8d} {c['nnz']:>9d} "
                f"{c['build_seconds_reference'] * 1e3:>9.2f} "
                f"{c['build_seconds'] * 1e3:>8.2f} "
                f"{c['build_speedup']:>7.1f}x {c['solve_seconds']:>9.3f}"
            )
        s = lp["summary"]
        verdict = "PASS" if s["meets_target"] else "FAIL"
        lines.append(
            f"  -> min speedup {s['min_build_speedup']:.1f}x "
            f"(target {s['target_speedup']:.1f}x): {verdict}"
        )
        lines.append("")

    solve = scenarios.get("lp_solve")
    if solve:
        lines.append("Staged solve pipeline (direct vs refine vs coarsen)")
        lines.append(
            f"{'case':<32s} {'slots':>5s} {'direct(s)':>9s} {'refine(s)':>9s} "
            f"{'speedup':>8s} {'match':>5s} {'coarsen(s)':>10s} {'gap':>6s}"
        )
        for c in solve["cases"]:
            lines.append(
                f"{c['case']:<32s} {c['slots']:>5d} "
                f"{c['solve_seconds_direct']:>9.3f} "
                f"{c['solve_seconds_refine']:>9.3f} "
                f"{c['solve_speedup_refine']:>7.2f}x "
                f"{'yes' if c['refine_objective_matches'] else 'NO':>5s} "
                f"{c['solve_seconds_coarsen']:>10.3f} "
                f"{c['coarsen_rel_gap'] * 100:>5.1f}%"
            )
        s = solve["summary"]
        verdict = "PASS" if s["meets_target"] else "FAIL"
        lines.append(
            f"  -> geomean refine speedup {s['geomean_solve_speedup']:.2f}x "
            f"(target {s['target_speedup']:.1f}x): {verdict}; "
            f"refine objectives match: "
            f"{'yes' if s['all_refine_match'] else 'NO'}; "
            f"coarsen within guarantee: "
            f"{'yes' if s['all_coarsen_within_guarantee'] else 'NO'}"
        )
        lines.append("")

    sim = scenarios.get("simulator")
    if sim:
        lines.append("Simulator (incremental vs full re-allocation)")
        lines.append(
            f"{'case':<24s} {'events':>6s} {'ref ev/s':>9s} {'opt ev/s':>9s} "
            f"{'speedup':>8s} {'reused':>6s} {'match':>5s}"
        )
        for c in sim["cases"]:
            lines.append(
                f"{c['case']:<24s} {c['events']:>6d} "
                f"{c['events_per_sec_reference']:>9.0f} "
                f"{c['events_per_sec']:>9.0f} "
                f"{c['events_per_sec_speedup']:>7.1f}x "
                f"{c['allocations_reused']:>6d} "
                f"{'yes' if c['incremental_matches_full'] else 'NO':>5s}"
            )
        s = sim["summary"]
        verdict = "PASS" if s["meets_target"] else "FAIL"
        lines.append(
            f"  -> min events/sec speedup {s['min_events_per_sec_speedup']:.1f}x "
            f"(target {s['target_speedup']:.1f}x): {verdict}"
        )
        lines.append("")

    batch = scenarios.get("shared_lp_batch")
    if batch:
        c = batch["cases"][0]
        s = batch["summary"]
        lines.append(
            f"Batch runner: {c['reports']} reports over {c['instances']} instances "
            f"in {c['seconds']:.2f}s; warm-start cache "
            f"{c['warm_start_cache']}, identical re-solve "
            f"x{s['warm_start_speedup']:.0f} faster"
        )
        lines.append("")

    comparison = report.get("comparison")
    if comparison:
        if comparison.get("previous") is None:
            lines.append(
                "Trajectory: "
                + comparison.get(
                    "skipped", "no previous report; first trajectory point"
                )
            )
            lines.append("")
            return "\n".join(lines)
        lines.append(
            f"Trajectory vs previous report ({comparison['previous']}):"
        )
        if comparison.get("skipped"):
            lines.append(f"  comparison skipped: {comparison['skipped']}")
            lines.append("")
        for scenario, rows in comparison.get("scenarios", {}).items():
            for row in rows:
                deltas = ", ".join(
                    f"{k.removesuffix('_ratio')} x{v:.2f}"
                    for k, v in row.items()
                    if k != "case"
                )
                lines.append(f"  {scenario}/{row['case']}: {deltas}")
        lines.append("")
    return "\n".join(lines)
