"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common workflows without writing any Python:

``topologies``
    List the built-in WAN topologies with their sizes.
``generate``
    Generate a synthetic benchmark workload and write it to a JSON trace.
``solve``
    Load an instance (JSON trace produced by ``generate`` or
    ``CoflowInstance.save_json``) and schedule it with a chosen algorithm.
``experiment``
    Run one of the paper-figure experiments and print its table (optionally
    exporting CSV/JSON).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.coflow.instance import CoflowInstance
from repro.core.scheduler import ALGORITHMS, solve_coflow_schedule
from repro.experiments.export import write_csv, write_json
from repro.experiments.figures import ALL_EXPERIMENTS, get_experiment
from repro.experiments.reporting import format_result_table, summarize_shape_checks
from repro.experiments.runner import run_experiment
from repro.network.topologies import gscale_topology, named_topology, swan_topology
from repro.workloads.generator import WorkloadSpec, generate_instance
from repro.workloads.profiles import BENCHMARK_NAMES


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Near Optimal Coflow Scheduling in Networks — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list the built-in topologies")

    gen = sub.add_parser("generate", help="generate a synthetic workload trace")
    gen.add_argument("output", help="path of the JSON trace to write")
    gen.add_argument("--workload", choices=BENCHMARK_NAMES, default="FB")
    gen.add_argument("--topology", default="swan")
    gen.add_argument("--model", choices=["free_path", "single_path"], default="free_path")
    gen.add_argument("--num-coflows", type=int, default=12)
    gen.add_argument("--demand-scale", type=float, default=1.5)
    gen.add_argument("--unweighted", action="store_true")
    gen.add_argument("--seed", type=int, default=2019)

    solve = sub.add_parser("solve", help="schedule an instance from a JSON trace")
    solve.add_argument("trace", help="instance JSON written by `generate` or save_json")
    solve.add_argument("--algorithm", choices=ALGORITHMS, default="lp-heuristic")
    solve.add_argument("--num-samples", type=int, default=10)
    solve.add_argument("--slot-length", type=float, default=1.0)
    solve.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="run a paper-figure experiment")
    exp.add_argument("experiment_id", choices=sorted(ALL_EXPERIMENTS))
    exp.add_argument("--scale", type=float, default=1.0)
    exp.add_argument("--csv", help="optional CSV output path")
    exp.add_argument("--json", help="optional JSON output path")

    return parser


def _cmd_topologies(out) -> int:
    for name, graph in (("swan", swan_topology()), ("gscale", gscale_topology())):
        print(
            f"{name:<8s} {graph.name:<10s} nodes={graph.num_nodes:<3d} "
            f"directed edges={graph.num_edges:<3d} "
            f"total capacity={graph.total_capacity():g}",
            file=out,
        )
    print(
        "helper topologies: paper-example, figure-1, star, line, ring, "
        "parallel-edges, switch-fabric (see repro.network.topologies)",
        file=out,
    )
    return 0


def _cmd_generate(args, out) -> int:
    graph = named_topology(args.topology)
    spec = WorkloadSpec(
        profile=args.workload,
        num_coflows=args.num_coflows,
        weighted=not args.unweighted,
        demand_scale=args.demand_scale,
        seed=args.seed,
    )
    instance = generate_instance(graph, spec, model=args.model, rng=args.seed)
    instance.save_json(args.output)
    print(
        f"wrote {instance.num_coflows} coflows / {instance.num_flows} flows "
        f"({args.workload} on {graph.name}, {args.model}) to {args.output}",
        file=out,
    )
    return 0


def _cmd_solve(args, out) -> int:
    instance = CoflowInstance.load_json(args.trace)
    outcome = solve_coflow_schedule(
        instance,
        algorithm=args.algorithm,
        slot_length=args.slot_length,
        rng=args.seed,
        num_samples=args.num_samples,
    )
    print(f"instance          : {instance}", file=out)
    print(f"algorithm         : {outcome.algorithm}", file=out)
    print(f"LP lower bound    : {outcome.lower_bound:.3f}", file=out)
    print(f"objective         : {outcome.objective:.3f}", file=out)
    print(f"gap to bound      : {outcome.gap:.3f}x", file=out)
    if outcome.schedule is not None:
        times = outcome.schedule.coflow_completion_times()
        for coflow, time in zip(instance.coflows, times):
            name = coflow.name or "coflow"
            print(f"  {name:<20s} weight {coflow.weight:8.2f}  C = {time:g}", file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    config = get_experiment(args.experiment_id)
    result = run_experiment(config, scale=args.scale)
    print(format_result_table(result), file=out)
    checks = summarize_shape_checks(result)
    if checks:
        rendered = ", ".join(f"{k}={'PASS' if v else 'FAIL'}" for k, v in checks.items())
        print(f"\nshape checks: {rendered}", file=out)
    if args.csv:
        rows = write_csv([result], args.csv)
        print(f"wrote {rows} rows to {args.csv}", file=out)
    if args.json:
        write_json([result], args.json)
        print(f"wrote JSON to {args.json}", file=out)
    return 0 if all(checks.values()) else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "topologies":
        return _cmd_topologies(out)
    if args.command == "generate":
        return _cmd_generate(args, out)
    if args.command == "solve":
        return _cmd_solve(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
