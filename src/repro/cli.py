"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Twelve commands cover the common workflows without writing any Python:

``topologies``
    List the built-in WAN topologies with their sizes.
``algorithms``
    List every algorithm registered in :mod:`repro.api` with its
    capability flags.
``generate``
    Generate a synthetic benchmark workload and write it to a JSON trace.
``solve``
    Load an instance (JSON trace produced by ``generate`` or
    ``CoflowInstance.save_json``) and schedule it with any registered
    algorithm.
``batch``
    Solve several traces with several algorithms at once, optionally across
    worker processes (the :func:`repro.api.solve_many` runner).
``experiment``
    Run one of the paper-figure experiments and print its table (optionally
    exporting CSV/JSON).
``bench``
    Run the performance harness (:mod:`repro.perf.harness`): vectorized LP
    assembly and the incremental simulator against their preserved
    pre-optimization references, written to ``BENCH_<date>.json`` and
    compared against the previous report.
``verify``
    Run the differential-verification harness (:mod:`repro.scenarios`):
    sample scenarios across every registered family, run every registered
    algorithm on each, and cross-check the invariant suite against the
    library's oracles.  Writes a machine-readable ``VERIFY_<date>.json``.
``sweep``
    Run (or resume) a sharded parameter sweep described by a JSON spec
    file through the persistent result store
    (:mod:`repro.experiments.sweep` / :mod:`repro.store`): completed units
    are checkpointed per chunk, interrupted sweeps resume exactly, and a
    completed sweep re-runs with zero new LP solves.
``online``
    Run an online scheduling policy (:mod:`repro.online`) over a trace or
    a scenario address, event by event, and compare it against the
    clairvoyant offline schedule.
``scenarios``
    The corpus tooling (:mod:`repro.scenarios`): run a declarative
    pipeline spec (generate → solve → verify → report, resumable through
    the result store), list the registered families, amplify a trace to
    N× coflows, or convert a public Facebook-format coflow trace.
``lint``
    Run the AST-based determinism & discipline analyzer (:mod:`repro.lint`)
    over the library source: raw entropy, wall-clock reads, float ``==``,
    non-atomic writes, numpy-at-the-JSON-boundary, registry completeness,
    silent broad excepts and deprecated shims are all mechanical findings.
    Writes a machine-readable ``LINT_<date>.json`` with ``--output``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.api import (
    SolverConfig,
    algorithm_table,
    available_algorithms,
    solve,
    solve_many,
)
from repro.coflow.instance import CoflowInstance
from repro.experiments.export import write_csv, write_json
from repro.experiments.figures import ALL_EXPERIMENTS, get_experiment
from repro.experiments.reporting import format_result_table, summarize_shape_checks
from repro.experiments.runner import run_experiment
from repro.network.topologies import gscale_topology, named_topology, swan_topology
from repro.workloads.generator import WorkloadSpec, generate_instance
from repro.workloads.profiles import BENCHMARK_NAMES


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Near Optimal Coflow Scheduling in Networks — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list the built-in topologies")

    sub.add_parser("algorithms", help="list the registered solver algorithms")

    gen = sub.add_parser("generate", help="generate a synthetic workload trace")
    gen.add_argument("output", help="path of the JSON trace to write")
    gen.add_argument("--workload", choices=BENCHMARK_NAMES, default="FB")
    gen.add_argument("--topology", default="swan")
    gen.add_argument("--model", choices=["free_path", "single_path"], default="free_path")
    gen.add_argument("--num-coflows", type=int, default=12)
    gen.add_argument("--demand-scale", type=float, default=1.5)
    gen.add_argument("--unweighted", action="store_true")
    gen.add_argument("--seed", type=int, default=2019)

    solve_cmd = sub.add_parser("solve", help="schedule an instance from a JSON trace")
    solve_cmd.add_argument(
        "trace", help="instance JSON written by `generate` or save_json"
    )
    solve_cmd.add_argument(
        "--algorithm", choices=available_algorithms(), default="lp-heuristic"
    )
    solve_cmd.add_argument("--num-samples", type=int, default=10)
    solve_cmd.add_argument("--slot-length", type=float, default=1.0)
    solve_cmd.add_argument("--epsilon", type=float, default=None)
    solve_cmd.add_argument("--solver-method", default="highs")
    solve_cmd.add_argument(
        "--strategy",
        choices=["direct", "refine", "coarsen"],
        default="direct",
        help="staged LP solve strategy (see repro.core.timeindexed)",
    )
    solve_cmd.add_argument(
        "--backend",
        choices=["auto", "linprog", "persistent-highs"],
        default="auto",
        help="LP solver backend (auto falls back to linprog without HiGHS)",
    )
    solve_cmd.add_argument("--seed", type=int, default=0)

    batch = sub.add_parser(
        "batch", help="solve several traces with several algorithms in parallel"
    )
    batch.add_argument("traces", nargs="+", help="instance JSON traces")
    batch.add_argument(
        "--algorithms",
        default="lp-heuristic",
        help="comma-separated registered algorithm names",
    )
    batch.add_argument("--parallel", type=int, default=1, help="worker processes")
    batch.add_argument("--num-samples", type=int, default=10)
    batch.add_argument("--slot-length", type=float, default=1.0)
    batch.add_argument("--epsilon", type=float, default=None)
    batch.add_argument("--solver-method", default="highs")
    batch.add_argument(
        "--strategy",
        choices=["direct", "refine", "coarsen"],
        default="direct",
        help="staged LP solve strategy (see repro.core.timeindexed)",
    )
    batch.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="run a paper-figure experiment")
    exp.add_argument("experiment_id", choices=sorted(ALL_EXPERIMENTS))
    exp.add_argument("--scale", type=float, default=1.0)
    exp.add_argument("--csv", help="optional CSV output path")
    exp.add_argument("--json", help="optional JSON output path")
    exp.add_argument(
        "--store",
        default=None,
        help="result-store directory: cache the deterministic per-algorithm "
        "series so repeated runs skip solved series",
    )

    bench = sub.add_parser(
        "bench", help="run the performance harness and write BENCH_<date>.json"
    )
    bench.add_argument(
        "--quick", action="store_true", help="smaller workloads, fewer repeats"
    )
    bench.add_argument(
        "--output", default=".", help="directory for BENCH_<date>.json (default: .)"
    )
    bench.add_argument(
        "--repeats", type=int, default=None, help="override best-of repeat count"
    )
    bench.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        help="run only this scenario (repeatable); default: all",
    )
    bench.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the comparison against the previous BENCH_*.json",
    )
    bench.add_argument(
        "--store",
        default=None,
        help="result-store directory: archive the report there and compare "
        "against the store's trajectory when the output dir has none",
    )

    verify = sub.add_parser(
        "verify",
        help="differentially verify every algorithm on sampled scenarios",
    )
    verify.add_argument(
        "--budget", type=int, default=20, help="number of scenarios to sample"
    )
    verify.add_argument("--seed", type=int, default=0, help="root scenario seed")
    verify.add_argument(
        "--family",
        action="append",
        dest="families",
        help="sample only this scenario family (repeatable); default: all",
    )
    verify.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated algorithm names (default: every registered one)",
    )
    verify.add_argument(
        "--invariant",
        action="append",
        dest="invariants",
        help="check only this invariant (repeatable); default: all",
    )
    verify.add_argument(
        "--output",
        default=".",
        help="directory (or .json file path) for the VERIFY report (default: .)",
    )
    verify.add_argument(
        "--list-families",
        action="store_true",
        help="list the registered scenario families and invariants, then exit",
    )
    verify.add_argument(
        "--store",
        default=None,
        help="result-store directory: cache per-scenario blocks so an "
        "interrupted verification resumes and a repeated one is free",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run (or resume) a sharded sweep through the result store",
    )
    sweep.add_argument("spec", help="sweep spec JSON (see repro.experiments.sweep)")
    sweep.add_argument(
        "--store",
        default=".repro-store",
        help="result-store directory (default: .repro-store)",
    )
    sweep.add_argument(
        "--parallel", type=int, default=1, help="worker processes per chunk"
    )
    sweep.add_argument(
        "--shards",
        type=int,
        default=None,
        help="override the spec's chunk count (never changes results)",
    )
    sweep.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        help="execute at most this many chunks, then stop (resume later); "
        "fully cached chunks are free and do not count",
    )
    sweep.add_argument(
        "--status",
        action="store_true",
        help="report store coverage of the sweep without solving anything",
    )
    sweep.add_argument(
        "--worker",
        default=None,
        metavar="ID",
        help="run as one fleet worker (lease-based chunk claims through "
        "the shared store; any number may run concurrently)",
    )
    sweep.add_argument(
        "--launch",
        type=int,
        default=None,
        metavar="N",
        help="supervise N local worker processes and wait for the fleet",
    )
    sweep.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        help="lease heartbeat TTL in seconds; a worker silent for longer "
        "is presumed dead and its chunk is reclaimed (default: 30)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        help="transient-solver-failure retries per unit before the unit "
        "is quarantined as failed (default: Backoff policy default)",
    )
    sweep.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="fault-injection spec, e.g. 'kill-worker:after=1,worker=w0;"
        "fail-solve:p=0.3,seed=5' (see repro.fabric.chaos)",
    )

    online = sub.add_parser(
        "online",
        help="run an online scheduling policy over a trace or scenario",
    )
    online.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="instance JSON trace; omit when using --family",
    )
    online.add_argument(
        "--family",
        default=None,
        help="scenario family to stream instead of a trace "
        "(e.g. online-poisson; see `repro verify --list-families`)",
    )
    online.add_argument(
        "--index", type=int, default=0, help="scenario index within the family"
    )
    online.add_argument(
        "--root-seed", type=int, default=0, help="scenario root seed"
    )
    online.add_argument(
        "--policy",
        choices=["batch", "batch-wc", "resolve", "wsjf"],
        default="batch",
        help="online policy: geometric batching, work-conserving batching, "
        "incremental re-solve, or the static WSJF baseline",
    )
    online.add_argument(
        "--base",
        type=float,
        default=None,
        help="epoch growth factor (> 1); default 2.0",
    )
    online.add_argument(
        "--offline-algorithm",
        default="lp-heuristic",
        help="offline algorithm the batching policies delegate batches to",
    )
    online.add_argument("--slot-length", type=float, default=1.0)
    online.add_argument("--seed", type=int, default=0)
    online.add_argument(
        "--compare-offline",
        action="store_true",
        help="also solve the clairvoyant offline problem and report the "
        "competitive ratio",
    )

    scen = sub.add_parser(
        "scenarios",
        help="scenario-corpus tooling: pipelines, amplifier, trace converter",
    )
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)

    scen_run = scen_sub.add_parser(
        "run", help="execute a declarative pipeline spec (YAML or JSON)"
    )
    scen_run.add_argument("spec", help="pipeline spec file (see repro.scenarios.pipeline)")
    scen_run.add_argument(
        "--store",
        default=None,
        help="result-store directory: checkpoint per-scenario blocks so "
        "interrupted pipelines resume and repeated runs replay for free",
    )
    scen_run.add_argument(
        "--output",
        default=None,
        help="write the deterministic pipeline report to this JSON path",
    )

    scen_sub.add_parser("list", help="list the registered scenario families")

    scen_amp = scen_sub.add_parser(
        "amplify", help="amplify a trace to N coflows (marginal-preserving)"
    )
    scen_amp.add_argument("src", help="base trace JSON (any repro trace kind)")
    scen_amp.add_argument("out", help="amplified trace JSON to write")
    scen_amp.add_argument("count", type=int, help="target number of coflows")
    scen_amp.add_argument("--seed", type=int, default=0, help="amplifier root seed")
    scen_amp.add_argument(
        "--no-check",
        action="store_true",
        help="skip the marginal-preservation guard (not recommended)",
    )

    scen_fb = scen_sub.add_parser(
        "convert-fb", help="convert a Facebook-format coflow trace to JSON"
    )
    scen_fb.add_argument("src", help="Facebook-format text trace")
    scen_fb.add_argument("out", help="JSON trace to write")
    scen_fb.add_argument(
        "--demand-scale", type=float, default=1.0, help="size multiplier (trace is MB)"
    )
    scen_fb.add_argument(
        "--time-scale",
        type=float,
        default=1e-3,
        help="arrival-stamp multiplier (trace is ms; default converts to s)",
    )
    scen_fb.add_argument(
        "--max-coflows",
        type=int,
        default=None,
        help="truncate the corpus after this many coflows",
    )

    lint = sub.add_parser(
        "lint",
        help="run the AST-based determinism & discipline analyzer",
    )
    lint.add_argument(
        "path",
        nargs="?",
        default=None,
        help="directory or file to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format on stdout",
    )
    lint.add_argument(
        "--output",
        default=None,
        help="also write a machine-readable LINT_<date>.json report "
        "(directory or .json path)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes or family prefixes to run "
        "(e.g. R004 or R1,R2,R3; default: all rules)",
    )
    lint.add_argument(
        "--diff",
        metavar="REF",
        default=None,
        help="lint only files changed vs this git ref plus their "
        "reverse-dependency closure from the call graph",
    )
    lint.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="call-graph extract cache (JSON, keyed by file digests); "
        "warm runs skip re-extracting unchanged modules",
    )
    lint.add_argument(
        "--certificate",
        metavar="PATH",
        default=None,
        help="also write the kernel-purity certificate "
        "(directory or .json path; requires R301/R302/R303 in the run)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    return parser


def _cmd_topologies(out) -> int:
    for name, graph in (("swan", swan_topology()), ("gscale", gscale_topology())):
        print(
            f"{name:<8s} {graph.name:<10s} nodes={graph.num_nodes:<3d} "
            f"directed edges={graph.num_edges:<3d} "
            f"total capacity={graph.total_capacity():g}",
            file=out,
        )
    print(
        "helper topologies: paper-example, figure-1, star, line, ring, "
        "parallel-edges, switch-fabric (see repro.network.topologies)",
        file=out,
    )
    return 0


def _cmd_generate(args, out) -> int:
    graph = named_topology(args.topology)
    spec = WorkloadSpec(
        profile=args.workload,
        num_coflows=args.num_coflows,
        weighted=not args.unweighted,
        demand_scale=args.demand_scale,
        seed=args.seed,
    )
    instance = generate_instance(graph, spec, model=args.model, rng=args.seed)
    instance.save_json(args.output)
    print(
        f"wrote {instance.num_coflows} coflows / {instance.num_flows} flows "
        f"({args.workload} on {graph.name}, {args.model}) to {args.output}",
        file=out,
    )
    return 0


def _cmd_algorithms(out) -> int:
    for info in algorithm_table():
        models = ",".join(m.value for m in info.supported_models)
        flags = []
        if info.uses_shared_lp:
            flags.append("shared-lp")
        if info.randomized:
            flags.append("randomized")
        if info.online:
            flags.append("online")
        rendered_flags = f" [{', '.join(flags)}]" if flags else ""
        print(f"{info.name:<16s} models={models:<22s}{rendered_flags}", file=out)
        if info.description:
            print(f"{'':<16s} {info.description}", file=out)
    return 0


def _cmd_solve(args, out) -> int:
    instance = CoflowInstance.load_json(args.trace)
    try:
        report = solve(
            instance,
            args.algorithm,
            slot_length=args.slot_length,
            epsilon=args.epsilon,
            rng=args.seed,
            num_samples=args.num_samples,
            solver_method=args.solver_method,
            strategy=args.strategy,
            backend=args.backend,
        )
    except ValueError as exc:  # model mismatch, bad backend, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2
    bound = "n/a" if report.lower_bound is None else f"{report.lower_bound:.3f}"
    gap = "n/a" if report.lower_bound is None else f"{report.gap:.3f}x"
    print(f"instance          : {instance}", file=out)
    print(f"algorithm         : {report.algorithm}", file=out)
    path = report.solve_path
    if path is not None:
        stages = ", ".join(
            f"{s['stage']}[{s['slots']} slots, {s['solve_seconds']:.3f}s"
            + (
                f", {s['simplex_iterations']} it"
                if s.get("simplex_iterations") is not None
                else ""
            )
            + (", warm]" if s.get("warm_start") else "]")
            for s in path.get("stages", [])
        )
        print(f"solve path        : {path['strategy']} — {stages}", file=out)
    print(f"LP lower bound    : {bound}", file=out)
    print(f"objective         : {report.objective:.3f}", file=out)
    print(f"gap to bound      : {gap}", file=out)
    for coflow, time in zip(instance.coflows, report.coflow_completion_times):
        name = coflow.name or "coflow"
        print(f"  {name:<20s} weight {coflow.weight:8.2f}  C = {time:g}", file=out)
    return 0


def _cmd_batch(args, out) -> int:
    algorithms = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    instances = [CoflowInstance.load_json(path) for path in args.traces]
    config = SolverConfig(
        slot_length=args.slot_length,
        epsilon=args.epsilon,
        rng=args.seed,
        num_samples=args.num_samples,
        solver_method=args.solver_method,
        strategy=args.strategy,
    )
    try:
        reports = solve_many(
            instances, algorithms, config=config, parallel=args.parallel
        )
    except ValueError as exc:  # unknown algorithm, model mismatch, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2
    header = f"{'trace':<28s} {'algorithm':<16s} {'objective':>10s} {'bound':>10s} {'gap':>7s} {'sec':>7s}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for i, path in enumerate(args.traces):
        for k in range(len(algorithms)):
            report = reports[i * len(algorithms) + k]
            bound = (
                "n/a" if report.lower_bound is None else f"{report.lower_bound:.3f}"
            )
            gap = "n/a" if report.lower_bound is None else f"{report.gap:.3f}"
            print(
                f"{path:<28s} {report.algorithm:<16s} {report.objective:>10.3f} "
                f"{bound:>10s} {gap:>7s} {report.solve_seconds:>7.3f}",
                file=out,
            )
    return 0


def _cmd_experiment(args, out) -> int:
    config = get_experiment(args.experiment_id)
    store = None
    if args.store:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    result = run_experiment(config, scale=args.scale, store=store)
    print(format_result_table(result), file=out)
    checks = summarize_shape_checks(result)
    if checks:
        rendered = ", ".join(f"{k}={'PASS' if v else 'FAIL'}" for k, v in checks.items())
        print(f"\nshape checks: {rendered}", file=out)
    if args.csv:
        rows = write_csv([result], args.csv)
        print(f"wrote {rows} rows to {args.csv}", file=out)
    if args.json:
        write_json([result], args.json)
        print(f"wrote JSON to {args.json}", file=out)
    return 0 if all(checks.values()) else 1


def _cmd_bench(args, out) -> int:
    from repro.perf.harness import (
        compare_with_previous,
        format_report,
        run_bench,
        write_report,
    )

    try:
        report = run_bench(
            quick=args.quick, repeats=args.repeats, scenarios=args.scenarios
        )
    except ValueError as exc:  # unknown scenario name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = None
    if args.store:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    if not args.no_compare:
        # Tolerates an empty trajectory (no prior BENCH_*.json) and
        # unreadable/foreign previous files — see compare_with_previous.
        report["comparison"] = compare_with_previous(
            report, args.output, store=store
        )
    path = write_report(report, args.output, store=store)
    print(format_report(report), file=out)
    print(f"wrote {path}", file=out)
    return 0


def _cmd_verify(args, out) -> int:
    from repro.scenarios import (
        family_table,
        format_verification_report,
        get_invariant,
        invariant_names,
        run_verification,
        write_verification_report,
    )

    if args.list_families:
        print("scenario families:", file=out)
        for family in family_table():
            print(f"  {family.name:<18s} {family.description}", file=out)
        print("invariants:", file=out)
        for name in invariant_names():
            print(f"  {name:<22s} {get_invariant(name).description}", file=out)
        return 0
    algorithms = None
    if args.algorithms:
        algorithms = [
            name.strip() for name in args.algorithms.split(",") if name.strip()
        ]
    store = None
    if args.store:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    try:
        # Unknown family/algorithm/invariant names all fail fast inside
        # run_verification, before any scenario is generated or solved.
        report = run_verification(
            args.budget,
            args.seed,
            families=args.families,
            algorithms=algorithms,
            invariants=args.invariants,
            store=store,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if store is not None:
        store.put_run("verify", report)
    path = write_verification_report(report, args.output)
    print(format_verification_report(report), file=out)
    print(f"wrote {path}", file=out)
    return 0 if report["summary"]["ok"] else 1


def _cmd_sweep(args, out) -> int:
    from repro.experiments.sweep import SweepSpec, run_sweep
    from repro.fabric import (
        ChaosInjector,
        ChaosSpec,
        launch_workers,
        merged_status,
        run_worker,
    )
    from repro.store import ResultStore
    from repro.utils.retry import Backoff

    try:
        spec = SweepSpec.load_json(args.spec)
    except (OSError, KeyError, TypeError, ValueError) as exc:
        print(f"error: could not load sweep spec {args.spec}: {exc}", file=sys.stderr)
        return 2
    if args.worker and args.launch:
        print("error: --worker and --launch are mutually exclusive", file=sys.stderr)
        return 2
    try:
        # The CLI flag wins; workers spawned by --launch inherit the spec
        # through the REPRO_CHAOS environment variable instead.
        chaos_spec = (
            ChaosSpec.parse(args.chaos)
            if args.chaos is not None
            else ChaosSpec.from_env()
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    backoff = Backoff(retries=args.retries) if args.retries is not None else None
    store = ResultStore(args.store)
    if args.status:
        try:
            status = merged_status(spec, store)
        except (OSError, KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"sweep {status['sweep']} ({status['sweep_id'][:12]}): "
            f"{status['stored']}/{status['units']} units stored, "
            f"{status['pending']} pending, {status['failed']} failed "
            f"({'complete' if status['complete'] else 'incomplete'})",
            file=out,
        )
        if status["workers"] or status["leases"]:
            active = sum(1 for lease in status["leases"] if not lease["expired"])
            print(
                f"fabric: {len(status['workers'])} worker reports, "
                f"races {status['races']}, "
                f"leases {len(status['leases'])} ({active} active), "
                f"quarantined {status['quarantined']}",
                file=out,
            )
        return 0
    if args.worker:
        try:
            report = run_worker(
                spec,
                store,
                worker_id=args.worker,
                ttl=args.ttl,
                backoff=backoff,
                chaos=chaos_spec,
            )
        except (OSError, KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"worker {report.worker_id}: chunks {report.chunks_completed} "
            f"completed, steals {report.steals}, "
            f"units solved {report.units_solved}, hit {report.units_hit}, "
            f"failed {report.units_failed}, races {report.races} "
            f"({report.seconds:.2f}s)",
            file=out,
        )
        return 0 if report.complete else 1
    if args.launch:
        try:
            exits = launch_workers(
                args.spec,
                args.store,
                args.launch,
                ttl=args.ttl,
                chaos=chaos_spec,
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for worker_exit in exits:
            print(
                f"worker {worker_exit.worker_id}: exit {worker_exit.returncode}",
                file=out,
            )
        status = merged_status(spec, store)
        print(
            f"fleet: {status['stored']}/{status['units']} units stored, "
            f"{status['failed']} failed, races {status['races']} "
            f"({'complete' if status['complete'] else 'incomplete'})",
            file=out,
        )
        return 0 if status["complete"] else 1
    try:
        result = run_sweep(
            spec,
            store,
            parallel=args.parallel,
            max_chunks=args.max_chunks,
            num_shards=args.shards,
            backoff=backoff,
            chaos=ChaosInjector(spec=chaos_spec) if chaos_spec else None,
        )
    except (OSError, KeyError, ValueError) as exc:
        # Unknown algorithm / empty cross product (ValueError), missing
        # trace file (OSError), unknown topology name (KeyError): all are
        # spec problems, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    header = (
        f"{'instance':<30s} {'algorithm':<16s} {'eps':>6s} "
        f"{'objective':>10s} {'source':>7s}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for unit in result.units:
        label = spec.instances[unit.instance_index].label()
        eps = "-" if unit.epsilon is None else f"{unit.epsilon:g}"
        objective = (
            "pending" if unit.objective is None else f"{unit.objective:.3f}"
        )
        print(
            f"{label:<30s} {unit.algorithm:<16s} {eps:>6s} "
            f"{objective:>10s} {unit.status:>7s}",
            file=out,
        )
    summary = result.summary()
    print(
        f"units {summary['units']}: hit {summary['hits']}, "
        f"solved {summary['solved']}, pending {summary['pending']}, "
        f"failed {summary['failed']} "
        f"(chunks {summary['chunks_run']}/{summary['chunks_total']}, "
        f"{summary['seconds']:.2f}s, store {store.root})",
        file=out,
    )
    if not result.complete:
        print(
            "sweep incomplete; re-run the same command to resume from the "
            "last checkpoint",
            file=out,
        )
    return 0


def _cmd_online(args, out) -> int:
    from repro.online import (
        ArrivalStream,
        GeometricBatchingPolicy,
        IncrementalResolvePolicy,
        OnlineEngine,
        WSJFPolicy,
    )

    if (args.trace is None) == (args.family is None):
        print(
            "error: give exactly one input — a trace path or --family",
            file=sys.stderr,
        )
        return 2
    # Flags that only the batching policies read must not be silently
    # ignored: a "comparison across bases" that never varied anything is
    # worse than an error.
    if args.policy in ("resolve", "wsjf"):
        if args.base is not None:
            print(
                f"error: --base only applies to the batching policies, "
                f"not --policy {args.policy}",
                file=sys.stderr,
            )
            return 2
        if args.offline_algorithm != "lp-heuristic" and not args.compare_offline:
            print(
                f"error: --offline-algorithm only applies to the batching "
                f"policies (or with --compare-offline), not --policy "
                f"{args.policy}",
                file=sys.stderr,
            )
            return 2
    try:
        if args.family is not None:
            stream = ArrivalStream.from_scenario(
                args.family, args.index, args.root_seed
            )
        else:
            stream = ArrivalStream.from_trace(args.trace)
        if args.policy in ("batch", "batch-wc"):
            policy = GeometricBatchingPolicy(
                args.base if args.base is not None else 2.0,
                offline_algorithm=args.offline_algorithm,
                early_start=args.policy == "batch-wc",
            )
        elif args.policy == "resolve":
            policy = IncrementalResolvePolicy()
        else:
            policy = WSJFPolicy()
        config = SolverConfig(slot_length=args.slot_length, rng=args.seed)
        result = OnlineEngine(stream, config=config).run(policy)
    except (OSError, KeyError, ValueError) as exc:
        # Missing trace file, unknown family/offline algorithm, bad base.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    instance = stream.instance
    print(f"stream            : {stream}", file=out)
    print(f"policy            : {result.algorithm}", file=out)
    print(
        f"objective         : {result.weighted_completion_time:.3f} "
        f"(makespan {result.makespan:.3f})",
        file=out,
    )
    if result.batches:
        print(f"batches           : {result.num_batches}", file=out)
        for batch in result.batches:
            members = ", ".join(
                instance.coflows[j].name or f"C{j}" for j in batch.coflow_indices
            )
            print(
                f"  epoch {batch.epoch_index:<3d} start t={batch.start_time:<8.3f} "
                f"makespan {batch.makespan:<8.3f} [{members}]",
                file=out,
            )
    if args.compare_offline:
        # The same config as the online run, so the clairvoyant baseline
        # never silently solves under different knobs.
        offline = solve(instance, args.offline_algorithm, config=config)
        ratio = result.competitive_ratio(offline.objective)
        bound = (
            "n/a" if offline.lower_bound is None else f"{offline.lower_bound:.3f}"
        )
        print(
            f"offline ({args.offline_algorithm}) : {offline.objective:.3f} "
            f"(LP bound {bound})",
            file=out,
        )
        print(f"competitive ratio : {ratio:.3f}x", file=out)
    return 0


def _cmd_scenarios(args, out) -> int:
    if args.scenarios_command == "list":
        from repro.scenarios import family_table

        for family in family_table():
            print(f"{family.name:<20s} {family.description}", file=out)
        return 0
    if args.scenarios_command == "amplify":
        from repro.scenarios.amplify import amplify_trace

        try:
            summary = amplify_trace(
                args.src,
                args.out,
                args.count,
                root_seed=args.seed,
                check=not args.no_check,
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"amplified {summary['base_coflows']} -> {summary['num_coflows']} "
            f"coflows ({summary['num_flows']} flows, seed {summary['root_seed']}) "
            f"to {summary['out']}",
            file=out,
        )
        for key, value in sorted(summary["marginals"].items()):
            print(f"  {key:<22s} {value:.6f}", file=out)
        return 0
    if args.scenarios_command == "convert-fb":
        from repro.workloads.fbtrace import convert_facebook_trace

        try:
            summary = convert_facebook_trace(
                args.src,
                args.out,
                demand_scale=args.demand_scale,
                time_scale=args.time_scale,
                max_coflows=args.max_coflows,
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"converted {summary['num_coflows']} coflows / "
            f"{summary['num_flows']} flows "
            f"(horizon {summary['max_release_time']:.3f}) to {summary['out']}",
            file=out,
        )
        return 0
    # args.scenarios_command == "run"
    from repro.scenarios.pipeline import (
        PipelineSpec,
        format_pipeline_report,
        run_pipeline,
        write_pipeline_report,
    )

    try:
        spec = PipelineSpec.load(args.spec)
    except (OSError, KeyError, TypeError, ValueError) as exc:
        print(f"error: could not load pipeline spec {args.spec}: {exc}", file=sys.stderr)
        return 2
    store = None
    if args.store:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    try:
        result = run_pipeline(spec, store=store)
    except ValueError as exc:  # unknown family/invariant/algorithm
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_pipeline_report(result), file=out)
    if args.output:
        path = write_pipeline_report(result, args.output)
        print(f"wrote {path}", file=out)
    return 0 if result.ok else 1


def _cmd_lint(args, out) -> int:
    from repro.lint import (
        format_result,
        format_rule_table,
        result_to_json,
        run_lint,
        write_certificate,
        write_lint_report,
    )

    if args.list_rules:
        print(format_rule_table(), file=out)
        return 0
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        result = run_lint(
            args.path, select=select, diff=args.diff, cache_path=args.cache
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        # result_to_json is already plain JSON (built from normalized data).
        print(json.dumps(result_to_json(result), indent=2), file=out)  # repro-lint: allow[R005]
    else:
        print(format_result(result), file=out)
    if args.output is not None:
        path = write_lint_report(result, args.output)
        print(f"wrote {path}", file=out)
        # A directory output also publishes the certificate next to the
        # report (the CI artifact layout); a .json path names the report
        # alone, so the certificate needs --certificate explicitly.
        if result.certificate is not None and Path(args.output).suffix != ".json":
            cert_path = write_certificate(result, args.output)
            print(f"wrote {cert_path}", file=out)
    if args.certificate is not None:
        try:
            cert_path = write_certificate(result, args.certificate)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {cert_path}", file=out)
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "topologies":
        return _cmd_topologies(out)
    if args.command == "algorithms":
        return _cmd_algorithms(out)
    if args.command == "generate":
        return _cmd_generate(args, out)
    if args.command == "solve":
        return _cmd_solve(args, out)
    if args.command == "batch":
        return _cmd_batch(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "verify":
        return _cmd_verify(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "online":
        return _cmd_online(args, out)
    if args.command == "scenarios":
        return _cmd_scenarios(args, out)
    if args.command == "lint":
        return _cmd_lint(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
