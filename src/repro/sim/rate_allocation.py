"""Rate allocation primitives for the continuous-time simulator.

Two questions are answered here:

1. *How fast can a single coflow finish on a given (residual) network?*
   (:func:`coflow_standalone_time`, :func:`max_concurrent_rate`) — this is
   the quantity Terra computes per coflow before ordering them by SRTF.
2. *Given a priority order over coflows, what rate does every flow get right
   now?* (:func:`allocate_rates`) — coflows are served greedily in priority
   order, each receiving the rates that let it finish as early as possible on
   the capacity left over by higher-priority coflows.  This mirrors how
   Varys/Terra-style schedulers turn an ordering into a work-conserving rate
   assignment.

For the single path model the per-coflow allocation has a closed form (the
coflow's flows progress proportionally to their remaining demand, limited by
the most congested edge).  For the free path model it is a small LP: maximise
the common progress rate ``alpha`` such that shipping ``alpha * remaining_f``
per unit time is a feasible multicommodity flow in the residual network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coflow.instance import CoflowInstance, FlowRef, TransmissionModel
from repro.lp.model import ConstraintSense, LinearProgram
from repro.lp.solver import solve_lp

#: Rates below this threshold are treated as zero.
RATE_TOL = 1e-9


@dataclass
class RateAllocation:
    """Result of one allocation round.

    Attributes
    ----------
    rates:
        Rate (demand units per unit time) assigned to each flow, indexed by
        global flow index.  Flows not in the active set get 0.
    edge_rates:
        Optional per-flow, per-edge rates for the free path model, shape
        ``(num_flows, num_edges)``; used to verify capacity feasibility.
    residual_capacity:
        Capacity left unused on every edge after the allocation.
    """

    rates: np.ndarray
    edge_rates: Optional[np.ndarray]
    residual_capacity: np.ndarray


def _path_edge_indices(instance: CoflowInstance, ref: FlowRef) -> List[int]:
    edge_index = instance.graph.edge_index()
    return [edge_index[e] for e in ref.flow.path_edges()]


def single_path_coflow_rates(
    instance: CoflowInstance,
    flow_refs: Sequence[FlowRef],
    remaining: np.ndarray,
    residual: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fastest-completion rates for one coflow's flows along pinned paths.

    All flows of the coflow progress proportionally to their remaining
    demand: flow *f* gets rate ``alpha * remaining_f`` with the largest
    ``alpha`` such that no edge of the residual network is overloaded.

    Returns ``(rates_by_global_index, edge_usage)`` where ``edge_usage`` has
    one entry per edge.
    """
    num_edges = instance.graph.num_edges
    usage_per_alpha = np.zeros(num_edges, dtype=float)
    for ref in flow_refs:
        rem = remaining[ref.global_index]
        if rem <= RATE_TOL:
            continue
        for e in _path_edge_indices(instance, ref):
            usage_per_alpha[e] += rem
    rates = np.zeros(instance.num_flows, dtype=float)
    edge_usage = np.zeros(num_edges, dtype=float)
    loaded = usage_per_alpha > RATE_TOL
    if not loaded.any():
        return rates, edge_usage
    with np.errstate(divide="ignore"):
        alpha = float(np.min(residual[loaded] / usage_per_alpha[loaded]))
    alpha = max(alpha, 0.0)
    if alpha <= RATE_TOL:
        return rates, edge_usage
    for ref in flow_refs:
        rem = remaining[ref.global_index]
        if rem <= RATE_TOL:
            continue
        rate = alpha * rem
        rates[ref.global_index] = rate
        for e in _path_edge_indices(instance, ref):
            edge_usage[e] += rate
    return rates, edge_usage


def free_path_coflow_rates(
    instance: CoflowInstance,
    flow_refs: Sequence[FlowRef],
    remaining: np.ndarray,
    residual: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fastest-completion rates for one coflow in the free path model.

    Solves the max-concurrent-flow LP: maximise ``alpha`` such that routing
    ``alpha * remaining_f`` units per unit time for every unfinished flow *f*
    of the coflow is a feasible multicommodity flow within the residual
    capacities.

    Returns ``(rates, per_flow_edge_rates, edge_usage)``.
    """
    graph = instance.graph
    num_edges = graph.num_edges
    active = [r for r in flow_refs if remaining[r.global_index] > RATE_TOL]
    rates = np.zeros(instance.num_flows, dtype=float)
    flow_edge_rates = np.zeros((instance.num_flows, num_edges), dtype=float)
    edge_usage = np.zeros(num_edges, dtype=float)
    if not active:
        return rates, flow_edge_rates, edge_usage

    lp = LinearProgram(name="max-concurrent-flow")
    alpha_block = lp.add_variables("alpha", 1, lower=0.0)
    alpha_idx = int(alpha_block.indices()[0])
    y_block = lp.add_variables("y", len(active) * num_edges, lower=0.0)
    y_idx = y_block.reshape(len(active), num_edges)
    # Maximise alpha == minimise -alpha.
    lp.set_objective_coefficient(alpha_idx, -1.0)

    edge_index = graph.edge_index()
    nodes = graph.nodes
    out_edges = {n: [edge_index[e] for e in graph.out_edges(n)] for n in nodes}
    in_edges = {n: [edge_index[e] for e in graph.in_edges(n)] for n in nodes}

    for a, ref in enumerate(active):
        src, dst = ref.flow.source, ref.flow.sink
        rem = float(remaining[ref.global_index])
        # No circulation through the endpoints (same convention as the LP
        # builder in repro.core.timeindexed).
        for e in in_edges[src]:
            lp.fix_variable(int(y_idx[a, e]), 0.0)
        for e in out_edges[dst]:
            lp.fix_variable(int(y_idx[a, e]), 0.0)
        src_out = out_edges[src]
        dst_in = in_edges[dst]
        # sum_out(src) y = alpha * remaining
        lp.add_constraint(
            list(y_idx[a, src_out]) + [alpha_idx],
            [1.0] * len(src_out) + [-rem],
            ConstraintSense.EQUAL,
            0.0,
        )
        lp.add_constraint(
            list(y_idx[a, dst_in]) + [alpha_idx],
            [1.0] * len(dst_in) + [-rem],
            ConstraintSense.EQUAL,
            0.0,
        )
        for node in nodes:
            if node in (src, dst):
                continue
            node_in = in_edges[node]
            node_out = out_edges[node]
            if not node_in and not node_out:
                continue
            lp.add_constraint(
                list(y_idx[a, node_in]) + list(y_idx[a, node_out]),
                [1.0] * len(node_in) + [-1.0] * len(node_out),
                ConstraintSense.EQUAL,
                0.0,
            )
    # Residual capacity constraints.
    for e in range(num_edges):
        lp.add_constraint(
            y_idx[:, e],
            np.ones(len(active)),
            ConstraintSense.LESS_EQUAL,
            float(max(residual[e], 0.0)),
        )

    result = solve_lp(lp, require_optimal=True)
    alpha = result.value(alpha_idx)
    if alpha <= RATE_TOL:
        return rates, flow_edge_rates, edge_usage
    y_values = result.values(y_idx)
    for a, ref in enumerate(active):
        rem = float(remaining[ref.global_index])
        rates[ref.global_index] = alpha * rem
        flow_edge_rates[ref.global_index] = y_values[a]
        edge_usage += y_values[a]
    return rates, flow_edge_rates, edge_usage


def allocate_rates(
    instance: CoflowInstance,
    remaining: np.ndarray,
    coflow_priority: Sequence[int],
    *,
    active_coflows: Optional[Sequence[int]] = None,
) -> RateAllocation:
    """Greedy, priority-ordered rate allocation (one simulator round).

    Parameters
    ----------
    instance:
        The scheduling instance (model decides the allocation primitive).
    remaining:
        Remaining demand of every flow (global flow index).
    coflow_priority:
        Coflow indices from highest to lowest priority.
    active_coflows:
        Coflows currently allowed to transmit (released and unfinished);
        defaults to every coflow in *coflow_priority*.
    """
    graph = instance.graph
    residual = graph.capacity_vector()
    rates = np.zeros(instance.num_flows, dtype=float)
    edge_rates = (
        np.zeros((instance.num_flows, graph.num_edges), dtype=float)
        if instance.model is TransmissionModel.FREE_PATH
        else None
    )
    active_set = set(active_coflows if active_coflows is not None else coflow_priority)

    flows_by_coflow: Dict[int, List[FlowRef]] = {}
    for ref in instance.flow_refs():
        flows_by_coflow.setdefault(ref.coflow_index, []).append(ref)

    for j in coflow_priority:
        if j not in active_set:
            continue
        refs = flows_by_coflow.get(j, [])
        if not refs:
            continue
        if instance.model is TransmissionModel.FREE_PATH:
            coflow_rates, coflow_edge_rates, usage = free_path_coflow_rates(
                instance, refs, remaining, residual
            )
            if edge_rates is not None:
                edge_rates += coflow_edge_rates
        else:
            coflow_rates, usage = single_path_coflow_rates(
                instance, refs, remaining, residual
            )
        rates += coflow_rates
        residual = np.clip(residual - usage, 0.0, None)
    return RateAllocation(rates=rates, edge_rates=edge_rates, residual_capacity=residual)


def max_concurrent_rate(
    instance: CoflowInstance, coflow_index: int, remaining: Optional[np.ndarray] = None
) -> float:
    """Largest ``alpha`` such that the coflow can ship ``alpha`` of its remaining
    demand per unit time when it has the whole network to itself."""
    if remaining is None:
        remaining = instance.demands()
    refs = instance.flows_of(coflow_index)
    residual = instance.graph.capacity_vector()
    if instance.model is TransmissionModel.FREE_PATH:
        rates, _, _ = free_path_coflow_rates(instance, refs, remaining, residual)
    else:
        rates, _ = single_path_coflow_rates(instance, refs, remaining, residual)
    alphas = [
        rates[r.global_index] / remaining[r.global_index]
        for r in refs
        if remaining[r.global_index] > RATE_TOL
    ]
    if not alphas:
        return float("inf")
    return float(min(alphas))


def coflow_standalone_time(
    instance: CoflowInstance, coflow_index: int, remaining: Optional[np.ndarray] = None
) -> float:
    """Minimum time for the coflow to finish alone on the empty network.

    This is Terra's per-coflow completion-time estimate: the reciprocal of
    the maximum concurrent rate.  Returns 0 when the coflow has no remaining
    demand.
    """
    alpha = max_concurrent_rate(instance, coflow_index, remaining)
    if alpha == float("inf"):
        return 0.0
    if alpha <= RATE_TOL:
        raise ValueError(
            f"coflow {coflow_index} cannot make progress on the network"
        )
    return 1.0 / alpha
