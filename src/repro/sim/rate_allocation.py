"""Rate allocation primitives for the continuous-time simulator.

Two questions are answered here:

1. *How fast can a single coflow finish on a given (residual) network?*
   (:func:`coflow_standalone_time`, :func:`max_concurrent_rate`) — this is
   the quantity Terra computes per coflow before ordering them by SRTF.
2. *Given a priority order over coflows, what rate does every flow get right
   now?* (:func:`allocate_rates`) — coflows are served greedily in priority
   order, each receiving the rates that let it finish as early as possible on
   the capacity left over by higher-priority coflows.  This mirrors how
   Varys/Terra-style schedulers turn an ordering into a work-conserving rate
   assignment.

For the single path model the per-coflow allocation has a closed form (the
coflow's flows progress proportionally to their remaining demand, limited by
the most congested edge).  For the free path model it is a small LP: maximise
the common progress rate ``alpha`` such that shipping ``alpha * remaining_f``
per unit time is a feasible multicommodity flow in the residual network.

Performance
-----------
All primitives run through a per-instance :class:`RateAllocator` that
precomputes the flow→edge incidence (single path) and caches the assembled
max-concurrent-flow LP *structure* per active flow set (free path): between
simulator events only the ``-remaining`` coefficients and the residual
capacities change, so each event rewrites a few values in a prebuilt CSR
matrix instead of reassembling the program.  Standalone completion times are
memoized per (coflow, residual-capacity signature, remaining-demand
signature), which collapses the repeated LP families solved by Terra and the
greedy baselines when several of them run on the same instance.

The allocator assumes instances and their graphs are immutable once
scheduling starts (the same assumption the instance-level array caches
make).  The loop-based originals live in :mod:`repro.sim.reference` and are
used as the equivalence oracle and benchmark baseline.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.coflow.instance import CoflowInstance, FlowRef, TransmissionModel
from repro.lp.backends import (
    LinprogBackend,
    LPSpec,
    PersistentHighsError,
    make_persistent_lp,
)
from repro.lp.solver import LPSolverError

#: Rates below this threshold are treated as zero.
RATE_TOL = 1e-9


@dataclass
class RateAllocation:
    """Result of one allocation round.

    Attributes
    ----------
    rates:
        Rate (demand units per unit time) assigned to each flow, indexed by
        global flow index.  Flows not in the active set get 0.
    edge_rates:
        Optional per-flow, per-edge rates for the free path model, shape
        ``(num_flows, num_edges)``; used to verify capacity feasibility.
    residual_capacity:
        Capacity left unused on every edge after the allocation.
    """

    rates: np.ndarray
    edge_rates: Optional[np.ndarray]
    residual_capacity: np.ndarray


@dataclass
class CoflowAllocation:
    """Compact allocation of one coflow (the incremental simulator's unit).

    Attributes
    ----------
    flow_idx:
        Global indices of the flows that received a rate.
    flow_rates:
        Their rates, parallel to *flow_idx*.
    usage:
        Per-edge capacity consumed by this coflow (length ``num_edges``).
    edge_rates:
        Per-flow per-edge rates, shape ``(len(flow_idx), num_edges)``, for
        the free path model; ``None`` for single path.
    """

    flow_idx: np.ndarray
    flow_rates: np.ndarray
    usage: np.ndarray
    edge_rates: Optional[np.ndarray] = None


class _FreePathTemplate:
    """Prebuilt max-concurrent-flow LP for one fixed set of active flows.

    The constraint structure (variable order, row order, sparsity pattern,
    bounds) matches the loop-built LP of :mod:`repro.sim.reference` exactly;
    only the ``-remaining`` coefficients in the source/sink rows and the
    residual right-hand sides vary between calls, and those are rewritten in
    place.
    """

    def __init__(self, instance: CoflowInstance, active_refs: Sequence[FlowRef]) -> None:
        graph = instance.graph
        num_edges = graph.num_edges
        k = len(active_refs)
        n = 1 + k * num_edges  # alpha plus y[a, e]

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        markers: List[int] = []  # local flow index for -rem slots, else -1
        lower = np.zeros(n, dtype=float)
        upper = np.full(n, np.inf)
        row = 0

        def _emit(r: int, c: np.ndarray, v: float) -> None:
            rows.extend([r] * c.size)
            cols.extend(c.tolist())
            vals.extend([v] * c.size)
            markers.extend([-1] * c.size)

        for a, ref in enumerate(active_refs):
            src, dst = ref.flow.source, ref.flow.sink
            y0 = 1 + a * num_edges
            # No circulation through the endpoints (same convention as the
            # time-indexed LP builder).
            blocked = np.concatenate(
                [graph.in_edge_indices(src), graph.out_edge_indices(dst)]
            )
            if blocked.size:
                upper[y0 + blocked] = 0.0
            # sum_out(src) y = alpha * remaining.  The alpha coefficient is a
            # -1.0 placeholder: it must be nonzero so HiGHS keeps the entry,
            # and it is rewritten to -remaining before every solve.
            _emit(row, y0 + graph.out_edge_indices(src), 1.0)
            rows.append(row)
            cols.append(0)
            vals.append(-1.0)
            markers.append(a)
            row += 1
            # sum_in(dst) y = alpha * remaining
            _emit(row, y0 + graph.in_edge_indices(dst), 1.0)
            rows.append(row)
            cols.append(0)
            vals.append(-1.0)
            markers.append(a)
            row += 1
            # Conservation at every other (non-isolated) node.
            for node in graph.nodes:
                if node == src or node == dst:
                    continue
                node_in = graph.in_edge_indices(node)
                node_out = graph.out_edge_indices(node)
                if node_in.size == 0 and node_out.size == 0:
                    continue
                _emit(row, y0 + node_in, 1.0)
                _emit(row, y0 + node_out, -1.0)
                row += 1

        coo_rows = np.array(rows, dtype=np.int64)
        coo_cols = np.array(cols, dtype=np.int64)
        coo_vals = np.array(vals, dtype=float)
        marker_arr = np.array(markers, dtype=np.int64)
        # CSR conversion permutes the COO entries; recover the permutation by
        # round-tripping entry ids (there are no duplicate coordinates).
        ids = sparse.coo_matrix(
            (np.arange(1, coo_vals.size + 1, dtype=float), (coo_rows, coo_cols)),
            shape=(row, n),
        ).tocsr()
        perm = ids.data.astype(np.int64) - 1
        self.a_eq = sparse.csr_matrix(
            (coo_vals[perm], ids.indices, ids.indptr), shape=(row, n)
        )
        marker_perm = marker_arr[perm]
        self._rem_slots = np.nonzero(marker_perm >= 0)[0]
        self._rem_flow = marker_perm[self._rem_slots]
        self.b_eq = np.zeros(row)

        # Capacity rows: sum_a y[a, e] <= residual_e for every edge.
        cap_rows = np.tile(np.arange(num_edges, dtype=np.int64), k)
        cap_cols = (
            1
            + np.repeat(np.arange(k, dtype=np.int64), num_edges) * num_edges
            + cap_rows
        )
        self.a_ub = sparse.coo_matrix(
            (np.ones(cap_rows.size), (cap_rows, cap_cols)), shape=(num_edges, n)
        ).tocsr()

        self.c = np.zeros(n)
        self.c[0] = -1.0  # maximise alpha
        self.bounds = np.column_stack([lower, upper])
        self.num_edges = num_edges
        self.k = k
        self.num_eq_rows = row

        # Alpha-coefficient positions in raw COO order (for the persistent
        # HiGHS path, which addresses coefficients by (row, col)).
        alpha_entries = np.nonzero(marker_arr >= 0)[0]
        self._alpha_rows = coo_rows[alpha_entries]
        self._alpha_flows = marker_arr[alpha_entries]

        # Persistent warm-started HiGHS model: one combined matrix with
        # equality rows (bounds 0, 0) on top and capacity rows
        # (-inf, residual) below.  None when the in-process API is missing.
        self._persistent = make_persistent_lp(
            self.c,
            sparse.vstack([self.a_eq, self.a_ub]),
            np.concatenate([np.zeros(row), np.full(num_edges, -np.inf)]),
            np.concatenate([np.zeros(row), np.full(num_edges, np.inf)]),
            lower,
            upper,
        )
        self._memo: Dict[Tuple[bytes, bytes], Tuple[float, np.ndarray]] = {}

    #: Bound on the per-template input→solution memo (see :meth:`solve`).
    MEMO_MAX_ENTRIES = 4096

    def solve(self, rem_active: np.ndarray, residual: np.ndarray):
        """Solve for the given remaining demands / residual capacities.

        Returns ``(alpha, y)`` with ``y`` of shape ``(k, num_edges)``.

        Results are memoized on the exact inputs.  This is not (only) an
        optimization: a warm-started HiGHS re-solve may return *different*
        optimal vertices for the same degenerate LP depending on the basis
        left by earlier solves, and the simulator's incremental==full
        equivalence contract needs the allocation to be a deterministic
        function of ``(remaining, residual)``.  The memo pins the first
        vertex seen for each input, making every later request — from
        either simulation mode — reproduce it exactly.
        """
        key = (rem_active.tobytes(), np.maximum(residual, 0.0).tobytes())
        cached = self._memo.get(key)
        if cached is not None:
            alpha, y = cached
            return alpha, y.copy()
        if self._persistent is not None:
            lp = self._persistent
            for r, a in zip(self._alpha_rows, self._alpha_flows):
                lp.change_coeff(r, 0, -rem_active[a])
            base = self.num_eq_rows
            residual_clipped = np.maximum(residual, 0.0)
            for e in range(self.num_edges):
                lp.change_row_bounds(base + e, -np.inf, residual_clipped[e])
            try:
                x = lp.solve()
            except PersistentHighsError as exc:
                raise LPSolverError(
                    f"LP 'max-concurrent-flow' failed to solve: {exc}"
                ) from exc
        else:
            self.a_eq.data[self._rem_slots] = -rem_active[self._rem_flow]
            spec = LPSpec(
                c=self.c,
                a_ub=self.a_ub,
                b_ub=np.maximum(residual, 0.0),
                a_eq=self.a_eq,
                b_eq=self.b_eq,
                col_lower=self.bounds[:, 0],
                col_upper=self.bounds[:, 1],
                name="max-concurrent-flow",
            )
            solution = LinprogBackend().solve(spec)
            if not solution.is_optimal:
                raise LPSolverError(
                    f"LP 'max-concurrent-flow' failed to solve: "
                    f"{solution.status.value} ({solution.message})"
                )
            x = np.asarray(solution.x, dtype=float)
        alpha = float(max(x[0], 0.0))
        y = np.clip(x[1:].reshape(self.k, self.num_edges), 0.0, None)
        if len(self._memo) >= self.MEMO_MAX_ENTRIES:
            self._memo.clear()
        self._memo[key] = (alpha, y)
        return alpha, y.copy()


class RateAllocator:
    """Per-instance vectorized allocation engine (see module docstring)."""

    def __init__(self, instance: CoflowInstance) -> None:
        self.instance = instance
        self.num_flows = instance.num_flows
        self.num_edges = instance.graph.num_edges
        self.free_path = instance.model is TransmissionModel.FREE_PATH
        coflow_of_flow = instance.coflow_of_flow()
        self._coflow_flow_idx: List[np.ndarray] = [
            np.nonzero(coflow_of_flow == j)[0]
            for j in range(instance.num_coflows)
        ]
        if not self.free_path:
            inc_flows, inc_edges = instance.path_edge_incidence()
            self._inc_flows = inc_flows
            self._inc_edges = inc_edges
            self._coflow_inc_positions: List[np.ndarray] = [
                np.nonzero(np.isin(inc_flows, idx))[0]
                for idx in self._coflow_flow_idx
            ]
        self._templates: Dict[Tuple[int, ...], _FreePathTemplate] = {}
        self._standalone_cache: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------ #
    # single path
    # ------------------------------------------------------------------ #
    def _single_path_core(
        self,
        cand_idx: np.ndarray,
        inc_positions: np.ndarray,
        remaining: np.ndarray,
        residual: np.ndarray,
    ) -> CoflowAllocation:
        ef = self._inc_flows[inc_positions]
        keep = remaining[ef] > RATE_TOL
        ef = ef[keep]
        ee = self._inc_edges[inc_positions][keep]
        empty = CoflowAllocation(
            flow_idx=np.empty(0, dtype=np.int64),
            flow_rates=np.empty(0, dtype=float),
            usage=np.zeros(self.num_edges, dtype=float),
        )
        if ef.size == 0:
            return empty
        usage_per_alpha = np.bincount(
            ee, weights=remaining[ef], minlength=self.num_edges
        )
        loaded = usage_per_alpha > RATE_TOL
        if not loaded.any():
            return empty
        with np.errstate(divide="ignore"):
            alpha = float(np.min(residual[loaded] / usage_per_alpha[loaded]))
        alpha = max(alpha, 0.0)
        if alpha <= RATE_TOL:
            return empty
        active = cand_idx[remaining[cand_idx] > RATE_TOL]
        return CoflowAllocation(
            flow_idx=active,
            flow_rates=alpha * remaining[active],
            usage=alpha * usage_per_alpha,
        )

    # ------------------------------------------------------------------ #
    # free path
    # ------------------------------------------------------------------ #
    def _free_path_core(
        self,
        cand_idx: np.ndarray,
        remaining: np.ndarray,
        residual: np.ndarray,
        refs_by_global: Dict[int, FlowRef],
    ) -> CoflowAllocation:
        active = cand_idx[remaining[cand_idx] > RATE_TOL]
        empty = CoflowAllocation(
            flow_idx=np.empty(0, dtype=np.int64),
            flow_rates=np.empty(0, dtype=float),
            usage=np.zeros(self.num_edges, dtype=float),
            edge_rates=np.empty((0, self.num_edges), dtype=float),
        )
        if active.size == 0:
            return empty
        key = tuple(int(f) for f in active)
        template = self._templates.get(key)
        if template is None:
            template = _FreePathTemplate(
                self.instance, [refs_by_global[f] for f in key]
            )
            self._templates[key] = template
        alpha, y = template.solve(remaining[active], residual)
        if alpha <= RATE_TOL:
            return empty
        return CoflowAllocation(
            flow_idx=active,
            flow_rates=alpha * remaining[active],
            usage=y.sum(axis=0),
            edge_rates=y,
        )

    # ------------------------------------------------------------------ #
    # per-coflow entry point
    # ------------------------------------------------------------------ #
    def coflow_allocation(
        self, coflow_index: int, remaining: np.ndarray, residual: np.ndarray
    ) -> CoflowAllocation:
        """Fastest-completion allocation of one coflow on *residual*."""
        cand = self._coflow_flow_idx[coflow_index]
        if self.free_path:
            refs = self.instance.flows_of(coflow_index)
            return self._free_path_core(
                cand, remaining, residual, {r.global_index: r for r in refs}
            )
        return self._single_path_core(
            cand,
            self._coflow_inc_positions[coflow_index],
            remaining,
            residual,
        )

    # ------------------------------------------------------------------ #
    # standalone times (Terra's LP families), cached
    # ------------------------------------------------------------------ #
    def max_concurrent_rate(
        self, coflow_index: int, remaining: Optional[np.ndarray] = None
    ) -> float:
        if remaining is None:
            remaining = self.instance.demands()
        residual = self.instance.graph.capacity_vector()
        cand = self._coflow_flow_idx[coflow_index]
        rem_slice = np.ascontiguousarray(remaining[cand])
        key = (coflow_index, residual.tobytes(), rem_slice.tobytes())
        cached = self._standalone_cache.get(key)
        if cached is not None:
            return cached
        alloc = self.coflow_allocation(coflow_index, remaining, residual)
        if alloc.flow_idx.size == 0:
            active_any = bool((rem_slice > RATE_TOL).any())
            alpha = 0.0 if active_any else float("inf")
        else:
            with np.errstate(divide="ignore"):
                alpha = float(
                    np.min(alloc.flow_rates / remaining[alloc.flow_idx])
                )
        self._standalone_cache[key] = alpha
        return alpha


#: One allocator per live instance; instances are assumed immutable once
#: scheduling starts, so the allocator (and its caches) never invalidates.
_ALLOCATORS: "weakref.WeakKeyDictionary[CoflowInstance, RateAllocator]" = (
    weakref.WeakKeyDictionary()
)


def get_rate_allocator(instance: CoflowInstance) -> RateAllocator:
    """The (cached) :class:`RateAllocator` for *instance*."""
    allocator = _ALLOCATORS.get(instance)
    if allocator is None:
        allocator = RateAllocator(instance)
        # Sanctioned kernel-purity waiver: a content-transparent memo —
        # the mapping is weak, keyed by instance identity, and the cached
        # allocator is a pure function of the (immutable) instance, so
        # results never depend on whether the entry was present.
        _ALLOCATORS[instance] = allocator  # repro-lint: allow[R301]
    return allocator


# --------------------------------------------------------------------------- #
# public primitives (same signatures as the original loop implementations)
# --------------------------------------------------------------------------- #
def single_path_coflow_rates(
    instance: CoflowInstance,
    flow_refs: Sequence[FlowRef],
    remaining: np.ndarray,
    residual: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fastest-completion rates for one coflow's flows along pinned paths.

    All flows of the coflow progress proportionally to their remaining
    demand: flow *f* gets rate ``alpha * remaining_f`` with the largest
    ``alpha`` such that no edge of the residual network is overloaded.

    Returns ``(rates_by_global_index, edge_usage)`` where ``edge_usage`` has
    one entry per edge.
    """
    allocator = get_rate_allocator(instance)
    cand = np.array([r.global_index for r in flow_refs], dtype=np.int64)
    if allocator.free_path:
        # A free-path instance whose flows happen to carry pinned paths may
        # still use the single-path primitive (legacy behaviour); build the
        # incidence locally from the given refs.
        edge_index = instance.graph.edge_index()
        ef_list: List[int] = []
        ee_list: List[int] = []
        for ref in flow_refs:
            for edge in ref.flow.path_edges():
                ef_list.append(ref.global_index)
                ee_list.append(edge_index[edge])
        ef_all = np.array(ef_list, dtype=np.int64)
        ee_all = np.array(ee_list, dtype=np.int64)
        keep = remaining[ef_all] > RATE_TOL if ef_all.size else np.zeros(0, bool)
        rates = np.zeros(instance.num_flows, dtype=float)
        usage = np.zeros(allocator.num_edges, dtype=float)
        if keep.any():
            usage_per_alpha = np.bincount(
                ee_all[keep],
                weights=remaining[ef_all[keep]],
                minlength=allocator.num_edges,
            )
            loaded = usage_per_alpha > RATE_TOL
            with np.errstate(divide="ignore"):
                alpha = max(
                    float(np.min(residual[loaded] / usage_per_alpha[loaded])), 0.0
                )
            if alpha > RATE_TOL:
                active = cand[remaining[cand] > RATE_TOL]
                rates[active] = alpha * remaining[active]
                usage = alpha * usage_per_alpha
        return rates, usage
    positions = np.nonzero(np.isin(allocator._inc_flows, cand))[0]
    alloc = allocator._single_path_core(cand, positions, remaining, residual)
    rates = np.zeros(instance.num_flows, dtype=float)
    rates[alloc.flow_idx] = alloc.flow_rates
    return rates, alloc.usage


def free_path_coflow_rates(
    instance: CoflowInstance,
    flow_refs: Sequence[FlowRef],
    remaining: np.ndarray,
    residual: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fastest-completion rates for one coflow in the free path model.

    Solves the max-concurrent-flow LP: maximise ``alpha`` such that routing
    ``alpha * remaining_f`` units per unit time for every unfinished flow *f*
    of the coflow is a feasible multicommodity flow within the residual
    capacities.

    Returns ``(rates, per_flow_edge_rates, edge_usage)``.
    """
    allocator = get_rate_allocator(instance)
    cand = np.array([r.global_index for r in flow_refs], dtype=np.int64)
    alloc = allocator._free_path_core(
        cand, remaining, residual, {r.global_index: r for r in flow_refs}
    )
    rates = np.zeros(instance.num_flows, dtype=float)
    flow_edge_rates = np.zeros((instance.num_flows, allocator.num_edges), dtype=float)
    rates[alloc.flow_idx] = alloc.flow_rates
    if alloc.edge_rates is not None and alloc.flow_idx.size:
        flow_edge_rates[alloc.flow_idx] = alloc.edge_rates
    usage = alloc.usage
    return rates, flow_edge_rates, usage


def allocate_rates(
    instance: CoflowInstance,
    remaining: np.ndarray,
    coflow_priority: Sequence[int],
    *,
    active_coflows: Optional[Sequence[int]] = None,
) -> RateAllocation:
    """Greedy, priority-ordered rate allocation (one simulator round).

    Parameters
    ----------
    instance:
        The scheduling instance (model decides the allocation primitive).
    remaining:
        Remaining demand of every flow (global flow index).
    coflow_priority:
        Coflow indices from highest to lowest priority.
    active_coflows:
        Coflows currently allowed to transmit (released and unfinished);
        defaults to every coflow in *coflow_priority*.
    """
    allocator = get_rate_allocator(instance)
    graph = instance.graph
    residual = graph.capacity_vector()
    rates = np.zeros(instance.num_flows, dtype=float)
    edge_rates = (
        np.zeros((instance.num_flows, graph.num_edges), dtype=float)
        if allocator.free_path
        else None
    )
    active_set = set(active_coflows if active_coflows is not None else coflow_priority)

    for j in coflow_priority:
        if j not in active_set:
            continue
        alloc = allocator.coflow_allocation(j, remaining, residual)
        if alloc.flow_idx.size:
            rates[alloc.flow_idx] = alloc.flow_rates
            if edge_rates is not None and alloc.edge_rates is not None:
                edge_rates[alloc.flow_idx] += alloc.edge_rates
        residual = np.clip(residual - alloc.usage, 0.0, None)
    return RateAllocation(rates=rates, edge_rates=edge_rates, residual_capacity=residual)


def max_concurrent_rate(
    instance: CoflowInstance, coflow_index: int, remaining: Optional[np.ndarray] = None
) -> float:
    """Largest ``alpha`` such that the coflow can ship ``alpha`` of its remaining
    demand per unit time when it has the whole network to itself."""
    return get_rate_allocator(instance).max_concurrent_rate(coflow_index, remaining)


def coflow_standalone_time(
    instance: CoflowInstance, coflow_index: int, remaining: Optional[np.ndarray] = None
) -> float:
    """Minimum time for the coflow to finish alone on the empty network.

    This is Terra's per-coflow completion-time estimate: the reciprocal of
    the maximum concurrent rate.  Returns 0 when the coflow has no remaining
    demand.  Results are memoized per (coflow, residual-capacity signature,
    remaining-demand signature) on the instance's allocator, so the repeated
    LP families of Terra and the greedy baselines are solved once.
    """
    alpha = max_concurrent_rate(instance, coflow_index, remaining)
    if np.isinf(alpha):
        return 0.0
    if alpha <= RATE_TOL:
        raise ValueError(
            f"coflow {coflow_index} cannot make progress on the network"
        )
    return 1.0 / alpha
