"""Loop-based reference implementations of the simulator hot path.

This module preserves the original (pre-optimization) per-event rate
allocation and simulator loop of :mod:`repro.sim.rate_allocation` /
:mod:`repro.sim.simulator` verbatim.  Like
:mod:`repro.core.timeindexed_reference` it serves two purposes:

1. **Equivalence oracle** — the regression tests assert that the
   incremental simulator reproduces the reference event-for-event (same
   event count, same piecewise-constant rates, same completion times).
2. **Benchmark baseline** — ``repro bench`` measures events/sec of the
   optimized simulator against this implementation in the same run.

Not part of the public API; use :func:`repro.sim.simulate_priority_schedule`
everywhere else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coflow.instance import CoflowInstance, FlowRef, TransmissionModel
from repro.lp.model import ConstraintSense, LinearProgram
from repro.network.churn import ChurnSchedule
from repro.lp.solver import solve_lp
from repro.sim.rate_allocation import RATE_TOL, RateAllocation
from repro.sim.simulator import (
    MAX_EVENTS_FACTOR,
    FlowState,
    PriorityFunction,
    SimulationResult,
    TimelineEntry,
    _coflow_release_times,
)


def _path_edge_indices(instance: CoflowInstance, ref: FlowRef) -> List[int]:
    edge_index = instance.graph.edge_index()
    return [edge_index[e] for e in ref.flow.path_edges()]


def single_path_coflow_rates_reference(
    instance: CoflowInstance,
    flow_refs: Sequence[FlowRef],
    remaining: np.ndarray,
    residual: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Loop-based fastest-completion rates along pinned paths."""
    num_edges = instance.graph.num_edges
    usage_per_alpha = np.zeros(num_edges, dtype=float)
    for ref in flow_refs:
        rem = remaining[ref.global_index]
        if rem <= RATE_TOL:
            continue
        for e in _path_edge_indices(instance, ref):
            usage_per_alpha[e] += rem
    rates = np.zeros(instance.num_flows, dtype=float)
    edge_usage = np.zeros(num_edges, dtype=float)
    loaded = usage_per_alpha > RATE_TOL
    if not loaded.any():
        return rates, edge_usage
    with np.errstate(divide="ignore"):
        alpha = float(np.min(residual[loaded] / usage_per_alpha[loaded]))
    alpha = max(alpha, 0.0)
    if alpha <= RATE_TOL:
        return rates, edge_usage
    for ref in flow_refs:
        rem = remaining[ref.global_index]
        if rem <= RATE_TOL:
            continue
        rate = alpha * rem
        rates[ref.global_index] = rate
        for e in _path_edge_indices(instance, ref):
            edge_usage[e] += rate
    return rates, edge_usage


def free_path_coflow_rates_reference(
    instance: CoflowInstance,
    flow_refs: Sequence[FlowRef],
    remaining: np.ndarray,
    residual: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Loop-assembled max-concurrent-flow LP for one coflow."""
    graph = instance.graph
    num_edges = graph.num_edges
    active = [r for r in flow_refs if remaining[r.global_index] > RATE_TOL]
    rates = np.zeros(instance.num_flows, dtype=float)
    flow_edge_rates = np.zeros((instance.num_flows, num_edges), dtype=float)
    edge_usage = np.zeros(num_edges, dtype=float)
    if not active:
        return rates, flow_edge_rates, edge_usage

    lp = LinearProgram(name="max-concurrent-flow")
    alpha_block = lp.add_variables("alpha", 1, lower=0.0)
    alpha_idx = int(alpha_block.indices()[0])
    y_block = lp.add_variables("y", len(active) * num_edges, lower=0.0)
    y_idx = y_block.reshape(len(active), num_edges)
    lp.set_objective_coefficient(alpha_idx, -1.0)

    edge_index = graph.edge_index()
    nodes = graph.nodes
    out_edges = {n: [edge_index[e] for e in graph.out_edges(n)] for n in nodes}
    in_edges = {n: [edge_index[e] for e in graph.in_edges(n)] for n in nodes}

    for a, ref in enumerate(active):
        src, dst = ref.flow.source, ref.flow.sink
        rem = float(remaining[ref.global_index])
        for e in in_edges[src]:
            lp.fix_variable(int(y_idx[a, e]), 0.0)
        for e in out_edges[dst]:
            lp.fix_variable(int(y_idx[a, e]), 0.0)
        src_out = out_edges[src]
        dst_in = in_edges[dst]
        lp.add_constraint(
            list(y_idx[a, src_out]) + [alpha_idx],
            [1.0] * len(src_out) + [-rem],
            ConstraintSense.EQUAL,
            0.0,
        )
        lp.add_constraint(
            list(y_idx[a, dst_in]) + [alpha_idx],
            [1.0] * len(dst_in) + [-rem],
            ConstraintSense.EQUAL,
            0.0,
        )
        for node in nodes:
            if node in (src, dst):
                continue
            node_in = in_edges[node]
            node_out = out_edges[node]
            if not node_in and not node_out:
                continue
            lp.add_constraint(
                list(y_idx[a, node_in]) + list(y_idx[a, node_out]),
                [1.0] * len(node_in) + [-1.0] * len(node_out),
                ConstraintSense.EQUAL,
                0.0,
            )
    for e in range(num_edges):
        lp.add_constraint(
            y_idx[:, e],
            np.ones(len(active)),
            ConstraintSense.LESS_EQUAL,
            float(max(residual[e], 0.0)),
        )

    result = solve_lp(lp, require_optimal=True)
    alpha = result.value(alpha_idx)
    if alpha <= RATE_TOL:
        return rates, flow_edge_rates, edge_usage
    y_values = result.values(y_idx)
    for a, ref in enumerate(active):
        rem = float(remaining[ref.global_index])
        rates[ref.global_index] = alpha * rem
        flow_edge_rates[ref.global_index] = y_values[a]
        edge_usage += y_values[a]
    return rates, flow_edge_rates, edge_usage


def allocate_rates_reference(
    instance: CoflowInstance,
    remaining: np.ndarray,
    coflow_priority: Sequence[int],
    *,
    active_coflows: Optional[Sequence[int]] = None,
    capacity: Optional[np.ndarray] = None,
) -> RateAllocation:
    """Greedy priority-ordered allocation, recomputed from scratch.

    *capacity* overrides the graph's base capacity vector — used by the
    churn-aware simulator loop to allocate against a degraded network.
    """
    graph = instance.graph
    residual = graph.capacity_vector() if capacity is None else capacity.copy()
    rates = np.zeros(instance.num_flows, dtype=float)
    edge_rates = (
        np.zeros((instance.num_flows, graph.num_edges), dtype=float)
        if instance.model is TransmissionModel.FREE_PATH
        else None
    )
    active_set = set(active_coflows if active_coflows is not None else coflow_priority)

    flows_by_coflow: Dict[int, List[FlowRef]] = {}
    for ref in instance.flow_refs():
        flows_by_coflow.setdefault(ref.coflow_index, []).append(ref)

    for j in coflow_priority:
        if j not in active_set:
            continue
        refs = flows_by_coflow.get(j, [])
        if not refs:
            continue
        if instance.model is TransmissionModel.FREE_PATH:
            coflow_rates, coflow_edge_rates, usage = free_path_coflow_rates_reference(
                instance, refs, remaining, residual
            )
            if edge_rates is not None:
                edge_rates += coflow_edge_rates
        else:
            coflow_rates, usage = single_path_coflow_rates_reference(
                instance, refs, remaining, residual
            )
        rates += coflow_rates
        residual = np.clip(residual - usage, 0.0, None)
    return RateAllocation(rates=rates, edge_rates=edge_rates, residual_capacity=residual)


def fifo_priority_reference(
    time: float, flow_states: Sequence[FlowState], instance: CoflowInstance
) -> List[int]:
    """Original FIFO priority (recomputes the release vector per event)."""
    release = np.full(instance.num_coflows, np.inf)
    for ref in instance.flow_refs():
        release[ref.coflow_index] = min(release[ref.coflow_index], ref.release_time)
    return sorted(range(instance.num_coflows), key=lambda j: (release[j], j))


def srtf_priority_reference(instance: CoflowInstance, standalone: np.ndarray):
    """Original Terra/SEBF-style priority built on per-state Python loops."""

    def priority(
        time: float, flow_states: Sequence[FlowState], inst: CoflowInstance
    ) -> List[int]:
        total = np.zeros(inst.num_coflows, dtype=float)
        left = np.zeros(inst.num_coflows, dtype=float)
        for state in flow_states:
            total[state.coflow_index] += state.demand
            left[state.coflow_index] += max(state.remaining, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(total > 0, left / total, 0.0)
        remaining_time = fraction * standalone
        return sorted(
            range(inst.num_coflows),
            key=lambda j: (remaining_time[j], standalone[j], j),
        )

    return priority


def standalone_times_reference(instance: CoflowInstance) -> np.ndarray:
    """Terra's first LP family solved with the loop-based primitives."""
    residual = instance.graph.capacity_vector()
    demands = instance.demands()
    times = np.zeros(instance.num_coflows, dtype=float)
    for j in range(instance.num_coflows):
        refs = instance.flows_of(j)
        if instance.model is TransmissionModel.FREE_PATH:
            rates, _, _ = free_path_coflow_rates_reference(
                instance, refs, demands, residual
            )
        else:
            rates, _ = single_path_coflow_rates_reference(
                instance, refs, demands, residual
            )
        alphas = [
            rates[r.global_index] / demands[r.global_index]
            for r in refs
            if demands[r.global_index] > RATE_TOL
        ]
        alpha = min(alphas) if alphas else float("inf")
        times[j] = 0.0 if np.isinf(alpha) else 1.0 / alpha
    return times


def simulate_priority_schedule_reference(
    instance: CoflowInstance,
    priority_fn: PriorityFunction,
    *,
    record_timeline: bool = False,
    max_time: Optional[float] = None,
    churn: Optional[ChurnSchedule] = None,
) -> SimulationResult:
    """The original event loop: full re-allocation at every event.

    *churn* mirrors :func:`repro.sim.simulate_priority_schedule` so the
    equivalence tests can compare both loops under dynamic capacity too.
    """
    flow_states = [
        FlowState(
            global_index=ref.global_index,
            coflow_index=ref.coflow_index,
            demand=ref.demand,
            remaining=ref.demand,
            release_time=ref.release_time,
        )
        for ref in instance.flow_refs()
    ]
    num_flows = len(flow_states)
    num_coflows = instance.num_coflows
    coflow_release = _coflow_release_times(instance)
    remaining = np.array([s.remaining for s in flow_states], dtype=float)
    flow_release = np.array([s.release_time for s in flow_states], dtype=float)
    flow_completion = np.zeros(num_flows, dtype=float)
    finished_flows = np.zeros(num_flows, dtype=bool)

    if churn is not None and not churn.events:
        churn = None
    if churn is not None:
        churn.validate_for(instance.graph)

    if max_time is None:
        max_time = float(
            instance.max_release_time()
            + instance.total_demand() / instance.graph.min_capacity()
            + num_flows
            + 10.0
        )
        if churn is not None:
            max_time = churn.horizon(max_time)

    time = 0.0
    timeline: List[TimelineEntry] = []
    churn_events = len(churn.events) if churn is not None else 0
    max_events = MAX_EVENTS_FACTOR * (num_flows + num_coflows + 1 + churn_events)
    events = 0

    while not finished_flows.all():
        events += 1
        if events > max_events:
            raise RuntimeError(
                "simulator exceeded its event budget; the priority function "
                "may be starving some coflow"
            )
        released_flows = (flow_release <= time + 1e-12) & (~finished_flows)
        active_coflows = sorted(
            {flow_states[f].coflow_index for f in np.nonzero(released_flows)[0]}
        )
        if not active_coflows:
            future = flow_release[(~finished_flows) & (flow_release > time + 1e-12)]
            if future.size == 0:
                raise RuntimeError("no active coflows and no future releases")
            time = float(future.min())
            continue

        capacity_now = (
            churn.capacity_vector_at(instance.graph, time)
            if churn is not None
            else instance.graph.capacity_vector()
        )
        order = list(priority_fn(time, flow_states, instance))
        seen = set(order)
        order.extend(j for j in range(num_coflows) if j not in seen)
        allocation = allocate_rates_reference(
            instance,
            remaining,
            order,
            active_coflows=active_coflows,
            capacity=capacity_now,
        )
        rates = allocation.rates
        rates = np.where(released_flows, rates, 0.0)

        with np.errstate(divide="ignore", invalid="ignore"):
            completion_dt = np.where(
                rates > RATE_TOL, remaining / np.maximum(rates, RATE_TOL), np.inf
            )
        next_completion = float(completion_dt.min())
        future_releases = flow_release[(~finished_flows) & (flow_release > time + 1e-12)]
        next_release_dt = (
            float(future_releases.min()) - time if future_releases.size else np.inf
        )
        dt = min(next_completion, next_release_dt)
        if churn is not None:
            next_churn = churn.next_event_after(time)
            if next_churn is not None:
                dt = min(dt, next_churn - time)
        if not np.isfinite(dt) or dt <= 0:
            raise RuntimeError(
                f"simulation stalled at time {time:.4f}: no progress possible "
                "(some released flow has rate 0 and no release is pending)"
            )
        if time + dt > max_time:
            raise RuntimeError(
                f"simulation exceeded max_time={max_time}; instance may be "
                "infeasible for the chosen priority function"
            )

        if record_timeline:
            timeline.append(
                TimelineEntry(
                    start=time,
                    end=time + dt,
                    rates=rates.copy(),
                    edge_usage=capacity_now - allocation.residual_capacity,
                )
            )

        transmitted = rates * dt
        remaining = np.clip(remaining - transmitted, 0.0, None)
        time += dt
        newly_finished = (~finished_flows) & (remaining <= RATE_TOL)
        for f in np.nonzero(newly_finished)[0]:
            flow_completion[f] = time
            flow_states[f].completion_time = time
        finished_flows |= newly_finished
        for f, state in enumerate(flow_states):
            state.remaining = float(remaining[f])

    coflow_completion = np.zeros(num_coflows, dtype=float)
    coflow_idx = instance.coflow_of_flow()
    np.maximum.at(coflow_completion, coflow_idx, flow_completion)
    coflow_completion = np.maximum(coflow_completion, coflow_release)

    return SimulationResult(
        instance=instance,
        coflow_completion_times=coflow_completion,
        flow_completion_times=flow_completion,
        timeline=timeline,
        metadata={"events": events, "implementation": "reference"},
    )
