"""Event-driven, continuous-time coflow simulator.

The simulator advances from event to event (a coflow release or a flow
completion), recomputing a priority-ordered rate allocation at every event.
It underlies the Terra baseline (priority = shortest remaining standalone
time), the greedy baselines (FIFO, weighted shortest job first, ...) and the
"run each coflow alone" diagnostics used in examples.

Unlike the LP-based algorithms the simulator is preemptive and works in
continuous time; its output is a set of completion times rather than a
slotted :class:`~repro.schedule.schedule.Schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coflow.instance import CoflowInstance
from repro.sim.rate_allocation import RATE_TOL, allocate_rates

#: Guard against pathological event loops (should never trigger for sane
#: priority functions: each event either releases or finishes something).
MAX_EVENTS_FACTOR = 20


@dataclass
class FlowState:
    """Mutable per-flow simulation state."""

    global_index: int
    coflow_index: int
    demand: float
    remaining: float
    release_time: float
    completion_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.remaining <= RATE_TOL


@dataclass
class TimelineEntry:
    """One simulated interval with constant rates."""

    start: float
    end: float
    rates: np.ndarray

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Output of :func:`simulate_priority_schedule`.

    Attributes
    ----------
    coflow_completion_times:
        Completion time of every coflow (max over its flows).
    flow_completion_times:
        Completion time of every flow.
    timeline:
        The piecewise-constant rate assignment actually simulated; useful
        for plotting and for feasibility checks in tests.
    """

    instance: CoflowInstance
    coflow_completion_times: np.ndarray
    flow_completion_times: np.ndarray
    timeline: List[TimelineEntry] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def weighted_completion_time(self) -> float:
        """The objective ``sum_j w_j C_j``."""
        return float(
            np.dot(self.instance.weights, self.coflow_completion_times)
        )

    @property
    def total_completion_time(self) -> float:
        """Unweighted sum of coflow completion times."""
        return float(self.coflow_completion_times.sum())

    @property
    def makespan(self) -> float:
        return float(self.coflow_completion_times.max(initial=0.0))


#: A priority function maps (simulation time, flow states, instance) to a
#: list of coflow indices ordered from highest to lowest priority.  Only
#: released, unfinished coflows need to be ranked; others are ignored.
PriorityFunction = Callable[[float, Sequence[FlowState], CoflowInstance], Sequence[int]]


def _coflow_release_times(instance: CoflowInstance) -> np.ndarray:
    """Earliest time each coflow may start (min over its flows' release times)."""
    release = np.full(instance.num_coflows, np.inf)
    for ref in instance.flow_refs():
        release[ref.coflow_index] = min(
            release[ref.coflow_index], ref.release_time
        )
    return release


def simulate_priority_schedule(
    instance: CoflowInstance,
    priority_fn: PriorityFunction,
    *,
    record_timeline: bool = False,
    max_time: Optional[float] = None,
) -> SimulationResult:
    """Simulate a priority-driven, work-conserving, preemptive schedule.

    Parameters
    ----------
    instance:
        The coflow instance (model picks the rate-allocation primitive).
    priority_fn:
        Called at every event with the current time and flow states; returns
        coflow indices from highest to lowest priority.  Coflows omitted from
        the returned order are treated as lowest priority (appended in index
        order).
    record_timeline:
        Store the piecewise-constant rate timeline (memory-heavier; used by
        tests and examples).
    max_time:
        Safety cap on simulated time; ``None`` derives a generous bound from
        the instance.

    Returns
    -------
    SimulationResult
    """
    flow_states = [
        FlowState(
            global_index=ref.global_index,
            coflow_index=ref.coflow_index,
            demand=ref.demand,
            remaining=ref.demand,
            release_time=ref.release_time,
        )
        for ref in instance.flow_refs()
    ]
    num_flows = len(flow_states)
    num_coflows = instance.num_coflows
    coflow_release = _coflow_release_times(instance)
    remaining = np.array([s.remaining for s in flow_states], dtype=float)
    flow_release = np.array([s.release_time for s in flow_states], dtype=float)
    flow_completion = np.zeros(num_flows, dtype=float)
    finished_flows = np.zeros(num_flows, dtype=bool)

    if max_time is None:
        # Serial upper bound mirrors suggest_horizon's reasoning.
        max_time = float(
            instance.max_release_time()
            + instance.total_demand() / instance.graph.min_capacity()
            + num_flows
            + 10.0
        )

    time = 0.0
    timeline: List[TimelineEntry] = []
    max_events = MAX_EVENTS_FACTOR * (num_flows + num_coflows + 1)
    events = 0

    while not finished_flows.all():
        events += 1
        if events > max_events:
            raise RuntimeError(
                "simulator exceeded its event budget; the priority function "
                "may be starving some coflow"
            )
        # Which coflows can transmit right now?
        released_flows = (flow_release <= time + 1e-12) & (~finished_flows)
        active_coflows = sorted(
            {flow_states[f].coflow_index for f in np.nonzero(released_flows)[0]}
        )
        if not active_coflows:
            # Jump to the next release event.
            future = flow_release[(~finished_flows) & (flow_release > time + 1e-12)]
            if future.size == 0:
                raise RuntimeError("no active coflows and no future releases")
            time = float(future.min())
            continue

        order = list(priority_fn(time, flow_states, instance))
        seen = set(order)
        order.extend(j for j in range(num_coflows) if j not in seen)
        allocation = allocate_rates(
            instance, remaining, order, active_coflows=active_coflows
        )
        rates = allocation.rates
        # Only released, unfinished flows may have positive rates.
        rates = np.where(released_flows, rates, 0.0)

        # Time to the next completion under these rates.
        with np.errstate(divide="ignore", invalid="ignore"):
            completion_dt = np.where(
                rates > RATE_TOL, remaining / np.maximum(rates, RATE_TOL), np.inf
            )
        next_completion = float(completion_dt.min())
        # Time to the next release of a currently unreleased flow.
        future_releases = flow_release[(~finished_flows) & (flow_release > time + 1e-12)]
        next_release_dt = (
            float(future_releases.min()) - time if future_releases.size else np.inf
        )
        dt = min(next_completion, next_release_dt)
        if not np.isfinite(dt) or dt <= 0:
            raise RuntimeError(
                f"simulation stalled at time {time:.4f}: no progress possible "
                "(some released flow has rate 0 and no release is pending)"
            )
        if time + dt > max_time:
            raise RuntimeError(
                f"simulation exceeded max_time={max_time}; instance may be "
                "infeasible for the chosen priority function"
            )

        if record_timeline:
            timeline.append(TimelineEntry(start=time, end=time + dt, rates=rates.copy()))

        # Advance.
        transmitted = rates * dt
        remaining = np.clip(remaining - transmitted, 0.0, None)
        time += dt
        newly_finished = (~finished_flows) & (remaining <= RATE_TOL)
        for f in np.nonzero(newly_finished)[0]:
            flow_completion[f] = time
            flow_states[f].completion_time = time
        finished_flows |= newly_finished
        for f, state in enumerate(flow_states):
            state.remaining = float(remaining[f])

    coflow_completion = np.zeros(num_coflows, dtype=float)
    coflow_idx = instance.coflow_of_flow()
    np.maximum.at(coflow_completion, coflow_idx, flow_completion)
    # A coflow can never finish before it was released.
    coflow_completion = np.maximum(coflow_completion, coflow_release)

    return SimulationResult(
        instance=instance,
        coflow_completion_times=coflow_completion,
        flow_completion_times=flow_completion,
        timeline=timeline,
        metadata={"events": events},
    )


def fifo_priority(
    time: float, flow_states: Sequence[FlowState], instance: CoflowInstance
) -> List[int]:
    """First-released, first-served priority (ties broken by coflow index)."""
    release = _coflow_release_times(instance)
    return sorted(range(instance.num_coflows), key=lambda j: (release[j], j))


def static_order_priority(order: Sequence[int]) -> PriorityFunction:
    """A priority function that always returns the same fixed order."""
    fixed = list(order)

    def priority(
        time: float, flow_states: Sequence[FlowState], instance: CoflowInstance
    ) -> List[int]:
        return list(fixed)

    return priority
