"""Event-driven, continuous-time coflow simulator.

The simulator advances from event to event (a coflow release or a flow
completion), recomputing a priority-ordered rate allocation at every event.
It underlies the Terra baseline (priority = shortest remaining standalone
time), the greedy baselines (FIFO, weighted shortest job first, ...) and the
"run each coflow alone" diagnostics used in examples.

Unlike the LP-based algorithms the simulator is preemptive and works in
continuous time; its output is a set of completion times rather than a
slotted :class:`~repro.schedule.schedule.Schedule`.
"""

from __future__ import annotations

import time as time_module
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coflow.instance import CoflowInstance
from repro.network.churn import ChurnSchedule
from repro.sim.rate_allocation import (
    RATE_TOL,
    CoflowAllocation,
    get_rate_allocator,
)

#: Guard against pathological event loops (should never trigger for sane
#: priority functions: each event either releases or finishes something).
MAX_EVENTS_FACTOR = 20


@dataclass
class FlowState:
    """Mutable per-flow simulation state."""

    global_index: int
    coflow_index: int
    demand: float
    remaining: float
    release_time: float
    completion_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.remaining <= RATE_TOL


@dataclass
class TimelineEntry:
    """One simulated interval with constant rates.

    ``edge_usage`` is the per-edge capacity the allocator reserved during
    the interval (aligned with ``graph.edge_index()``); recorded so
    feasibility checks — in particular the ``feasibility-under-churn``
    invariant — can compare reservations against the capacity actually
    available at ``start``.  ``None`` when the simulator was run without
    ``record_timeline``-level bookkeeping.
    """

    start: float
    end: float
    rates: np.ndarray
    edge_usage: Optional[np.ndarray] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Output of :func:`simulate_priority_schedule`.

    Attributes
    ----------
    coflow_completion_times:
        Completion time of every coflow (max over its flows).
    flow_completion_times:
        Completion time of every flow.
    timeline:
        The piecewise-constant rate assignment actually simulated; useful
        for plotting and for feasibility checks in tests.
    """

    instance: CoflowInstance
    coflow_completion_times: np.ndarray
    flow_completion_times: np.ndarray
    timeline: List[TimelineEntry] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def weighted_completion_time(self) -> float:
        """The objective ``sum_j w_j C_j``."""
        return float(
            np.dot(self.instance.weights, self.coflow_completion_times)
        )

    @property
    def total_completion_time(self) -> float:
        """Unweighted sum of coflow completion times."""
        return float(self.coflow_completion_times.sum())

    @property
    def makespan(self) -> float:
        return float(self.coflow_completion_times.max(initial=0.0))


#: A priority function maps (simulation time, flow states, instance) to a
#: list of coflow indices ordered from highest to lowest priority.  Only
#: released, unfinished coflows need to be ranked; others are ignored.
PriorityFunction = Callable[[float, Sequence[FlowState], CoflowInstance], Sequence[int]]


def array_priority(fn):
    """Mark a priority function as array-based (hot-path protocol).

    An array-based priority function is called as ``fn(time, remaining,
    instance)`` where *remaining* is the simulator's per-flow remaining
    demand vector (read-only by convention) instead of the list of
    :class:`FlowState` objects.  The simulator then skips the per-event
    Python loop that keeps the ``FlowState.remaining`` mirrors up to date,
    which dominates the event cost for the closed-form single path model.
    """
    fn.supports_arrays = True
    return fn


def _coflow_release_times(instance: CoflowInstance) -> np.ndarray:
    """Earliest time each coflow may start (min over its flows' release times).

    Cached on the instance (the FIFO priority asks at every event).
    """
    return instance.coflow_release_times()


def simulate_priority_schedule(
    instance: CoflowInstance,
    priority_fn: PriorityFunction,
    *,
    record_timeline: bool = False,
    max_time: Optional[float] = None,
    incremental: bool = True,
    churn: Optional[ChurnSchedule] = None,
) -> SimulationResult:
    """Simulate a priority-driven, work-conserving, preemptive schedule.

    Parameters
    ----------
    instance:
        The coflow instance (model picks the rate-allocation primitive).
    priority_fn:
        Called at every event with the current time and flow states; returns
        coflow indices from highest to lowest priority.  Coflows omitted from
        the returned order are treated as lowest priority (appended in index
        order).
    record_timeline:
        Store the piecewise-constant rate timeline (memory-heavier; used by
        tests and examples).  Entries then also carry the per-edge
        ``edge_usage`` the allocator reserved during each interval.
    max_time:
        Safety cap on simulated time; ``None`` derives a generous bound from
        the instance (stretched by the schedule's worst sustained
        degradation when *churn* is given).
    churn:
        Optional :class:`~repro.network.churn.ChurnSchedule`.  Each event
        time becomes a simulation event: the capacity vector is re-read and
        every coflow's allocation is invalidated, so rates re-converge to
        the degraded (or restored) network.  A released flow whose links
        are fully down simply waits — the simulator advances to the next
        churn event instead of declaring a stall.  ``None`` or an empty
        schedule leaves the event loop byte-for-byte on its static path.
    incremental:
        Reuse per-coflow allocations across events (default).  A coflow's
        allocation is provably unchanged when (a) every higher-priority
        coflow kept its allocation, (b) none of its flows completed or got
        released by the event, and (c) all of its unfinished flows are
        released — its flows then drain proportionally, which leaves the
        fastest-completion rates invariant.  Only coflows at and below the
        first changed priority rank are re-allocated; ``incremental=False``
        recomputes every coflow at every event (the pre-optimization
        behaviour, equal event-for-event).

    Returns
    -------
    SimulationResult
    """
    flow_states = [
        FlowState(
            global_index=ref.global_index,
            coflow_index=ref.coflow_index,
            demand=ref.demand,
            remaining=ref.demand,
            release_time=ref.release_time,
        )
        for ref in instance.flow_refs()
    ]
    num_flows = len(flow_states)
    num_coflows = instance.num_coflows
    coflow_release = _coflow_release_times(instance)
    remaining = np.array([s.remaining for s in flow_states], dtype=float)
    flow_release = np.array([s.release_time for s in flow_states], dtype=float)
    flow_completion = np.zeros(num_flows, dtype=float)
    finished_flows = np.zeros(num_flows, dtype=bool)
    # First time each coflow receives a positive rate (NaN = never served,
    # e.g. zero-demand coflows).  This is the evidence the online
    # verification invariants check against release times; the counter lets
    # the hot loop skip the bookkeeping once every coflow has been seen.
    first_service = np.full(num_coflows, np.nan)
    unserved_coflows = num_coflows

    if churn is not None and not churn.events:
        churn = None  # an empty schedule is exactly the static network
    if churn is not None:
        churn.validate_for(instance.graph)

    if max_time is None:
        # Serial upper bound mirrors suggest_horizon's reasoning.
        max_time = float(
            instance.max_release_time()
            + instance.total_demand() / instance.graph.min_capacity()
            + num_flows
            + 10.0
        )
        if churn is not None:
            # Degraded links serve the same demand 1/factor slower, and
            # nothing can be presumed static before the last event.
            max_time = churn.horizon(max_time)

    time = 0.0
    timeline: List[TimelineEntry] = []
    churn_events = len(churn.events) if churn is not None else 0
    max_events = MAX_EVENTS_FACTOR * (num_flows + num_coflows + 1 + churn_events)
    events = 0

    allocator = get_rate_allocator(instance)
    capacity = instance.graph.capacity_vector()
    coflow_idx = instance.coflow_of_flow()
    # Incremental-allocation state: the effective priority sequence of the
    # previous event, the per-coflow allocations it produced, and the set of
    # coflows whose inputs changed since their cached allocation.
    prev_seq: List[int] = []
    alloc_cache: Dict[int, CoflowAllocation] = {}
    dirty = set(range(num_coflows))
    alloc_computed = 0
    alloc_reused = 0
    priority_wants_arrays = bool(getattr(priority_fn, "supports_arrays", False))
    wall_start = time_module.perf_counter()

    while not finished_flows.all():
        events += 1
        if events > max_events:
            raise RuntimeError(
                "simulator exceeded its event budget; the priority function "
                "may be starving some coflow"
            )
        if churn is not None:
            capacity_now = churn.capacity_vector_at(instance.graph, time)
            if not np.array_equal(capacity_now, capacity):
                # Every cached allocation was computed against the old
                # capacities; invalidate them all.
                capacity = capacity_now
                dirty.update(range(num_coflows))
        # Which coflows can transmit right now?
        released_flows = (flow_release <= time + 1e-12) & (~finished_flows)
        active = np.unique(coflow_idx[released_flows])
        if active.size == 0:
            # Jump to the next release event.
            future = flow_release[(~finished_flows) & (flow_release > time + 1e-12)]
            if future.size == 0:
                raise RuntimeError("no active coflows and no future releases")
            time = float(future.min())
            continue
        active_set = set(int(j) for j in active)

        if priority_wants_arrays:
            order = list(priority_fn(time, remaining, instance))
        else:
            order = list(priority_fn(time, flow_states, instance))
        seen = set(order)
        order.extend(j for j in range(num_coflows) if j not in seen)
        effective_seq = [int(j) for j in order if j in active_set]

        # Coflows with a pending (unreleased, unfinished) flow break the
        # proportional-drain invariant and must always be re-allocated.
        pending_mask = (~released_flows) & (~finished_flows)
        pending_coflows = set(np.unique(coflow_idx[pending_mask]).tolist())

        residual = capacity.copy()
        rates = np.zeros(num_flows, dtype=float)
        entry_usage = np.zeros_like(capacity) if record_timeline else None
        chain_clean = incremental
        for rank, j in enumerate(effective_seq):
            if (
                chain_clean
                and rank < len(prev_seq)
                and prev_seq[rank] == j
                and j not in dirty
                and j not in pending_coflows
                and j in alloc_cache
            ):
                alloc = alloc_cache[j]
                alloc_reused += 1
            else:
                chain_clean = False
                alloc = allocator.coflow_allocation(j, remaining, residual)
                alloc_cache[j] = alloc
                dirty.discard(j)
                alloc_computed += 1
            if alloc.flow_idx.size:
                rates[alloc.flow_idx] = alloc.flow_rates
            residual = np.clip(residual - alloc.usage, 0.0, None)
            if entry_usage is not None:
                entry_usage += alloc.usage
        prev_seq = effective_seq
        # Only released, unfinished flows may have positive rates.
        rates = np.where(released_flows, rates, 0.0)
        if unserved_coflows:
            served = rates > RATE_TOL
            if served.any():
                served_coflows = np.unique(coflow_idx[served])
                unseen = served_coflows[np.isnan(first_service[served_coflows])]
                if unseen.size:
                    first_service[unseen] = time
                    unserved_coflows -= int(unseen.size)

        # Time to the next completion under these rates.
        with np.errstate(divide="ignore", invalid="ignore"):
            completion_dt = np.where(
                rates > RATE_TOL, remaining / np.maximum(rates, RATE_TOL), np.inf
            )
        next_completion = float(completion_dt.min())
        # Time to the next release of a currently unreleased flow.
        future_releases = flow_release[(~finished_flows) & (flow_release > time + 1e-12)]
        next_release_dt = (
            float(future_releases.min()) - time if future_releases.size else np.inf
        )
        dt = min(next_completion, next_release_dt)
        if churn is not None:
            # A pending capacity change bounds the constant-rate interval,
            # and lets flows on fully-down links wait instead of stalling.
            next_churn = churn.next_event_after(time)
            if next_churn is not None:
                dt = min(dt, next_churn - time)
        if not np.isfinite(dt) or dt <= 0:
            raise RuntimeError(
                f"simulation stalled at time {time:.4f}: no progress possible "
                "(some released flow has rate 0 and no release is pending)"
            )
        if time + dt > max_time:
            raise RuntimeError(
                f"simulation exceeded max_time={max_time}; instance may be "
                "infeasible for the chosen priority function"
            )

        if record_timeline:
            timeline.append(
                TimelineEntry(
                    start=time,
                    end=time + dt,
                    rates=rates.copy(),
                    edge_usage=entry_usage,
                )
            )

        # Advance.
        transmitted = rates * dt
        remaining = np.clip(remaining - transmitted, 0.0, None)
        previous_time = time
        time += dt
        newly_finished = (~finished_flows) & (remaining <= RATE_TOL)
        for f in np.nonzero(newly_finished)[0]:
            flow_completion[f] = time
            flow_states[f].completion_time = time
        finished_flows |= newly_finished
        if not priority_wants_arrays:
            # The FlowState mirrors only exist for legacy priority functions.
            for f, state in enumerate(flow_states):
                state.remaining = float(remaining[f])

        # Invalidate allocations whose inputs this event changed: coflows
        # that completed a flow, and coflows that gained a released flow.
        crossed_release = (flow_release > previous_time + 1e-12) & (
            flow_release <= time + 1e-12
        )
        changed = newly_finished | crossed_release
        if changed.any():
            dirty.update(np.unique(coflow_idx[changed]).tolist())

    wall_seconds = time_module.perf_counter() - wall_start

    coflow_completion = np.zeros(num_coflows, dtype=float)
    np.maximum.at(coflow_completion, coflow_idx, flow_completion)
    # A coflow can never finish before it was released.
    coflow_completion = np.maximum(coflow_completion, coflow_release)

    return SimulationResult(
        instance=instance,
        coflow_completion_times=coflow_completion,
        flow_completion_times=flow_completion,
        timeline=timeline,
        metadata={
            "events": events,
            "implementation": "incremental" if incremental else "full",
            "first_coflow_service_times": first_service,
            "allocations_computed": alloc_computed,
            "allocations_reused": alloc_reused,
            "seconds": wall_seconds,
            "events_per_sec": events / wall_seconds if wall_seconds > 0 else float("inf"),
        },
    )


def remaining_fraction_priority(
    instance: CoflowInstance,
    standalone: np.ndarray,
    *,
    standalone_tiebreak: bool = False,
) -> PriorityFunction:
    """Shortest-remaining-estimate priority shared by Terra and SEBF.

    A coflow's remaining time is estimated as its standalone completion
    time scaled by the fraction of demand still outstanding.  With
    *standalone_tiebreak* the secondary sort key is the standalone time
    (Terra's SRTF ordering); otherwise ties fall through to the coflow
    index directly (SEBF).
    """
    coflow_idx = instance.coflow_of_flow()
    totals = instance.coflow_total_demands()
    tiebreak = np.arange(instance.num_coflows)

    @array_priority
    def priority(
        time: float, remaining: np.ndarray, inst: CoflowInstance
    ) -> List[int]:
        left = np.bincount(
            coflow_idx, weights=np.maximum(remaining, 0.0), minlength=totals.size
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(totals > 0, left / totals, 0.0)
        remaining_time = fraction * standalone
        # lexsort keys are minor-to-major: this matches the original
        # sorted() tuple orderings of the Terra / SEBF baselines.
        if standalone_tiebreak:
            keys = (tiebreak, standalone, remaining_time)
        else:
            keys = (tiebreak, remaining_time)
        return np.lexsort(keys).tolist()

    return priority


@array_priority
def fifo_priority(
    time: float, flow_states: Sequence[FlowState], instance: CoflowInstance
) -> List[int]:
    """First-released, first-served priority (ties broken by coflow index)."""
    release = _coflow_release_times(instance)
    order = np.lexsort((np.arange(instance.num_coflows), release))
    return order.tolist()


def static_order_priority(order: Sequence[int]) -> PriorityFunction:
    """A priority function that always returns the same fixed order."""
    fixed = list(order)

    @array_priority
    def priority(
        time: float, flow_states: Sequence[FlowState], instance: CoflowInstance
    ) -> List[int]:
        return list(fixed)

    return priority
