"""Continuous-time, flow-level network simulator.

The paper's baselines (Terra's offline SRTF algorithm, and simple greedy
heuristics) do not work with a slotted LP schedule: they repeatedly allocate
*rates* to flows and advance continuous time to the next completion or
release event.  This package provides that substrate:

* :mod:`repro.sim.rate_allocation` — priority-ordered rate allocation for
  both transmission models (per-path bottleneck sharing for the single path
  model, max-concurrent-flow LPs on residual capacity for the free path
  model);
* :mod:`repro.sim.simulator` — the event loop: release events, completion
  events, per-event re-allocation, and the resulting completion times.
"""

from repro.sim.rate_allocation import (
    RateAllocation,
    allocate_rates,
    coflow_standalone_time,
)
from repro.sim.simulator import (
    FlowState,
    SimulationResult,
    TimelineEntry,
    simulate_priority_schedule,
)

__all__ = [
    "RateAllocation",
    "allocate_rates",
    "coflow_standalone_time",
    "FlowState",
    "SimulationResult",
    "TimelineEntry",
    "simulate_priority_schedule",
]
