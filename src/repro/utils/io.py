"""Atomic file writing — the single sanctioned output path.

PR 4's result store established the repository's write discipline: every
output file is produced by writing a temp file *in the destination
directory* and ``os.replace``-ing it over the target, so a killed process
never leaves a half-written file — the file either exists completely or not
at all.  That property is what makes kill-and-resume (sweeps, verify
checkpoints) and concurrent multi-worker stores safe.

This module extracts that logic so *every* writer in the library (result
store, experiment exports, trace/instance serialization, bench / verify /
lint reports) shares one implementation.  ``repro lint`` rule R004 enforces
the discipline mechanically: direct ``open(..., "w")`` / ``write_text``
calls anywhere else in ``src/`` are findings.

JSON payloads additionally pass through :func:`normalize_json`, which
converts numpy scalars and arrays to plain Python values — the library's
"plain JSON at the boundary" rule (lint rule R005): a numpy ``float64``
must never decide how a stored document is rendered.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Mapping, Optional

import numpy as np


def normalize_json(value: object) -> object:
    """Recursively convert *value* into plain JSON-serializable Python.

    numpy scalars become ``int``/``float``/``bool``, numpy arrays become
    (nested) lists, tuples become lists, and mapping keys are coerced to
    ``str`` only when they are numpy scalars (plain non-string keys are left
    for ``json.dump`` to handle).  Anything already JSON-native is returned
    unchanged, so normalizing a normalized document is the identity.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [normalize_json(item) for item in value.tolist()]
    if isinstance(value, Mapping):
        return {
            (
                normalize_json(key)
                if isinstance(key, (np.integer, np.floating, np.bool_))
                else key
            ): normalize_json(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [normalize_json(item) for item in value]
    return value


@contextmanager
def atomic_writer(
    path: str | Path, *, newline: Optional[str] = None
) -> Iterator[IO[str]]:
    """Context manager yielding a text handle that lands atomically.

    The handle writes to a temp file in ``path``'s directory; on clean exit
    the temp file replaces *path* in one ``os.replace`` step (atomic on
    POSIX within a filesystem).  On any exception the temp file is removed
    and *path* is untouched.

    Example
    -------
    >>> import tempfile, pathlib
    >>> target = pathlib.Path(tempfile.mkdtemp()) / "out.txt"
    >>> with atomic_writer(target) as handle:
    ...     _ = handle.write("complete or absent")
    >>> target.read_text()
    'complete or absent'
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", newline=newline) as handle:
            yield handle
        os.replace(tmp, path)
    except BaseException:  # clean up the temp file on *any* interruption
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def scratch_path(*, suffix: str = "", prefix: str = "repro-") -> Iterator[Path]:
    """A throwaway temp-file path, removed on exit no matter what.

    The save→load round-trip helpers (e.g. the trace-replay scenario
    family) need a real filesystem path to exercise serialization; this is
    the sanctioned way to get one.  Keeping the ``tempfile`` primitive here
    rather than at the call sites preserves lint rule R203's invariant:
    raw write primitives appear only inside ``utils/io.py``.
    """
    fd, tmp = tempfile.mkstemp(suffix=suffix, prefix=prefix)
    os.close(fd)
    try:
        yield Path(tmp)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically write *text* to *path* (temp file + rename)."""
    path = Path(path)
    with atomic_writer(path) as handle:
        handle.write(text)
    return path


def exclusive_write_json(path: str | Path, payload: object) -> bool:
    """Atomically create *path* with *payload* iff it does not already exist.

    The claim primitive under the sweep fabric's lease protocol: the
    payload is written completely to a temp file in the destination
    directory, then ``os.link``-ed to *path* — link fails with
    ``FileExistsError`` if another process claimed first, so exactly one
    contender wins and the file is never observable half-written.

    Returns ``True`` if this call created the file, ``False`` if it
    already existed (the caller lost the claim race).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(normalize_json(payload), handle, indent=2)
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        return True
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def atomic_write_json(
    path: str | Path,
    payload: object,
    *,
    indent: Optional[int] = 2,
    sort_keys: bool = False,
) -> Path:
    """Atomically write *payload* as JSON, numpy-normalized first.

    The payload is passed through :func:`normalize_json`, so numpy scalars
    and arrays never reach the encoder — every document this function writes
    is plain JSON that any reader can load without custom hooks.
    """
    path = Path(path)
    document = normalize_json(payload)
    with atomic_writer(path) as handle:
        json.dump(document, handle, indent=indent, sort_keys=sort_keys)
    return path
