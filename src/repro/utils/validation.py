"""Argument-validation helpers.

These raise early, descriptive errors so that malformed instances are caught
at construction time rather than deep inside LP assembly, where the failure
mode would otherwise be an infeasible or unbounded solver status.
"""

from __future__ import annotations

import math
from typing import Any


def check_positive(value: float, name: str) -> float:
    """Ensure *value* is strictly positive and finite."""
    check_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Ensure *value* is non-negative and finite."""
    check_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_finite(value: float, name: str) -> float:
    """Ensure *value* is a finite real number."""
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(as_float) or math.isinf(as_float):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return as_float


def check_probability(value: float, name: str) -> float:
    """Ensure *value* lies in the closed interval [0, 1]."""
    check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    low_open: bool = False,
    high_open: bool = False,
) -> float:
    """Ensure *value* lies in the interval [low, high] (optionally open)."""
    check_finite(value, name)
    low_ok = value > low if low_open else value >= low
    high_ok = value < high if high_open else value <= high
    if not (low_ok and high_ok):
        lo_b = "(" if low_open else "["
        hi_b = ")" if high_open else "]"
        raise ValueError(
            f"{name} must lie in {lo_b}{low}, {high}{hi_b}, got {value!r}"
        )
    return float(value)


def check_type(value: Any, name: str, expected: type) -> Any:
    """Ensure *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be of type {expected.__name__}, got {type(value).__name__}"
        )
    return value
