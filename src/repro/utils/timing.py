"""Lightweight wall-clock instrumentation.

The experiment harness reports LP build and solve times (the paper's
Section 6.1 discusses the LP-size / solution-quality trade-off), so the
library carries a tiny, dependency-free stopwatch rather than pulling in a
profiling framework.

This module is also the library's **only sanctioned wall-clock site**
(lint rule R002): report writers stamp their artifacts through
:func:`report_stamp` / :func:`file_stamp` instead of calling
``datetime.now()`` themselves, so results never depend on the clock
anywhere an algorithm could observe it.  Durations measured with
``time.perf_counter`` (the stopwatch below) are monotonic measurement
metadata, not wall-clock, and are fine anywhere.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Dict, Iterator, TypeVar

T = TypeVar("T")


def report_stamp() -> str:
    """The current wall-clock time as an ISO stamp (``2026-08-07T12:34:56``).

    The single place the library reads the wall clock for *content* — the
    ``created`` field of BENCH / VERIFY / LINT reports and store envelopes.
    Everything else must treat time as an input (release times, seeds) or a
    measurement (``perf_counter`` durations), never as hidden state.
    """
    return datetime.now().isoformat(timespec="seconds")


def wall_seconds() -> float:
    """The wall clock as seconds since the epoch (``time.time()``).

    The sanctioned wall-clock read for **coordination metadata**: lease
    heartbeats and expiry arithmetic in :mod:`repro.fabric.leases` compare
    these stamps to decide whether a worker has crashed.  Like
    :func:`report_stamp`, this never feeds result *content* — who computes
    a unit may depend on the clock, what the unit computes never does.
    """
    return time.time()


def file_stamp() -> str:
    """A filename-safe rendering of :func:`report_stamp` (``20260807-123456``).

    Used for the ``BENCH_<stamp>.json`` / ``VERIFY_<stamp>.json`` /
    ``LINT_<stamp>.json`` report-family filenames.  Derived from
    :func:`report_stamp` so there is exactly one wall-clock read path.
    """
    return report_stamp().replace("-", "").replace(":", "").replace("T", "-")


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("solve"):
    ...     _ = sum(range(1000))
    >>> watch.total("solve") >= 0.0
    True
    """

    durations: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager that adds the elapsed time to bucket *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under *name* (0.0 if never measured)."""
        return self.durations.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times *name* was measured."""
        return self.counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        """Copy of the accumulated durations."""
        return dict(self.durations)

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's buckets into this one."""
        for name, duration in other.durations.items():
            self.durations[name] = self.durations.get(name, 0.0) + duration
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count


def timed(fn: Callable[..., T]) -> Callable[..., tuple[T, float]]:
    """Wrap *fn* so it returns ``(result, elapsed_seconds)``."""

    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        return result, time.perf_counter() - start

    wrapper.__name__ = getattr(fn, "__name__", "timed")
    wrapper.__doc__ = fn.__doc__
    return wrapper
