"""Seeded random-number management.

Every stochastic component of the library (workload generators, the
``lambda`` sampling step of the Stretch algorithm, random path selection)
accepts either an integer seed or a :class:`numpy.random.Generator`.  This
module centralizes the conversion so that experiments are reproducible
bit-for-bit and independent components can draw from statistically
independent streams.

Seed derivation scheme
----------------------
Components that need *named*, order-independent child streams (the scenario
engine derives one stream per ``(family, index)``) must not derive them by
drawing from a shared generator: the derived seed would then depend on how
many values other components drew first, and on the process's import/call
order — which differs between a serial run, a ``ProcessPoolExecutor`` worker
and a pytest worker.  Python's built-in ``hash()`` is also off the table
(string hashing is randomized per process unless ``PYTHONHASHSEED`` is
pinned).

:func:`derive_seed` therefore derives child seeds *statelessly*: the root
seed and every component of the key path are rendered to their canonical
decimal/text form and fed through BLAKE2b (an endianness- and
process-independent hash); the first 8 digest bytes, interpreted big-endian
and truncated to 63 bits, are the child seed.  The same
``(root, *path)`` always yields the same seed, in any process, on any
platform — which is what makes scenario generation bit-reproducible.
:func:`derive_rng` wraps the derived seed in a PCG64 generator.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Union

import numpy as np

#: Anything accepted as a source of randomness by public APIs.
RandomSource = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(source: RandomSource = None) -> np.random.Generator:
    """Coerce *source* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    source:
        ``None`` (fresh nondeterministic generator), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    return np.random.default_rng(source)


def spawn_rng(source: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive *count* independent generators from a single source.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent regardless of how many values are drawn from
    each.

    Parameters
    ----------
    source:
        Seed, sequence or generator to derive from.
    count:
        Number of child generators to create.  Must be positive.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if isinstance(source, np.random.SeedSequence):
        seq = source
    elif isinstance(source, np.random.Generator):
        # Derive a seed sequence from the generator's own bit stream so the
        # children are reproducible given the generator state.
        seq = np.random.SeedSequence(int(source.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(source)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(root: int, *path: Union[str, int]) -> int:
    """Derive a child seed from *root* and a structured key *path*.

    The derivation is stateless and bit-reproducible across processes and
    platforms (see the module docstring for the scheme).  Typical use::

        seed = derive_seed(2026, "zipf-sizes", 3)   # family "zipf-sizes", scenario 3
        rng = derive_rng(2026, "zipf-sizes", 3)     # the corresponding generator

    Parameters
    ----------
    root:
        The experiment's root seed (any Python int, may be negative).
    path:
        Any mix of strings and ints naming the child stream.  Paths are
        unambiguous: components are length-prefixed before hashing, so
        ``("ab", "c")`` and ``("a", "bc")`` derive different seeds.

    Returns
    -------
    int
        A seed in ``[0, 2**63)``, suitable for :func:`as_generator` and
        ``numpy.random.SeedSequence``.
    """
    digest = hashlib.blake2b(digest_size=8)
    root_bytes = str(int(root)).encode("utf-8")
    digest.update(str(len(root_bytes)).encode("ascii") + b":" + root_bytes)
    for part in path:
        if isinstance(part, bool) or not isinstance(part, (str, int)):
            raise TypeError(
                f"seed path components must be str or int, got {part!r}"
            )
        rendered = (
            ("i" + str(part)) if isinstance(part, int) else ("s" + part)
        ).encode("utf-8")
        digest.update(str(len(rendered)).encode("ascii") + b":" + rendered)
    return int.from_bytes(digest.digest(), "big") & (2**63 - 1)


def derive_rng(root: int, *path: Union[str, int]) -> np.random.Generator:
    """A PCG64 generator seeded with :func:`derive_seed` of the same arguments."""
    return np.random.default_rng(derive_seed(root, *path))


def stream_seeds(source: RandomSource, count: int) -> list[int]:
    """Return *count* reproducible integer seeds derived from *source*."""
    rng = as_generator(source)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]


def iter_generators(source: RandomSource) -> Iterator[np.random.Generator]:
    """Yield an endless stream of independent generators derived from *source*."""
    if isinstance(source, np.random.SeedSequence):
        seq = source
    else:
        rng = as_generator(source)
        seq = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    while True:
        (child,) = seq.spawn(1)
        yield np.random.default_rng(child)


def sample_lambda(rng: RandomSource = None, size: Optional[int] = None):
    """Sample from the Stretch algorithm's stretching-factor distribution.

    The paper (Section 4.1) draws ``lambda`` from the density
    ``f(v) = 2 v`` on ``(0, 1)``.  Its CDF is ``F(v) = v**2``, so inverse
    transform sampling gives ``lambda = sqrt(U)`` for ``U ~ Uniform(0, 1)``.

    Parameters
    ----------
    rng:
        Random source.
    size:
        ``None`` for a single float, otherwise an array of that length.
    """
    gen = as_generator(rng)
    u = gen.uniform(0.0, 1.0, size=size)
    return np.sqrt(u)
