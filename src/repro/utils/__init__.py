"""Shared utilities for the coflow-scheduling reproduction.

This package holds small, dependency-free helpers used throughout the
library: seeded random-number management (:mod:`repro.utils.rng`),
wall-clock timing (:mod:`repro.utils.timing`), and argument validation
(:mod:`repro.utils.validation`).
"""

from repro.utils.rng import RandomSource, derive_rng, derive_seed, spawn_rng
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "RandomSource",
    "derive_rng",
    "derive_seed",
    "spawn_rng",
    "Stopwatch",
    "timed",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
