"""Shared utilities for the coflow-scheduling reproduction.

This package holds small, dependency-free helpers used throughout the
library: seeded random-number management (:mod:`repro.utils.rng`),
wall-clock timing and report stamping (:mod:`repro.utils.timing`), atomic
file writing (:mod:`repro.utils.io`), and argument validation
(:mod:`repro.utils.validation`).
"""

from repro.utils.io import (
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
    normalize_json,
)
from repro.utils.rng import RandomSource, derive_rng, derive_seed, spawn_rng
from repro.utils.timing import Stopwatch, file_stamp, report_stamp, timed
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "RandomSource",
    "derive_rng",
    "derive_seed",
    "spawn_rng",
    "Stopwatch",
    "timed",
    "report_stamp",
    "file_stamp",
    "atomic_writer",
    "atomic_write_text",
    "atomic_write_json",
    "normalize_json",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
