"""Shared utilities for the coflow-scheduling reproduction.

This package holds small, dependency-free helpers used throughout the
library: seeded random-number management (:mod:`repro.utils.rng`),
wall-clock timing and report stamping (:mod:`repro.utils.timing`), atomic
file writing (:mod:`repro.utils.io`), bounded deterministic retrying
(:mod:`repro.utils.retry`), and argument validation
(:mod:`repro.utils.validation`).
"""

from repro.utils.io import (
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
    exclusive_write_json,
    normalize_json,
)
from repro.utils.retry import SOLVER_FAILURES, Backoff, retry_call
from repro.utils.rng import RandomSource, derive_rng, derive_seed, spawn_rng
from repro.utils.timing import (
    Stopwatch,
    file_stamp,
    report_stamp,
    timed,
    wall_seconds,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "RandomSource",
    "derive_rng",
    "derive_seed",
    "spawn_rng",
    "Stopwatch",
    "timed",
    "report_stamp",
    "file_stamp",
    "wall_seconds",
    "atomic_writer",
    "atomic_write_text",
    "atomic_write_json",
    "exclusive_write_json",
    "normalize_json",
    "Backoff",
    "SOLVER_FAILURES",
    "retry_call",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
