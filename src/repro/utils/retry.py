"""The failure-discipline layer: bounded retries with deterministic backoff.

PR 3's verification harness established *which* exceptions count as a
solver failure (the :data:`SOLVER_FAILURES` tuple — the failure modes an
LP backend or baseline can plausibly raise, deliberately not a broad
``except Exception``).  This module makes that tuple the canonical,
shared definition and adds the *policy* for surviving transient members
of it: a :class:`Backoff` schedule with **seeded jitter** — the jitter is
derived statelessly via :func:`repro.utils.rng.derive_seed` from the
policy's seed and the caller's retry path, never from raw entropy, so a
retried run sleeps the same amounts in any process (R001-clean).

This module is also the library's **only sanctioned sleep site** (lint
rule R009): ad-hoc ``time.sleep`` calls and hand-rolled retry loops
elsewhere in ``src/`` are findings.  Anything that needs to pause —
worker poll loops, chaos stalls, retry waits — goes through
:meth:`Backoff.sleep`, so every delay in the library is bounded,
enumerable and deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

from repro.utils.rng import derive_rng

T = TypeVar("T")

#: What counts as an algorithm/LP *failure* during scenario or sweep
#: execution: the failure modes a solver or baseline can plausibly raise.
#: Callers record or retry these instead of aborting the whole run.
#: Deliberately a tuple, not a broad ``except Exception`` — a
#: ``KeyboardInterrupt``, assertion failure or typo-level ``NameError``
#: must still abort.  (Canonical home of the tuple PR 3 introduced in
#: ``scenarios/verify.py``, which now re-exports it.)
SOLVER_FAILURES: Tuple[Type[BaseException], ...] = (
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    ArithmeticError,
    RuntimeError,
    NotImplementedError,
    MemoryError,
    OSError,
)


@dataclass(frozen=True)
class Backoff:
    """A deterministic truncated-exponential backoff schedule.

    ``delay(attempt)`` grows as ``base * factor**attempt`` capped at
    ``max_delay``; a symmetric ``jitter`` fraction is applied on top, drawn
    from a stream derived statelessly from ``(seed, "backoff", *path,
    attempt)`` — the same attempt of the same retry path always sleeps the
    same amount, in any process (no raw entropy, lint rule R001).

    Attributes
    ----------
    retries:
        Additional attempts after the first (``retries=2`` → at most three
        calls).  ``0`` disables retrying.
    base:
        First retry delay in seconds (``0.0`` → no sleeping, useful in
        tests).
    factor:
        Exponential growth factor between attempts.
    max_delay:
        Upper bound on any single delay, pre-jitter.
    jitter:
        Relative jitter amplitude in ``[0, 1)``: the delay is scaled by a
        factor uniform in ``[1 - jitter, 1 + jitter]``.
    seed:
        Root seed of the jitter stream.
    """

    retries: int = 2
    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base < 0 or self.max_delay < 0:
            raise ValueError("base and max_delay must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, *path: Union[str, int]) -> float:
        """Seconds to wait after failed *attempt* (0-based), jittered.

        The jitter stream is addressed by ``(seed, "backoff", *path,
        attempt)`` so two units retrying concurrently (different *path*)
        de-synchronize, while the same unit re-run sleeps identically.
        """
        raw = min(self.base * self.factor**attempt, self.max_delay)
        if raw <= 0.0:
            return 0.0
        if self.jitter <= 0.0:
            return raw
        u = float(derive_rng(self.seed, "backoff", *path, attempt).random())
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))

    def sleep(self, attempt: int, *path: Union[str, int]) -> float:
        """Sleep for :meth:`delay` seconds and return the amount slept.

        The library's single sanctioned ``time.sleep`` call site (lint
        rule R009); worker poll loops and chaos stalls route through here
        so every pause is bounded and derived from a declared policy.
        """
        seconds = self.delay(attempt, *path)
        if seconds > 0.0:
            time.sleep(seconds)
        return seconds


def retry_call(
    fn: Callable[[int], T],
    *,
    exceptions: Tuple[Type[BaseException], ...] = SOLVER_FAILURES,
    backoff: Optional[Backoff] = None,
    path: Tuple[Union[str, int], ...] = (),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``fn(attempt)`` with bounded, deterministically-jittered retries.

    Parameters
    ----------
    fn:
        The operation; receives the 0-based attempt index so callers (and
        the chaos harness) can make behavior attempt-dependent.
    exceptions:
        Exception types considered transient (default
        :data:`SOLVER_FAILURES`).  Anything else propagates immediately.
    backoff:
        Retry schedule (default ``Backoff()``).  ``retries=0`` means a
        single attempt.
    path:
        Address of this retry site in the jitter stream (e.g. the unit's
        store key), so concurrent retries de-synchronize deterministically.
    on_retry:
        Optional observer called with ``(attempt, exception)`` before each
        sleep — used by the sweep to log retried units.

    Returns
    -------
    The first successful result; re-raises the last exception once
    ``backoff.retries`` is exhausted (the caller decides whether that is a
    poison unit to quarantine or a crash to surface).
    """
    policy = backoff if backoff is not None else Backoff()
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except exceptions as exc:
            if attempt >= policy.retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            policy.sleep(attempt, *path)
            attempt += 1
