"""The multi-worker sweep loop: claim, solve, heartbeat, steal, merge.

:func:`run_worker` is what ``repro sweep SPEC --worker ID`` executes — one
member of a fleet cooperating on a single sweep through nothing but the
shared store directory:

1. **Claim.**  The worker scans the sweep's deterministic chunk list (the
   same :func:`~repro.experiments.sweep.shard_units` layout every worker
   computes independently) for a chunk with unresolved units, and takes
   its lease through :class:`~repro.fabric.leases.LeaseManager` — fresh
   chunks by exclusive create, crashed owners' chunks by expired-lease
   reclaim.
2. **Solve.**  The chunk's missing units run through the same
   retry-disciplined executor as a single-process sweep
   (:func:`~repro.experiments.sweep._solve_unit_tasks`), heartbeating the
   lease as each unit resolves.  Results land with first-write-wins
   :meth:`~repro.store.ResultStore.put`; terminal failures become
   quarantine records.  Unit seeds are address-derived, so *which* worker
   solves a unit can never change its bytes.
3. **Steal.**  A worker that finds every unresolved chunk actively leased
   does not idle: it re-shards the *oldest* still-leased straggler chunk's
   remaining units and solves the back half tail-first, approaching the
   owner from the opposite end.  Any overlap is absorbed by content
   addressing as counted benign races — duplicated effort, never
   divergent results.
4. **Merge.**  Each worker leaves a report under
   ``<store>/sweeps/<id>/workers/``; whichever worker observes full
   coverage last writes the merged manifest, indistinguishable from the
   manifest of a single-process run.

:func:`launch_workers` is the local supervisor behind
``repro sweep --launch N``: it spawns N worker processes (propagating any
chaos spec through the environment) and waits for the fleet to drain.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import repro
from repro.experiments.sweep import (
    SWEEP_SCHEMA,
    SweepResult,
    SweepSpec,
    SweepUnit,
    _checkpoint_manifest,
    _solve_unit_tasks,
    _unit_config,
    enumerate_units,
    shard_units,
    sweep_status,
)
from repro.fabric.chaos import CHAOS_ENV, ChaosInjector, ChaosSpec
from repro.fabric.leases import LeaseManager
from repro.store import ResultStore
from repro.utils.io import atomic_write_json
from repro.utils.retry import Backoff
from repro.utils.timing import report_stamp


@dataclass
class WorkerReport:
    """What one :func:`run_worker` invocation did."""

    worker_id: str
    chunks_claimed: int = 0
    chunks_completed: int = 0
    steals: int = 0
    units_hit: int = 0
    units_solved: int = 0
    units_failed: int = 0
    races: int = 0
    seconds: float = 0.0
    complete: bool = False  # full sweep coverage observed at exit

    def to_dict(self) -> Dict:
        return {
            "schema": SWEEP_SCHEMA,
            "worker": self.worker_id,
            "chunks_claimed": self.chunks_claimed,
            "chunks_completed": self.chunks_completed,
            "steals": self.steals,
            "units_hit": self.units_hit,
            "units_solved": self.units_solved,
            "units_failed": self.units_failed,
            "races": self.races,
            "seconds": self.seconds,
            "complete": self.complete,
            "created": report_stamp(),
        }


def _resolved(store: ResultStore, unit: SweepUnit) -> bool:
    """Whether *unit* needs no further work from the fleet.

    A stored result resolves a unit; so does a recorded terminal failure —
    the fabric treats quarantined poison units as settled evidence, so one
    pathological LP never wedges the fleet in a retry loop.  (A plain
    single-process re-run still retries them: records are history there.)
    """
    return store.contains(unit.key) or store.get_failure(unit.key) is not None


def _store_results(
    store: ResultStore,
    outcomes: Sequence[Tuple[str, Optional[Dict], Optional[Dict]]],
    report: WorkerReport,
    injector: ChaosInjector,
) -> None:
    for key, payload, failure in outcomes:
        if failure is not None:
            store.put_failure(key, failure)
            report.units_failed += 1
            continue
        store.put(key, payload, kind="solve-report")
        store.clear_failure(key)
        injector.after_store(store.object_path(key), key)
        report.units_solved += 1


def _solve_units(
    spec: SweepSpec,
    instances: List,
    units: Sequence[SweepUnit],
    store: ResultStore,
    report: WorkerReport,
    injector: ChaosInjector,
    backoff: Optional[Backoff],
    on_unit,
) -> None:
    """Solve *units* (grouped by instance/ε for LP sharing) and store them."""
    groups: Dict[Tuple[int, Optional[float]], List[SweepUnit]] = {}
    for unit in units:
        groups.setdefault((unit.instance_index, unit.epsilon), []).append(unit)
    for (instance_index, epsilon), group in groups.items():
        unit_tasks = [
            (unit.key, unit.algorithm, _unit_config(spec, unit.rng_seed, epsilon))
            for unit in group
        ]
        outcomes = _solve_unit_tasks(
            instances[instance_index],
            unit_tasks,
            True,
            backoff,
            injector,
            on_unit=on_unit,
        )
        _store_results(store, outcomes, report, injector)


def _steal_target(
    leases: LeaseManager, unresolved: Sequence[int]
) -> Optional[int]:
    """The oldest still-leased straggler chunk another worker owns."""
    candidates = [
        (lease.heartbeat, chunk)
        for chunk, lease in leases.active_leases()
        if chunk in set(unresolved)
        and lease.worker != leases.worker_id
        and not leases.expired(lease)
    ]
    if not candidates:
        return None
    return min(candidates)[1]


def run_worker(
    spec: SweepSpec,
    store: ResultStore,
    *,
    worker_id: str,
    ttl: float = 30.0,
    backoff: Optional[Backoff] = None,
    chaos: Optional[ChaosSpec] = None,
    poll_seconds: float = 0.2,
    steal: bool = True,
    max_seconds: Optional[float] = None,
) -> WorkerReport:
    """Run one fleet member of *spec* against *store* until coverage.

    Returns when every unit of the sweep is resolved (stored or
    failure-quarantined), or when *max_seconds* elapses.  Safe to run any
    number of workers concurrently on one store — and safe to ``SIGKILL``
    any of them at any moment: at most the killed worker's in-flight chunk
    is re-solved by a survivor after its lease expires.
    """
    started = time.perf_counter()
    instances = [ispec.build() for ispec in spec.instances]
    units = enumerate_units(spec, instances)
    chunks = shard_units(units, spec.num_shards)
    sweep_id = spec.sweep_id()
    leases = LeaseManager(store.root, sweep_id, worker_id, ttl=ttl)
    injector = ChaosInjector(spec=chaos or ChaosSpec(), worker_id=worker_id)
    report = WorkerReport(worker_id=worker_id)
    poller = Backoff(retries=0, base=poll_seconds, factor=1.0, jitter=0.0)

    while True:
        unresolved = [
            index
            for index, chunk in enumerate(chunks)
            if any(not _resolved(store, unit) for unit in chunk)
        ]
        if not unresolved:
            break
        if max_seconds is not None and time.perf_counter() - started > max_seconds:
            break

        claimed: Optional[int] = None
        for index in unresolved:
            if leases.claim(index):
                claimed = index
                break
        if claimed is not None:
            report.chunks_claimed += 1
            # The kill-worker chaos hook: dying here leaves the fresh
            # lease dangling, exactly the crash the reclaim path covers.
            injector.on_claim(report.chunks_completed)
            missing = [u for u in chunks[claimed] if not _resolved(store, u)]
            report.units_hit += len(chunks[claimed]) - len(missing)

            def beat(_key: str, chunk_index: int = claimed) -> None:
                if injector.allow_heartbeat():
                    leases.heartbeat(chunk_index)

            _solve_units(
                spec, instances, missing, store, report, injector, backoff, beat
            )
            report.chunks_completed += 1
            leases.release(claimed)
            continue

        if steal:
            target = _steal_target(leases, unresolved)
            if target is not None:
                remaining = [
                    u for u in chunks[target] if not _resolved(store, u)
                ]
                # Re-shard the straggler: take the back half, tail-first,
                # so thief and owner approach from opposite ends.  Overlap
                # is a counted benign race, not a correctness hazard.
                stolen = list(reversed(remaining[len(remaining) // 2 :]))
                if stolen:
                    report.steals += 1
                    _solve_units(
                        spec,
                        instances,
                        stolen,
                        store,
                        report,
                        injector,
                        backoff,
                        None,
                    )
                    continue
        poller.sleep(0)

    report.races = store.races
    report.seconds = time.perf_counter() - started
    stored = sum(1 for unit in units if store.contains(unit.key))
    report.complete = stored == len(units)

    workers_dir = store.root / "sweeps" / sweep_id / "workers"
    atomic_write_json(workers_dir / f"{worker_id}.json", report.to_dict())

    if all(_resolved(store, unit) for unit in units):
        _write_merged_manifest(spec, store, sweep_id, units, chunks)
    return report


def _write_merged_manifest(
    spec: SweepSpec,
    store: ResultStore,
    sweep_id: str,
    units: List[SweepUnit],
    chunks: List[List[SweepUnit]],
) -> None:
    """Checkpoint the fleet's manifest exactly as a solo run would.

    Statuses and objectives are probed from the store, so the manifest is
    a pure function of coverage — every worker that writes it writes the
    same document, no matter who solved what.
    """
    result = SweepResult(
        spec=spec,
        sweep_id=sweep_id,
        units=units,
        reports={},
        chunks_total=len(chunks),
    )
    for unit in units:
        payload = store.get(unit.key)
        if payload is not None:
            unit.status = "hit"
            unit.objective = payload.get("objective")
            result.hits += 1
        else:
            unit.status = "failed"
            result.failed += 1
    chunk_states = [
        "complete" if all(store.contains(u.key) for u in chunk) else "failed"
        for chunk in chunks
    ]
    _checkpoint_manifest(store, sweep_id, spec, chunk_states, result)
    if result.complete:
        store.put_run("sweep", result.summary())


# --------------------------------------------------------------------------- #
# local supervisor
# --------------------------------------------------------------------------- #
@dataclass
class WorkerExit:
    """Terminal state of one supervised worker process."""

    worker_id: str
    returncode: int
    output: str = ""


def launch_workers(
    spec_path: str | Path,
    store_root: str | Path,
    count: int,
    *,
    ttl: float = 30.0,
    chaos: Optional[ChaosSpec] = None,
    extra_args: Sequence[str] = (),
    timeout: float = 600.0,
) -> List[WorkerExit]:
    """Spawn *count* ``repro sweep --worker`` processes and wait for all.

    Workers are named ``w0..w{count-1}``; the chaos spec (if any) travels
    through :data:`~repro.fabric.chaos.CHAOS_ENV` so per-worker fault
    filters apply inside the children.  The supervisor never restarts a
    dead worker — crash recovery is the *surviving* workers' job (expired
    leases), which is exactly what the chaos smoke asserts.
    """
    if count < 1:
        raise ValueError(f"count must be at least 1, got {count}")
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if chaos:
        env[CHAOS_ENV] = chaos.render()
    procs = []
    for index in range(count):
        command = [
            sys.executable,
            "-m",
            "repro",
            "sweep",
            str(spec_path),
            "--store",
            str(store_root),
            "--worker",
            f"w{index}",
            "--ttl",
            str(ttl),
            *extra_args,
        ]
        procs.append(
            subprocess.Popen(
                command,
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        )
    exits: List[WorkerExit] = []
    for index, proc in enumerate(procs):
        try:
            out, _ = proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
        exits.append(
            WorkerExit(
                worker_id=f"w{index}", returncode=proc.returncode, output=out or ""
            )
        )
    return exits


def merged_status(spec: SweepSpec, store: ResultStore) -> Dict:
    """Fleet-wide view: store coverage plus leases and worker reports."""
    status = sweep_status(spec, store)
    sweep_id = spec.sweep_id()
    probe = LeaseManager(store.root, sweep_id, "status-probe")
    status["leases"] = [
        {
            "chunk": chunk,
            "worker": lease.worker,
            "generation": lease.generation,
            "expired": probe.expired(lease),
        }
        for chunk, lease in probe.active_leases()
    ]
    workers: Dict[str, Dict] = {}
    workers_dir = store.root / "sweeps" / sweep_id / "workers"
    if workers_dir.is_dir():
        for path in sorted(workers_dir.glob("*.json")):
            try:
                workers[path.stem] = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
    status["workers"] = workers
    status["races"] = sum(
        int(entry.get("races", 0)) for entry in workers.values()
    )
    return status
