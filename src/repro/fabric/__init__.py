"""Distributed sweep fabric: leases, workers, fault injection.

Multiple worker processes cooperate on one sweep through nothing but the
shared result-store directory — no daemon, no queue, no lock server:

* :mod:`repro.fabric.leases` — the atomic chunk-claim protocol (exclusive
  creates, heartbeat TTLs, deterministic reclaim arbitration);
* :mod:`repro.fabric.worker` — the claim/solve/steal worker loop
  (``repro sweep --worker``), the local fleet supervisor
  (``repro sweep --launch N``), and merged fleet status;
* :mod:`repro.fabric.chaos` — deterministic fault injection
  (``repro sweep --chaos SPEC``) used to *prove* the recovery paths.

The fabric's contract inherits the sweep orchestrator's: unit bytes are a
function of unit addresses alone, so any worker layout, crash schedule or
steal pattern yields a result set byte-identical to a single-process run.
"""

from repro.fabric.chaos import (
    CHAOS_ENV,
    ChaosFault,
    ChaosInjector,
    ChaosSpec,
    KILLED_EXIT_CODE,
)
from repro.fabric.leases import Lease, LeaseManager, arbitrate
from repro.fabric.worker import (
    WorkerExit,
    WorkerReport,
    launch_workers,
    merged_status,
    run_worker,
)

__all__ = [
    "CHAOS_ENV",
    "KILLED_EXIT_CODE",
    "ChaosFault",
    "ChaosInjector",
    "ChaosSpec",
    "Lease",
    "LeaseManager",
    "arbitrate",
    "WorkerExit",
    "WorkerReport",
    "launch_workers",
    "merged_status",
    "run_worker",
]
