"""Lease-based chunk claims for multi-worker sweeps on shared storage.

The coordination substrate is the filesystem the :class:`~repro.store.
ResultStore` already lives on — no daemon, no lock server.  One lease file
per chunk lives under ``<store>/sweeps/<sweep_id>/leases/chunk-<n>.json``
and moves through three operations:

``claim``
    A **fresh** claim creates the lease file with an exclusive atomic link
    (:func:`repro.utils.io.exclusive_write_json`): when two workers race,
    the filesystem admits exactly one.  A **reclaim** (taking over a chunk
    whose owner crashed — lease expired) bumps the lease's ``generation``
    and lands via temp + ``os.replace``; because a replace can overwrite a
    concurrent replace, every reclaimer *re-reads* the file afterwards and
    applies one deterministic arbitration rule (:func:`arbitrate`): higher
    generation wins, ties break to the lexicographically smaller worker
    id.  All contenders read the same bytes and apply the same rule, so a
    double-claim resolves identically everywhere — in the worst interleaving
    two workers briefly compute the same chunk, which the content-addressed
    store absorbs as counted benign races, never divergent results.

``heartbeat``
    The owner re-stamps the lease periodically (through
    :func:`repro.utils.timing.wall_seconds`, the sanctioned coordination
    clock).  A lease whose stamp is older than the TTL is *expired*: its
    owner is presumed crashed and any worker may reclaim.  Heartbeating
    re-verifies ownership, so a worker that lost its chunk finds out at
    the next beat.

``release``
    Deleting the lease after the chunk's units are safely in the store.
    A crash between store writes and release leaves a dangling lease on a
    complete chunk — harmless, because progress is always measured against
    the store's contents, never against leases.

Who computes a chunk depends on the clock and the race; *what* the chunk
computes never does (unit seeds are address-derived) — the Bobpp-style
determinism contract the sweep orchestrator established.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.utils.io import atomic_write_json, exclusive_write_json
from repro.utils.timing import report_stamp, wall_seconds

LEASE_SCHEMA = 1


@dataclass(frozen=True)
class Lease:
    """One chunk lease as read from disk."""

    chunk: int
    worker: str
    generation: int
    heartbeat: float  # wall_seconds() at the last renewal
    created: str  # report_stamp() of the original claim

    def to_dict(self) -> dict:
        return {
            "schema": LEASE_SCHEMA,
            "chunk": self.chunk,
            "worker": self.worker,
            "generation": self.generation,
            "heartbeat": self.heartbeat,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(
            chunk=int(data["chunk"]),
            worker=str(data["worker"]),
            generation=int(data["generation"]),
            heartbeat=float(data["heartbeat"]),
            created=str(data.get("created", "")),
        )


def arbitrate(a: Lease, b: Lease) -> Lease:
    """The deterministic winner between two competing leases for one chunk.

    Higher generation wins (a reclaim supersedes the claim it expired);
    equal generations break to the lexicographically **smaller** worker
    id.  Pure and total, so every worker that observes both candidates —
    in any order, in any process — names the same winner.
    """
    if a.generation != b.generation:
        return a if a.generation > b.generation else b
    return a if a.worker <= b.worker else b


class LeaseManager:
    """Claims, renews and releases chunk leases for one worker.

    Parameters
    ----------
    root:
        The store root (the directory a :class:`~repro.store.ResultStore`
        was opened on).
    sweep_id:
        The sweep's stable fingerprint — leases live in that sweep's
        directory, next to its manifest.
    worker_id:
        This worker's id.  Must be unique within a sweep; the launch
        supervisor hands out ``w0..wN-1``.
    ttl:
        Seconds without a heartbeat after which a lease counts as expired
        (its owner presumed crashed) and may be reclaimed.
    """

    def __init__(
        self, root: str | Path, sweep_id: str, worker_id: str, *, ttl: float = 30.0
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if not worker_id or "/" in worker_id:
            raise ValueError(f"worker_id must be a non-empty name, got {worker_id!r}")
        self.root = Path(root)
        self.sweep_id = sweep_id
        self.worker_id = worker_id
        self.ttl = float(ttl)
        self.directory = self.root / "sweeps" / sweep_id / "leases"

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def path(self, chunk: int) -> Path:
        return self.directory / f"chunk-{chunk:06d}.json"

    def read(self, chunk: int) -> Optional[Lease]:
        """The current lease on *chunk*, or ``None`` (absent or unreadable).

        An unreadable lease (a half-written or foreign file) is treated as
        absent: the chunk is claimable.  Worst case two workers briefly
        share a chunk — benign, counted races.
        """
        try:
            data = json.loads(self.path(chunk).read_text())
            return Lease.from_dict(data)
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def expired(self, lease: Lease) -> bool:
        """Whether *lease*'s owner has missed its heartbeat window."""
        return wall_seconds() - lease.heartbeat > self.ttl

    def active_leases(self) -> List[Tuple[int, Lease]]:
        """Every readable lease on disk, sorted by chunk index."""
        if not self.directory.is_dir():
            return []
        leases: List[Tuple[int, Lease]] = []
        for path in sorted(self.directory.glob("chunk-*.json")):
            try:
                chunk = int(path.stem.removeprefix("chunk-"))
            except ValueError:
                continue
            lease = self.read(chunk)
            if lease is not None:
                leases.append((chunk, lease))
        return leases

    # ------------------------------------------------------------------ #
    # claiming
    # ------------------------------------------------------------------ #
    def _mine(self, chunk: int, generation: int) -> Lease:
        return Lease(
            chunk=chunk,
            worker=self.worker_id,
            generation=generation,
            heartbeat=wall_seconds(),
            created=report_stamp(),
        )

    def claim(self, chunk: int) -> bool:
        """Try to take the lease on *chunk*; ``True`` iff this worker owns it.

        Fresh chunks are claimed with an exclusive create (at most one
        winner, guaranteed by the filesystem).  A chunk whose lease exists
        but has expired is reclaimed at ``generation + 1``; concurrent
        reclaims are settled by :func:`arbitrate` after a read-back, so
        the loser backs off deterministically.
        """
        current = self.read(chunk)
        if current is None:
            mine = self._mine(chunk, generation=0)
            if exclusive_write_json(self.path(chunk), mine.to_dict()):
                return True
            # Lost the exclusive create; fall through to read the winner.
            current = self.read(chunk)
            if current is None:
                return False  # unreadable competitor: do not fight it
        if current.worker == self.worker_id:
            # Re-entering our own lease (e.g. after a heartbeat refresh).
            return True
        if not self.expired(current):
            return False
        return self._reclaim(chunk, current)

    def _reclaim(self, chunk: int, stale: Lease) -> bool:
        """Take over an expired lease; deterministic on double-reclaim."""
        mine = self._mine(chunk, generation=stale.generation + 1)
        atomic_write_json(self.path(chunk), mine.to_dict())
        landed = self.read(chunk)
        if landed is None:
            return False
        if landed.worker == self.worker_id and landed.generation == mine.generation:
            return True
        # A competing reclaim replaced ours (or raced it): both of us read
        # the same file now, and arbitrate() names one winner.  If that
        # winner is us, rewrite once — the competitor applies the same rule
        # to the same bytes and backs off.
        winner = arbitrate(mine, landed)
        if winner.worker == self.worker_id:
            atomic_write_json(self.path(chunk), mine.to_dict())
            confirmed = self.read(chunk)
            return confirmed is not None and confirmed.worker == self.worker_id
        return False

    # ------------------------------------------------------------------ #
    # renewing / releasing
    # ------------------------------------------------------------------ #
    def heartbeat(self, chunk: int) -> bool:
        """Re-stamp our lease on *chunk*; ``False`` if ownership was lost.

        Losing ownership (a competitor reclaimed after our lease expired
        under a stall) is not an error — the worker may finish the chunk
        anyway and its writes land as counted benign races — but the
        caller learns about it here.
        """
        current = self.read(chunk)
        if current is None or current.worker != self.worker_id:
            return False
        renewed = Lease(
            chunk=chunk,
            worker=self.worker_id,
            generation=current.generation,
            heartbeat=wall_seconds(),
            created=current.created,
        )
        atomic_write_json(self.path(chunk), renewed.to_dict())
        confirmed = self.read(chunk)
        return confirmed is not None and confirmed.worker == self.worker_id

    def release(self, chunk: int) -> None:
        """Drop our lease on *chunk* (no-op if already lost or gone)."""
        current = self.read(chunk)
        if current is None or current.worker != self.worker_id:
            return
        try:
            os.unlink(self.path(chunk))
        except OSError:
            pass
