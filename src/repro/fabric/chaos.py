"""Deterministic fault injection for the sweep fabric.

Every recovery path the fabric promises — crash detection via expired
leases, claim arbitration, bounded retries, poison-unit quarantine,
corruption healing — is only as real as the test that forces it.  This
module injects the faults:

``kill-worker:after=K[,worker=ID]``
    The worker dies (``os._exit(137)``, no cleanup — the in-process
    equivalent of ``SIGKILL``) immediately after *claiming* its next chunk
    once it has completed ``K`` chunks, leaving a dangling lease for the
    survivors to expire and reclaim.

``fail-solve:p=P[,seed=S][,worker=ID]``
    A unit's solve attempt raises :class:`ChaosFault` (a ``RuntimeError``,
    i.e. a member of :data:`~repro.utils.retry.SOLVER_FAILURES`) with
    probability ``p`` — decided by a stream derived statelessly from
    ``(seed, unit key, attempt)``, so a given attempt of a given unit
    fails identically in every process (R001-clean: no raw entropy) and
    retries genuinely re-roll.

``stall-heartbeat[:worker=ID]``
    The worker's heartbeats become no-ops, so its leases expire under it
    while it keeps computing — the straggler/reclaim/benign-race path.

``stall-solve:seconds=S[,worker=ID]``
    Every solve attempt first sleeps ``S`` seconds (through the sanctioned
    :meth:`~repro.utils.retry.Backoff.sleep`), pinning the worker mid-chunk
    so a test can kill it there deterministically.

``corrupt-store:p=P[,seed=S][,worker=ID]``
    After a unit's entry lands in the store, the entry file is truncated
    with probability ``p`` (same stateless derivation) — forcing the next
    reader through the quarantine-and-recompute path.

Faults compose with ``;``:``"kill-worker:after=1,worker=w0;fail-solve:p=0.3"``.
A fault with a ``worker=`` filter applies only to that worker id, so one
member of a fleet can be the designated victim.  The spec travels to
spawned workers through the ``REPRO_CHAOS`` environment variable.

Chaos decides *whether* an attempt fails, *who* dies and *which* bytes rot
— never what a unit computes.  The acceptance criterion of the fabric is
exactly that: under every fault schedule the completed result set is
byte-identical to a fault-free run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from repro.utils.retry import Backoff
from repro.utils.rng import derive_rng

#: Environment variable carrying a chaos spec into worker processes.
CHAOS_ENV = "REPRO_CHAOS"

#: Fault names and the parameters each accepts.
_FAULTS: Dict[str, Tuple[str, ...]] = {
    "kill-worker": ("after", "worker"),
    "fail-solve": ("p", "seed", "worker"),
    "stall-heartbeat": ("worker",),
    "stall-solve": ("seconds", "worker"),
    "corrupt-store": ("p", "seed", "worker"),
}

#: Exit status of a chaos-killed worker (mirrors 128 + SIGKILL).
KILLED_EXIT_CODE = 137


class ChaosFault(RuntimeError):
    """The injected transient solve failure (member of SOLVER_FAILURES)."""


@dataclass(frozen=True)
class Fault:
    """One parsed fault: its name and normalized parameters."""

    name: str
    after: int = 0
    p: float = 0.0
    seed: int = 0
    seconds: float = 0.0
    worker: Optional[str] = None

    def applies_to(self, worker_id: Optional[str]) -> bool:
        """Whether this fault targets the given worker (``None`` = any)."""
        return self.worker is None or self.worker == worker_id

    def render(self) -> str:
        parts = []
        if self.name == "kill-worker":
            parts.append(f"after={self.after}")
        elif self.name in ("fail-solve", "corrupt-store"):
            parts.append(f"p={self.p:g}")
            parts.append(f"seed={self.seed}")
        elif self.name == "stall-solve":
            parts.append(f"seconds={self.seconds:g}")
        if self.worker is not None:
            parts.append(f"worker={self.worker}")
        return self.name + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed ``--chaos`` specification (a tuple of faults)."""

    faults: Tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, text: Optional[str]) -> "ChaosSpec":
        """Parse ``"name:k=v,...;name2:..."`` into a spec (fail-fast)."""
        if not text or not text.strip():
            return cls(())
        faults = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, params_text = chunk.partition(":")
            name = name.strip()
            if name not in _FAULTS:
                raise ValueError(
                    f"unknown chaos fault {name!r}; known faults: "
                    + ", ".join(sorted(_FAULTS))
                )
            params: Dict[str, str] = {}
            if params_text.strip():
                for pair in params_text.split(","):
                    key, sep, value = pair.partition("=")
                    key = key.strip()
                    if not sep or key not in _FAULTS[name]:
                        raise ValueError(
                            f"bad parameter {pair.strip()!r} for chaos fault "
                            f"{name!r}; expected {'/'.join(_FAULTS[name])}=value"
                        )
                    params[key] = value.strip()
            fault = Fault(
                name=name,
                after=int(params.get("after", 0)),
                p=float(params.get("p", 0.0)),
                seed=int(params.get("seed", 0)),
                seconds=float(params.get("seconds", 0.0)),
                worker=params.get("worker"),
            )
            if fault.name in ("fail-solve", "corrupt-store") and not (
                0.0 <= fault.p <= 1.0
            ):
                raise ValueError(f"chaos probability must be in [0, 1], got {fault.p}")
            faults.append(fault)
        return cls(tuple(faults))

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "ChaosSpec":
        """The spec carried by ``REPRO_CHAOS`` (empty spec when unset)."""
        env = environ if environ is not None else os.environ
        return cls.parse(env.get(CHAOS_ENV))

    def render(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        return ";".join(fault.render() for fault in self.faults)


@dataclass
class ChaosInjector:
    """Applies a :class:`ChaosSpec` at the fabric's injection points.

    One injector per worker (or per in-process sweep, with
    ``worker_id=None``); the sweep and worker loops call the hooks below
    at the documented moments.  An injector built from an empty spec is
    inert, so callers never need to branch on "chaos enabled".
    """

    spec: ChaosSpec = field(default_factory=ChaosSpec)
    worker_id: Optional[str] = None

    def _active(self, name: str):
        for fault in self.spec.faults:
            if fault.name == name and fault.applies_to(self.worker_id):
                yield fault

    # ------------------------------------------------------------------ #
    # injection points
    # ------------------------------------------------------------------ #
    def on_claim(self, chunks_completed: int) -> None:
        """Called right after a chunk claim; may kill the worker.

        Dying *after* the claim (not after the completed chunk) leaves the
        freshly claimed lease dangling — the crash shape the reclaim
        protocol exists for.
        """
        for fault in self._active("kill-worker"):
            if chunks_completed >= fault.after:
                os._exit(KILLED_EXIT_CODE)

    def before_solve(self, key: str, attempt: int) -> None:
        """Called before each solve attempt; may stall, then may raise."""
        for fault in self._active("stall-solve"):
            if fault.seconds > 0:
                stall = Backoff(
                    retries=0, base=fault.seconds, factor=1.0, jitter=0.0
                )
                stall.sleep(0)
        for fault in self._active("fail-solve"):
            u = float(
                derive_rng(fault.seed, "chaos", "fail-solve", key, attempt).random()
            )
            if u < fault.p:
                raise ChaosFault(
                    f"injected solve failure (unit {key[:12]}, attempt {attempt})"
                )

    def allow_heartbeat(self) -> bool:
        """Whether heartbeats go through (``False`` under stall-heartbeat)."""
        return not any(True for _ in self._active("stall-heartbeat"))

    def after_store(self, path: Path, key: str) -> bool:
        """Called after a unit's entry landed at *path*; may corrupt it.

        Returns ``True`` when the entry was corrupted (tests count these).
        Truncation is in-place and non-atomic on purpose: it models the
        torn write the store's quarantine path exists to absorb.
        """
        for fault in self._active("corrupt-store"):
            u = float(derive_rng(fault.seed, "chaos", "corrupt-store", key).random())
            if u < fault.p:
                try:
                    # The torn write is the point here: this fault must
                    # bypass the atomic-write discipline to model it.
                    with path.open("r+") as handle:  # repro-lint: allow[R004]
                        handle.truncate(16)
                except OSError:
                    return False
                return True
        return False
