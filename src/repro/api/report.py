"""The unified result type of the solver API.

Every algorithm reachable through :mod:`repro.api` — the paper's LP-based
algorithms *and* the four comparison baselines — returns a
:class:`SolveReport`.  It unifies what :class:`~repro.core.scheduler.SchedulingOutcome`
and :class:`~repro.baselines.result.BaselineResult` used to report
separately: the objective, per-coflow completion times, the LP lower bound
and gap when an LP was solved, the slot schedule and feasibility report when
one exists, plus free-form extras.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.coflow.instance import CoflowInstance
from repro.core.timeindexed import CoflowLPSolution
from repro.schedule.feasibility import FeasibilityReport
from repro.schedule.schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.baselines.result import BaselineResult
    from repro.core.scheduler import SchedulingOutcome


@dataclass
class SolveReport:
    """Outcome of solving one instance with one algorithm.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced this report.
    instance:
        The instance that was solved.
    objective:
        The value the algorithm reports for the paper's objective
        ``sum_j w_j C_j`` (for ``stretch-average`` this is the mean over the
        λ draws; ``coflow_completion_times`` then describe the best draw).
    coflow_completion_times:
        Completion time of every coflow, shape ``(num_coflows,)``.
    lower_bound:
        LP lower bound on the optimum, when an LP was solved (else ``None``).
        The uniform-grid LP bounds *slot-aligned* schedules, so
        continuous-time baselines (terra, fifo, …) can legitimately beat it
        at coarse slot granularity — a :attr:`gap` below 1 for those
        algorithms signals slot quantisation, not an error.
    lp_solution:
        The LP solution backing the lower bound, when available.
    schedule:
        The slotted schedule, for algorithms that produce one (core
        algorithms and Jahanjou); continuous-time baselines leave it ``None``.
    feasibility:
        Feasibility report of *schedule*, when one was checked.
    solve_seconds:
        Wall-clock time spent inside the algorithm (including LP solves it
        triggered itself, excluding a shared LP solution passed in).
        ``None`` means *not measured yet* — :func:`repro.api.solve` fills it
        in for any report whose algorithm did not time itself.  A measured
        ``0.0`` (possible under coarse clocks) is a legitimate value and is
        never overwritten.
    extras:
        Algorithm-specific data (sampled λ, orderings, evaluations, …).
    """

    algorithm: str
    instance: CoflowInstance
    objective: float
    coflow_completion_times: np.ndarray
    lower_bound: Optional[float] = None
    lp_solution: Optional[CoflowLPSolution] = None
    schedule: Optional[Schedule] = None
    feasibility: Optional[FeasibilityReport] = None
    solve_seconds: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = np.asarray(self.coflow_completion_times, dtype=float)
        if times.shape != (self.instance.num_coflows,):
            raise ValueError(
                "coflow_completion_times must have one entry per coflow "
                f"({self.instance.num_coflows}), got shape {times.shape}"
            )
        self.coflow_completion_times = times

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    @property
    def weighted_completion_time(self) -> float:
        """``sum_j w_j C_j`` of the reported completion times."""
        return float(
            np.dot(self.instance.weights, self.coflow_completion_times)
        )

    @property
    def total_completion_time(self) -> float:
        """Unweighted sum of completion times (Figs. 11–12 metric)."""
        return float(self.coflow_completion_times.sum())

    @property
    def solve_path(self) -> Optional[dict]:
        """Staged-solve telemetry of the underlying LP, when one was solved.

        A JSON-safe dict recorded by
        :func:`repro.core.timeindexed.solve_time_indexed_lp`: the strategy
        (``direct``/``refine``/``coarsen``), per-stage wall time, simplex
        iteration counts and warm-start provenance.  ``None`` for baselines
        that never solved the time-indexed LP.
        """
        if self.lp_solution is None:
            return None
        path = self.lp_solution.metadata.get("solve_path")
        return path if isinstance(path, dict) else None

    @property
    def makespan(self) -> float:
        return float(self.coflow_completion_times.max(initial=0.0))

    @property
    def gap(self) -> float:
        """Objective divided by the LP lower bound (``inf`` without one).

        For continuous-time baselines the slotted LP is a *reference* bound
        (the paper's comparison metric), not a hard floor — see
        :attr:`lower_bound`; values below 1 are possible there.
        """
        if self.lower_bound is None or self.lower_bound <= 0:
            return float("inf")
        return self.objective / self.lower_bound

    def competitive_ratio(self, offline_objective: float) -> float:
        """Objective divided by a clairvoyant offline objective or bound.

        The online-scheduling metric: how much the policy pays for not
        knowing future arrivals.  Returns ``inf`` for a non-positive
        reference (mirrors
        :meth:`repro.online.batch.OnlineScheduleResult.competitive_ratio`).
        """
        if offline_objective <= 0:
            return float("inf")
        return self.objective / offline_objective

    @property
    def is_feasible(self) -> bool:
        """Whether the result passed (or needs no) schedule feasibility check.

        Schedule-producing algorithms carry an explicit
        :class:`FeasibilityReport`; continuous-time baselines are feasible by
        construction (the simulator enforces capacities), so for them this
        only sanity-checks the completion times.
        """
        if self.feasibility is not None:
            return self.feasibility.is_feasible
        times = self.coflow_completion_times
        return bool(np.all(np.isfinite(times)) and np.all(times >= 0.0))

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_outcome(
        cls,
        outcome: "SchedulingOutcome",
        instance: CoflowInstance,
        *,
        solve_seconds: Optional[float] = None,
    ) -> "SolveReport":
        """Wrap a legacy :class:`SchedulingOutcome` (core algorithms)."""
        if outcome.schedule is not None:
            times = outcome.schedule.coflow_completion_times()
        else:
            times = outcome.lp_solution.completion_times
        return cls(
            algorithm=outcome.algorithm,
            instance=instance,
            objective=outcome.objective,
            coflow_completion_times=times,
            lower_bound=outcome.lower_bound,
            lp_solution=outcome.lp_solution,
            schedule=outcome.schedule,
            feasibility=outcome.feasibility,
            solve_seconds=solve_seconds,
            extras=dict(outcome.extras),
        )

    @classmethod
    def from_baseline(
        cls,
        result: "BaselineResult",
        *,
        lower_bound: Optional[float] = None,
        lp_solution: Optional[CoflowLPSolution] = None,
        solve_seconds: Optional[float] = None,
    ) -> "SolveReport":
        """Wrap a legacy :class:`BaselineResult` (comparison baselines)."""
        return cls(
            algorithm=result.algorithm,
            instance=result.instance,
            objective=result.weighted_completion_time,
            coflow_completion_times=result.coflow_completion_times,
            lower_bound=lower_bound,
            lp_solution=lp_solution,
            schedule=result.schedule,
            solve_seconds=solve_seconds,
            extras=dict(result.metadata),
        )

    def to_outcome(self) -> "SchedulingOutcome":
        """The legacy :class:`SchedulingOutcome` view (deprecation shims).

        Only available for reports that carry an LP solution, which the
        legacy type requires.
        """
        from repro.core.scheduler import SchedulingOutcome

        if self.lp_solution is None:
            raise ValueError(
                f"report for {self.algorithm!r} has no LP solution; "
                "SchedulingOutcome requires one"
            )
        return SchedulingOutcome(
            algorithm=self.algorithm,
            objective=self.objective,
            lower_bound=(
                self.lower_bound
                if self.lower_bound is not None
                else self.lp_solution.objective
            ),
            lp_solution=self.lp_solution,
            schedule=self.schedule,
            feasibility=self.feasibility,
            extras=dict(self.extras),
        )
