"""Built-in registrations: the paper's algorithms and the four baselines.

Importing this module populates the registry of :mod:`repro.api.registry`
with every algorithm the repository implements:

===================  ==========================================  ============
name                 source                                      models
===================  ==========================================  ============
``lp-heuristic``     paper Section 6.2 (λ = 1 LP heuristic)      both
``stretch``          paper Section 4.1 (one random λ)            both
``stretch-best``     best of N λ draws ("Best λ")                both
``stretch-average``  mean objective over N draws ("Average λ")   both
``jahanjou``         Jahanjou et al. (SPAA 2017) interval LP     single path
``terra``            Terra offline SRTF (You & Chowdhury 2019)   free path
``sincronia``        Sincronia BSSI ordering                     both
``fifo``             first-come-first-served                     both
``weighted-sjf``     weighted shortest job first                 both
``sebf``             smallest effective bottleneck first         both
===================  ==========================================  ============

Core algorithms share one uniform-grid LP solution per instance (flag
``uses_shared_lp``); Jahanjou builds its own interval-indexed LP, and the
remaining baselines are LP-free.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.greedy import (
    fifo_schedule,
    sebf_schedule,
    weighted_sjf_schedule,
)
from repro.baselines.jahanjou import OPTIMAL_EPSILON, jahanjou_schedule
from repro.baselines.result import BaselineResult
from repro.baselines.sincronia import sincronia_schedule
from repro.baselines.terra import terra_offline_schedule
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.core.timeindexed import CoflowLPSolution, solve_time_indexed_lp
from repro.schedule.feasibility import check_feasibility

from repro.api.registry import register_algorithm
from repro.api.report import SolveReport
from repro.api.request import SolverConfig


def _scheduler(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution],
):
    from repro.core.scheduler import CoflowScheduler

    return CoflowScheduler(
        instance,
        grid=config.grid,
        num_slots=config.num_slots,
        slot_length=config.slot_length,
        epsilon=config.epsilon,
        rng=config.rng,
        verify=config.verify,
        solver_method=config.solver_method,
        strategy=config.strategy,
        backend=config.backend,
        lp_solution=lp_solution,
    )


# --------------------------------------------------------------------------- #
# the paper's algorithms
# --------------------------------------------------------------------------- #
@register_algorithm(
    "lp-heuristic",
    uses_shared_lp=True,
    description="LP-based heuristic, λ = 1 (paper Section 6.2)",
)
def _solve_lp_heuristic(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    scheduler = _scheduler(instance, config, lp_solution)
    outcome = scheduler.heuristic(compact=config.compact)
    return SolveReport.from_outcome(outcome, instance)


@register_algorithm(
    "stretch",
    uses_shared_lp=True,
    randomized=True,
    description="randomized Stretch, one λ draw (paper Section 4.1)",
)
def _solve_stretch(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    scheduler = _scheduler(instance, config, lp_solution)
    outcome = scheduler.stretch(compact=config.compact)
    return SolveReport.from_outcome(outcome, instance)


@register_algorithm(
    "stretch-best",
    uses_shared_lp=True,
    randomized=True,
    description='best schedule over N λ draws (the paper\'s "Best λ")',
)
def _solve_stretch_best(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    scheduler = _scheduler(instance, config, lp_solution)
    outcome = scheduler.best_stretch(
        num_samples=config.num_samples, compact=config.compact
    )
    return SolveReport.from_outcome(outcome, instance)


@register_algorithm(
    "stretch-average",
    uses_shared_lp=True,
    randomized=True,
    objective_is_wct=False,  # mean over draws; times describe the best draw
    description='mean objective over N λ draws (the paper\'s "Average λ")',
)
def _solve_stretch_average(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    scheduler = _scheduler(instance, config, lp_solution)
    evaluation = scheduler.stretch_evaluation(
        num_samples=config.num_samples, compact=config.compact
    )
    best = evaluation.best_result
    feasibility = check_feasibility(best.schedule) if config.verify else None
    if feasibility is not None:
        feasibility.raise_if_infeasible()
    return SolveReport(
        algorithm="stretch-average",
        instance=instance,
        objective=evaluation.average_objective,
        coflow_completion_times=best.schedule.coflow_completion_times(),
        lower_bound=scheduler.lower_bound,
        lp_solution=scheduler.solve_lp(),
        schedule=best.schedule,
        feasibility=feasibility,
        extras={"evaluation": evaluation, "best_lambda": best.lam},
    )


# --------------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------------- #
def _baseline_report(
    result: BaselineResult,
    name: str,
    lp_solution: Optional[CoflowLPSolution],
) -> SolveReport:
    # The shared slotted LP objective is attached as the comparison bound
    # (the paper plots every baseline against it), but these baselines run
    # in continuous time and may beat it — see SolveReport.lower_bound.
    report = SolveReport.from_baseline(
        result,
        lower_bound=lp_solution.objective if lp_solution is not None else None,
        lp_solution=lp_solution,
    )
    report.extras.setdefault("algorithm_label", result.algorithm)
    report.algorithm = name
    return report


@register_algorithm(
    "terra",
    supported_models=(TransmissionModel.FREE_PATH,),
    description="Terra offline SRTF (You & Chowdhury 2019), Figs. 11–12",
)
def _solve_terra(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    return _baseline_report(terra_offline_schedule(instance), "terra", lp_solution)


@register_algorithm(
    "jahanjou",
    supported_models=(TransmissionModel.SINGLE_PATH,),
    description="Jahanjou et al. (SPAA 2017) interval LP + α-points, Figs. 9–10",
)
def _solve_jahanjou(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    # Jahanjou rounds its own interval-indexed LP; a shared uniform-grid LP
    # cannot be substituted, but its objective still serves as the bound.
    epsilon = config.epsilon if config.epsilon is not None else OPTIMAL_EPSILON
    start = time.perf_counter()
    interval_solution = solve_time_indexed_lp(
        instance,
        epsilon=epsilon,
        slot_length=config.slot_length,
        solver_method=config.solver_method,
    )
    result = jahanjou_schedule(
        instance,
        epsilon=epsilon,
        slot_length=config.slot_length,
        lp_solution=interval_solution,
    )
    report = SolveReport.from_baseline(
        result,
        lower_bound=(
            lp_solution.objective
            if lp_solution is not None
            else interval_solution.objective
        ),
        lp_solution=lp_solution if lp_solution is not None else interval_solution,
        solve_seconds=time.perf_counter() - start,
    )
    report.algorithm = "jahanjou"
    return report


@register_algorithm(
    "sincronia",
    description="Sincronia BSSI ordering + greedy rate allocation",
)
def _solve_sincronia(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    return _baseline_report(sincronia_schedule(instance), "sincronia", lp_solution)


@register_algorithm(
    "fifo",
    description="first-come-first-served by release time",
)
def _solve_fifo(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    return _baseline_report(fifo_schedule(instance), "fifo", lp_solution)


@register_algorithm(
    "weighted-sjf",
    description="weighted shortest job first on standalone times",
)
def _solve_weighted_sjf(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    return _baseline_report(
        weighted_sjf_schedule(instance), "weighted-sjf", lp_solution
    )


@register_algorithm(
    "sebf",
    description="smallest effective bottleneck first (Varys-style)",
)
def _solve_sebf(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    return _baseline_report(sebf_schedule(instance), "sebf", lp_solution)


#: Names guaranteed to exist in every multiprocessing child regardless of
#: the start method (unlike user-registered algorithms): the entries this
#: module registers, plus the online policies that
#: :mod:`repro.online.policies` registers when ``repro.api`` is imported —
#: which importing any ``repro.api`` submodule (as every worker does)
#: triggers, since Python executes the package ``__init__`` first.
BUILTIN_ALGORITHMS = frozenset(
    {
        "lp-heuristic",
        "stretch",
        "stretch-best",
        "stretch-average",
        "terra",
        "jahanjou",
        "sincronia",
        "fifo",
        "weighted-sjf",
        "sebf",
        "online-batch",
        "online-batch-wc",
        "online-resolve",
        "online-wsjf",
    }
)
