"""repro.api — the unified solver API.

One extensible entry point for every algorithm in the repository, core and
baseline alike::

    from repro import api

    report = api.solve(instance, algorithm="stretch-best", rng=0)
    print(report.objective, report.lower_bound, report.gap)

    reports = api.solve_many(instances, ["lp-heuristic", "terra", "fifo"],
                             parallel=4)

Components
----------
* :mod:`~repro.api.registry` — pluggable algorithm registry
  (:func:`register_algorithm`, :func:`available_algorithms`, capability
  flags such as ``supported_models``).
* :mod:`~repro.api.request` — :class:`SolverConfig` / :class:`SolveRequest`
  input objects gathering grid/ε/rng/backend/sampling knobs in one place.
* :mod:`~repro.api.report` — the common :class:`SolveReport` result type.
* :mod:`~repro.api.batch` — :func:`solve` and the parallel batch runner
  :func:`solve_many` with shared-LP reuse across algorithms.

Legacy entry points (:func:`repro.core.scheduler.solve_coflow_schedule`,
the per-baseline ``*_schedule`` functions) remain available as thin shims.
"""

from repro.api import algorithms as _algorithms  # noqa: F401 - registers built-ins
from repro.api.batch import solve, solve_many, solve_request

# Registers the online policies (online-batch, online-batch-wc,
# online-resolve, online-wsjf).  Imported after the batch runner so
# repro.online can use repro.api submodules freely; worker processes run
# this __init__ too, so the online entries exist in every child.
from repro.online import policies as _online_policies  # noqa: E402,F401
from repro.api.registry import (
    ALL_MODELS,
    AlgorithmInfo,
    UnknownAlgorithmError,
    algorithm_table,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.api.report import SolveReport
from repro.api.request import SolveRequest, SolverConfig

__all__ = [
    "ALL_MODELS",
    "AlgorithmInfo",
    "SolveReport",
    "SolveRequest",
    "SolverConfig",
    "UnknownAlgorithmError",
    "algorithm_table",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
    "solve",
    "solve_many",
    "solve_request",
]
