"""Pluggable algorithm registry of the unified solver API.

Algorithms register themselves under a stable name with capability flags;
:func:`repro.api.solve`, the batch runner, the CLI and the experiment harness
all dispatch through this table, so adding an algorithm in one place makes
it reachable everywhere::

    @register_algorithm(
        "my-heuristic",
        supported_models=(TransmissionModel.FREE_PATH,),
        description="my custom ordering heuristic",
    )
    def _solve_my_heuristic(instance, config, lp_solution=None):
        ...
        return SolveReport(...)

Solver callables take ``(instance, config, lp_solution)`` — the third
argument is a shared uniform-grid LP solution that the batch runner reuses
across algorithms on the same instance (``None`` when unavailable; solvers
with ``uses_shared_lp=False`` may ignore it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.core.timeindexed import CoflowLPSolution

from repro.api.report import SolveReport
from repro.api.request import SolverConfig

#: Signature every registered solver implements.
SolverFn = Callable[
    [CoflowInstance, SolverConfig, Optional[CoflowLPSolution]], SolveReport
]

ALL_MODELS: Tuple[TransmissionModel, ...] = (
    TransmissionModel.SINGLE_PATH,
    TransmissionModel.FREE_PATH,
)


class UnknownAlgorithmError(ValueError):
    """Raised for algorithm names absent from the registry.

    The message lists every registered name so typos are self-diagnosing.
    """

    def __init__(self, name: str, registered: Iterable[str]) -> None:
        self.name = name
        self.registered = tuple(sorted(registered))
        super().__init__(
            f"unknown algorithm {name!r}; registered algorithms: "
            + ", ".join(self.registered)
        )


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry: the solver callable plus its capability flags.

    Attributes
    ----------
    name:
        Canonical registry name (what ``solve(..., algorithm=...)`` takes).
    solver:
        The callable implementing the algorithm.
    supported_models:
        Transmission models the algorithm accepts (Terra is free-path only,
        Jahanjou et al. single-path only, everything else supports both).
    uses_shared_lp:
        Whether the algorithm consumes a shared uniform-grid LP solution —
        the batch runner solves that LP once per instance and hands it to
        every such algorithm.
    randomized:
        Whether results depend on ``SolverConfig.rng``.
    online:
        Whether the algorithm is an *online* policy: it learns a coflow only
        at its release time and never allocates capacity to a coflow before
        that.  Online reports carry first-service evidence in their extras,
        and the ``online-release-respect`` / ``online-lower-bound``
        invariants of :mod:`repro.scenarios` key off this flag.
    objective_is_wct:
        Whether ``SolveReport.objective`` equals the weighted completion
        time of the reported ``coflow_completion_times`` (true for almost
        everything; ``stretch-average`` reports the mean over λ draws while
        its completion times describe only the best draw).  Consistency
        checkers — e.g. the ``report-consistency`` invariant of
        ``repro.scenarios`` — key off this flag.
    description:
        One-line description (shown by ``available_algorithms`` consumers
        such as the CLI and the README table).
    """

    name: str
    solver: SolverFn
    supported_models: Tuple[TransmissionModel, ...] = ALL_MODELS
    uses_shared_lp: bool = False
    randomized: bool = False
    online: bool = False
    objective_is_wct: bool = True
    description: str = ""

    def supports(self, model: TransmissionModel) -> bool:
        return model in self.supported_models

    def check_supports(self, model: TransmissionModel) -> None:
        if not self.supports(model):
            supported = ", ".join(m.value for m in self.supported_models)
            raise ValueError(
                f"algorithm {self.name!r} does not support the {model.value!r} "
                f"transmission model (supported: {supported})"
            )


_REGISTRY: Dict[str, AlgorithmInfo] = {}


def register_algorithm(
    name: str,
    *,
    supported_models: Iterable[TransmissionModel] = ALL_MODELS,
    uses_shared_lp: bool = False,
    randomized: bool = False,
    online: bool = False,
    objective_is_wct: bool = True,
    description: str = "",
) -> Callable[[SolverFn], SolverFn]:
    """Decorator registering *solver* under *name*.

    Re-registering an existing name replaces the entry (latest wins), so
    downstream code can override a built-in algorithm with a tuned variant.
    """

    def decorator(solver: SolverFn) -> SolverFn:
        _REGISTRY[name] = AlgorithmInfo(
            name=name,
            solver=solver,
            supported_models=tuple(supported_models),
            uses_shared_lp=uses_shared_lp,
            randomized=randomized,
            online=online,
            objective_is_wct=objective_is_wct,
            description=description,
        )
        return solver

    return decorator


def get_algorithm(name: str) -> AlgorithmInfo:
    """The registry entry for *name* (:class:`UnknownAlgorithmError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(name, _REGISTRY) from None


def available_algorithms(
    *,
    model: Optional[TransmissionModel] = None,
    online: Optional[bool] = None,
) -> Tuple[str, ...]:
    """Sorted names of all registered algorithms.

    With *model* given, only algorithms supporting that transmission model
    are listed; with *online* given, only algorithms whose ``online``
    capability flag matches (``online=True`` lists the online policies,
    ``online=False`` the clairvoyant offline algorithms).
    """
    names = (
        name
        for name, info in _REGISTRY.items()
        if (model is None or info.supports(model))
        and (online is None or info.online == online)
    )
    return tuple(sorted(names))


def algorithm_table() -> Tuple[AlgorithmInfo, ...]:
    """All registry entries, sorted by name (for CLIs and docs)."""
    return tuple(_REGISTRY[name] for name in available_algorithms())
