"""The unified entry points: :func:`solve` and the batch runner :func:`solve_many`.

``solve`` dispatches one instance to one registered algorithm and returns a
:class:`~repro.api.report.SolveReport`.  ``solve_many`` fans a batch of
instances across a set of algorithms — optionally over a
:class:`concurrent.futures.ProcessPoolExecutor` — solving the shared
uniform-grid LP at most once per instance and handing it to every algorithm
that consumes it (exactly the reuse the paper's own evaluation performs when
comparing the LP heuristic against the λ-sampling series).

The shared solution is keyed on the *grid it was actually built on*:
:class:`~repro.core.scheduler.CoflowScheduler` only reuses it when an
algorithm's own grid parameters resolve to the same grid, and logs a debug
line when reuse is skipped (e.g. requests that differ only in ``epsilon``).
Each instance batch additionally runs under an
:class:`~repro.lp.solver.LPSolveCache`, so any algorithm that re-solves a
program identical to one already solved in the batch (Jahanjou's interval
LP, a mismatched-grid re-solve requested twice, ...) gets the memoized
solution instead of a second HiGHS run.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.coflow.instance import CoflowInstance
from repro.core.timeindexed import CoflowLPSolution, solve_time_indexed_lp
from repro.lp.solver import solver_cache

from repro.api.algorithms import BUILTIN_ALGORITHMS
from repro.api.registry import get_algorithm
from repro.api.report import SolveReport
from repro.api.request import SolveRequest, SolverConfig

logger = logging.getLogger(__name__)


def solve(
    instance: CoflowInstance,
    algorithm: str = "lp-heuristic",
    *,
    config: Optional[SolverConfig] = None,
    lp_solution: Optional[CoflowLPSolution] = None,
    **overrides: object,
) -> SolveReport:
    """Solve *instance* with a registered *algorithm*.

    Parameters
    ----------
    instance:
        The coflow scheduling instance.
    algorithm:
        A name from :func:`repro.api.available_algorithms`.
    config:
        Solver configuration; defaults to :class:`SolverConfig()`.
    lp_solution:
        A previously solved uniform-grid LP solution for *instance*,
        reused by algorithms with the ``uses_shared_lp`` capability (and
        attached as the lower bound to LP-free baselines).
    overrides:
        Individual :class:`SolverConfig` fields overriding *config*, e.g.
        ``solve(inst, "stretch-best", num_samples=20, rng=7)``.
    """
    cfg = config if config is not None else SolverConfig()
    if overrides:
        cfg = cfg.replace(**overrides)
    info = get_algorithm(algorithm)
    info.check_supports(instance.model)
    start = time.perf_counter()
    report = info.solver(instance, cfg, lp_solution)
    report.algorithm = info.name
    # None is the "not measured" sentinel; a measured 0.0 (coarse clock) is a
    # real value and must survive.
    if report.solve_seconds is None:
        report.solve_seconds = time.perf_counter() - start
    return report


def solve_request(request: SolveRequest) -> SolveReport:
    """Solve one :class:`SolveRequest` (convenience wrapper over :func:`solve`)."""
    return solve(request.instance, request.algorithm, config=request.config)


# --------------------------------------------------------------------------- #
# batch runner
# --------------------------------------------------------------------------- #
def _effective_start_method() -> str:
    """The start method worker processes *would* use, without resolving it.

    ``multiprocessing.get_start_method()`` irreversibly pins the global start
    method as a side effect (a later ``set_start_method()`` without
    ``force=True`` then raises), so merely *asking* must not resolve it.
    When the method is still unresolved, the platform default is inferred
    from ``get_all_start_methods()``, which lists the default first and does
    not touch the global context.
    """
    method = multiprocessing.get_start_method(allow_none=True)
    if method is not None:
        return method
    return multiprocessing.get_all_start_methods()[0]


def _solve_instance_batch(
    task: Tuple[CoflowInstance, Tuple[str, ...], SolverConfig, bool],
) -> List[SolveReport]:
    """Worker: run every algorithm on one instance, sharing one LP solve.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can pickle
    it; the task tuple carries everything the child process needs.
    """
    instance, algorithms, config, share_lp = task
    infos = [get_algorithm(name) for name in algorithms]
    with solver_cache() as cache:
        shared: Optional[CoflowLPSolution] = None
        if share_lp and any(info.uses_shared_lp for info in infos):
            shared = solve_time_indexed_lp(
                instance,
                grid=config.grid,
                num_slots=config.num_slots,
                slot_length=config.slot_length,
                epsilon=config.epsilon,
                solver_method=config.solver_method,
            )
        reports = [
            solve(instance, info.name, config=config, lp_solution=shared)
            for info in infos
        ]
        if cache.hits:
            logger.debug(
                "solver warm-start cache for instance %r: %s",
                instance.name,
                cache.stats(),
            )
    return reports


def solve_many(
    instances: Iterable[CoflowInstance],
    algorithms: Union[str, Sequence[str]],
    *,
    config: Optional[SolverConfig] = None,
    parallel: Optional[int] = None,
    share_lp: bool = True,
) -> List[SolveReport]:
    """Solve every instance with every algorithm; return reports instance-major.

    The result list holds ``len(instances) * len(algorithms)`` reports,
    ordered by instance first and algorithm second (matching the input
    orders), regardless of how the work was scheduled.

    Parameters
    ----------
    instances:
        The batch of instances.
    algorithms:
        One algorithm name or a sequence of names; all are validated against
        the registry (and each instance's transmission model) up front, so a
        typo fails fast instead of deep inside a worker process.
    config:
        One :class:`SolverConfig` applied to every request.  Its random
        source is split into per-instance child generators, so results are
        identical whether the batch runs serially or in parallel.
    parallel:
        Number of worker processes; ``None`` or ``1`` runs in-process.
    share_lp:
        Solve the uniform-grid LP once per instance and reuse it across all
        ``uses_shared_lp`` algorithms of that instance (on by default).
    """
    names: Tuple[str, ...] = (
        (algorithms,) if isinstance(algorithms, str) else tuple(algorithms)
    )
    if not names:
        raise ValueError("algorithms must name at least one registered algorithm")
    infos = [get_algorithm(name) for name in names]
    batch = list(instances)
    for instance in batch:
        for info in infos:
            info.check_supports(instance.model)

    cfg = config if config is not None else SolverConfig()
    rngs = cfg.spawn_rngs(len(batch))
    tasks = [
        (instance, names, cfg.replace(rng=rng), share_lp)
        for instance, rng in zip(batch, rngs)
    ]

    use_processes = parallel is not None and parallel > 1 and len(tasks) > 1
    if use_processes:
        # Worker processes rebuild the registry by re-importing the built-in
        # module; user-registered algorithms only survive that when children
        # are forked from this process.  Otherwise fall back to serial rather
        # than fail deep inside the pool.
        custom = [name for name in names if name not in BUILTIN_ALGORITHMS]
        if custom and _effective_start_method() != "fork":
            warnings.warn(
                f"custom algorithms {custom} are not importable in "
                f"{_effective_start_method()!r}-started worker "
                "processes; running the batch serially",
                RuntimeWarning,
                stacklevel=2,
            )
            use_processes = False
    if use_processes:
        workers = min(parallel, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            grouped = list(executor.map(_solve_instance_batch, tasks))
    else:
        grouped = [_solve_instance_batch(task) for task in tasks]
    return [report for group in grouped for report in group]
