"""Input objects of the unified solver API.

:class:`SolverConfig` gathers every knob that used to be scattered across
``CoflowScheduler``, ``solve_coflow_schedule`` and the baseline entry points
(time grid, ε, λ-sampling, LP backend, randomness, verification) into one
immutable value object, and :class:`SolveRequest` pairs a config with an
instance and an algorithm name — the unit of work of
:func:`repro.api.solve_many`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.coflow.instance import CoflowInstance
from repro.core.stretch import DEFAULT_NUM_SAMPLES
from repro.schedule.timegrid import TimeGrid
from repro.utils.rng import RandomSource, as_generator


@dataclass(frozen=True)
class SolverConfig:
    """Every tuning knob of the solver stack, in one place.

    Attributes
    ----------
    grid:
        Explicit time grid; overrides *num_slots*, *slot_length*, *epsilon*.
    num_slots, slot_length:
        Uniform-grid specification (defaults to an automatically suggested
        horizon of unit slots).
    epsilon:
        Geometric-interval grid parameter (Appendix A).  Algorithms that
        build their own interval LP (Jahanjou et al.) read it too.
    rng:
        Random source for the λ-sampling algorithms (``None``, an int seed,
        or a :class:`numpy.random.Generator`).
    solver_method:
        scipy ``linprog`` backend for every LP solve (``"highs"`` default).
    strategy:
        Staged-solve strategy for the time-indexed LP: ``"direct"`` (one
        cold solve), ``"refine"`` (geometric stage warm-starts the fine
        grid) or ``"coarsen"`` (dual-guided adaptive grid with an explicit
        (1+ε) guarantee).  See
        :func:`repro.core.timeindexed.solve_time_indexed_lp`.
    backend:
        Solver backend selector (``"auto"``, ``"linprog"`` or
        ``"persistent-highs"``); ``"auto"`` uses the resident HiGHS backend
        when available and falls back to ``linprog`` otherwise.
    num_samples:
        Number of λ draws for ``stretch-best`` / ``stretch-average``.
    compact:
        Whether produced slot schedules are compacted (Section 6.2).
    verify:
        Whether produced schedules are feasibility-checked.
    """

    grid: Optional[TimeGrid] = None
    num_slots: Optional[int] = None
    slot_length: float = 1.0
    epsilon: Optional[float] = None
    rng: RandomSource = None
    solver_method: str = "highs"
    strategy: str = "direct"
    backend: str = "auto"
    num_samples: int = DEFAULT_NUM_SAMPLES
    compact: bool = True
    verify: bool = True

    def replace(self, **changes: object) -> "SolverConfig":
        """A copy of this config with the given fields overridden."""
        return dataclasses.replace(self, **changes)

    def make_rng(self) -> np.random.Generator:
        """The configured random source as a generator."""
        return as_generator(self.rng)

    def spawn_rngs(self, count: int) -> list:
        """*count* independent child generators, derived deterministically.

        Used by the batch runner so that the i-th instance sees the same
        random stream whether the batch runs serially or across processes.
        """
        if count <= 0:
            return []
        return as_generator(self.rng).spawn(count)


@dataclass(frozen=True)
class SolveRequest:
    """One unit of work: solve *instance* with *algorithm* under *config*."""

    instance: CoflowInstance
    algorithm: str = "lp-heuristic"
    config: SolverConfig = field(default_factory=SolverConfig)
