"""On-disk, content-addressed result store.

Layout (all JSON, all human-inspectable)::

    <root>/
      store.json                   # store-level metadata (schema version)
      objects/<k0k1>/<key>.json    # content-addressed entries (fan-out dir)
      runs/<kind>/<kind>-<n>.json  # append-only run archives (bench, verify,
                                   # sweep summaries) with a monotonic index

Every object entry is an envelope ``{schema, key, kind, created, payload}``;
``payload`` is the caller's JSON document (e.g. the serialized
:class:`~repro.api.report.SolveReport` surface).  Writes are atomic (temp
file + ``os.replace`` in the same directory), so a killed sweep never leaves
a half-written entry: the entry either exists completely or not at all —
which is exactly what makes kill-and-resume safe.

Corrupted entries (truncated file, foreign JSON, wrong schema) are treated
as misses, counted, and quarantined by renaming to a unique
``<name>.corrupt-<stamp>-<pid>`` so the next write can recompute and
replace them cleanly — and so that no two quarantines ever clobber each
other's evidence.

Concurrent writers (the multi-worker sweep fabric of :mod:`repro.fabric`)
are first-write-wins: :meth:`ResultStore.put` creates entries with an
exclusive link so exactly one of two racing writers lands; the loser is
counted under ``races`` and the stored bytes never flap.  Terminal unit
failures are recorded under ``runs/failures/<key>.json`` so a poison unit
is quarantined evidence, not an invisible gap.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.utils.io import atomic_write_json, exclusive_write_json
from repro.utils.timing import file_stamp, report_stamp

#: Version of the on-disk envelope; entries with a different version are
#: misses (and are left untouched — a newer store format is not "corrupt").
STORE_SCHEMA = 1


class ResultStore:
    """A content-addressed JSON store with hit/miss/corruption accounting.

    Parameters
    ----------
    root:
        Directory holding the store (created on first use).

    Notes
    -----
    Counters (``hits``/``misses``/``writes``/``corrupted``) accumulate per
    store *object*, not per directory — two stores opened on the same root
    count independently.  The sweep tests use them to assert "zero new
    solves on a warm re-run".
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupted = 0
        self.races = 0
        self._ensure_layout()

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    def _ensure_layout(self) -> None:
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        (self.root / "runs").mkdir(parents=True, exist_ok=True)
        meta = self.root / "store.json"
        if not meta.exists():
            self._atomic_write(meta, {"schema": STORE_SCHEMA, "kind": "repro-store"})

    def object_path(self, key: str) -> Path:
        """Path of the entry addressed by *key* (two-hex-char fan-out)."""
        if len(key) < 3:
            raise ValueError(f"store keys must be hex digests, got {key!r}")
        return self.root / "objects" / key[:2] / f"{key}.json"

    @staticmethod
    def _atomic_write(path: Path, document: Dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, document, sort_keys=True)

    # ------------------------------------------------------------------ #
    # content-addressed objects
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        """Whether a *valid* entry exists, without counting hit/miss.

        Validates the full envelope (readable JSON, matching key, supported
        schema) exactly like :meth:`get`, so a status probe can never call
        an entry "stored" that an actual run would treat as a miss.  Unlike
        :meth:`get` it neither touches the counters nor quarantines.
        """
        payload, _corrupt = self._load(key)
        return payload is not None

    def _load(self, key: str) -> tuple:
        """``(payload, corrupt)`` for *key*; counters and files untouched."""
        path = self.object_path(key)
        try:
            envelope = json.loads(path.read_text())
        except FileNotFoundError:
            return None, False
        except (OSError, json.JSONDecodeError):
            return None, True
        if (
            not isinstance(envelope, dict)
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            return None, True
        if envelope.get("schema") != STORE_SCHEMA:
            # A different (likely newer) format: miss, but not corruption.
            return None, False
        return envelope["payload"], False

    def get(self, key: str) -> Optional[Dict]:
        """The payload stored under *key*, or ``None`` (miss).

        A corrupted entry — unreadable, non-JSON, or not a store envelope —
        counts as a miss, increments ``corrupted`` and is quarantined by
        renaming to ``.corrupt`` so it is never consulted again.
        """
        payload, corrupt = self._load(key)
        if corrupt:
            self._quarantine(self.object_path(key))
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict, *, kind: str = "result") -> bool:
        """Store *payload* under *key*; ``True`` iff this write landed first.

        Entries are created with an exclusive atomic link, so when two
        workers race on the same key exactly one creation succeeds.  The
        loser's payload is discarded (content addressing makes it
        equivalent — a redundant solve is a benign duplicate, never a
        divergent result), the stored bytes never flap, and the race is
        counted under ``races`` so sweep accounting stays honest about
        duplicated work.  A corrupt or foreign-schema entry occupying the
        slot is quarantined/overwritten rather than treated as a winner.
        """
        path = self.object_path(key)
        envelope = {
            "schema": STORE_SCHEMA,
            "key": key,
            "kind": kind,
            "created": report_stamp(),
            "payload": payload,
        }
        if exclusive_write_json(path, envelope):
            self.writes += 1
            return True
        existing, corrupt = self._load(key)
        if existing is not None:
            # A valid entry beat us to the slot: first write wins.
            self.races += 1
            return False
        if corrupt:
            self._quarantine(path)
        # Corrupt or foreign-schema occupant: replace it outright (the
        # foreign entry was a miss anyway; ours is authoritative here).
        self._atomic_write(path, envelope)
        self.writes += 1
        return True

    def _quarantine(self, path: Path) -> None:
        """Move *path* aside under a unique ``.corrupt-*`` name.

        The suffix embeds a wall stamp and the pid (plus a counter for
        same-second repeats), so two quarantines — of the same key over
        time, or of keys whose object paths would collide after a naive
        ``with_suffix(".corrupt")`` — never silently overwrite each
        other's evidence.  :meth:`quarantined` lists what accumulated.
        """
        self.corrupted += 1
        base = f".corrupt-{file_stamp()}-{os.getpid()}"
        target = path.with_suffix(base)
        counter = 0
        while target.exists():
            counter += 1
            target = path.with_suffix(f"{base}-{counter}")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - already gone / unwritable
            pass

    def quarantined(self) -> List[Path]:
        """Every quarantined object file (sorted) — corruption evidence."""
        return sorted(
            p
            for p in (self.root / "objects").glob("*/*")
            if p.is_file() and ".corrupt" in p.suffix
        )

    def keys(self) -> List[str]:
        """All object keys currently stored (sorted)."""
        return sorted(
            p.stem for p in (self.root / "objects").glob("*/*.json")
        )

    # ------------------------------------------------------------------ #
    # run archives
    # ------------------------------------------------------------------ #
    def put_run(self, kind: str, payload: Dict) -> Path:
        """Append *payload* to the ``runs/<kind>/`` archive.

        Entries get a monotonically increasing index (scan-based, so
        archives survive across processes); ``latest_run`` returns the
        highest index.
        """
        directory = self.root / "runs" / kind
        directory.mkdir(parents=True, exist_ok=True)
        existing = self._run_paths(kind)
        next_index = 0
        if existing:
            next_index = max(self._run_index(p, kind) for p in existing) + 1
        path = directory / f"{kind}-{next_index:06d}.json"
        self._atomic_write(path, payload)
        self.writes += 1
        return path

    def _run_paths(self, kind: str) -> List[Path]:
        directory = self.root / "runs" / kind
        if not directory.is_dir():
            return []
        return sorted(directory.glob(f"{kind}-*.json"))

    @staticmethod
    def _run_index(path: Path, kind: str) -> int:
        try:
            return int(path.stem.removeprefix(f"{kind}-"))
        except ValueError:
            return -1

    def list_runs(self, kind: str) -> List[Path]:
        """Paths of every archived run of *kind*, oldest first."""
        return [p for p in self._run_paths(kind) if self._run_index(p, kind) >= 0]

    def latest_run(self, kind: str) -> Optional[Dict]:
        """The most recently archived run payload of *kind*, if any.

        Unreadable archives are skipped (newest readable one wins) rather
        than raised — a durable trajectory should tolerate one bad file.
        """
        for path in reversed(self.list_runs(kind)):
            try:
                return json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
        return None

    # ------------------------------------------------------------------ #
    # failure records (poison-unit quarantine)
    # ------------------------------------------------------------------ #
    def failure_path(self, key: str) -> Path:
        """Path of the failure record for the unit addressed by *key*."""
        if len(key) < 3:
            raise ValueError(f"store keys must be hex digests, got {key!r}")
        return self.root / "runs" / "failures" / f"{key}.json"

    def put_failure(self, key: str, record: Dict) -> Path:
        """Atomically record a terminal unit failure under *key*.

        One record per unit (latest failure wins): the sweep fabric treats
        a recorded failure as *quarantined* — resolved for chunk-completion
        purposes, surfaced in status output — so one pathological LP can
        never wedge a whole sweep.  A later successful solve clears it via
        :meth:`clear_failure`.
        """
        path = self.failure_path(key)
        self._atomic_write(path, record)
        return path

    def get_failure(self, key: str) -> Optional[Dict]:
        """The failure record for *key*, or ``None`` (absent / unreadable)."""
        try:
            return json.loads(self.failure_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def clear_failure(self, key: str) -> None:
        """Drop the failure record for *key* (no-op when absent)."""
        try:
            os.unlink(self.failure_path(key))
        except OSError:
            pass

    def failure_keys(self) -> List[str]:
        """Keys of every unit with a recorded terminal failure (sorted)."""
        directory = self.root / "runs" / "failures"
        if not directory.is_dir():
            return []
        return sorted(p.stem for p in directory.glob("*.json"))

    # ------------------------------------------------------------------ #
    # sweep manifests
    # ------------------------------------------------------------------ #
    def manifest_path(self, sweep_id: str) -> Path:
        """Path of the checkpoint manifest for the sweep *sweep_id*."""
        return self.root / "sweeps" / sweep_id / "manifest.json"

    def put_manifest(self, sweep_id: str, payload: Dict) -> Path:
        """Atomically (re)write a sweep's checkpoint manifest."""
        path = self.manifest_path(sweep_id)
        self._atomic_write(path, payload)
        return path

    def get_manifest(self, sweep_id: str) -> Optional[Dict]:
        """A sweep's checkpoint manifest, or ``None`` (absent / unreadable)."""
        try:
            return json.loads(self.manifest_path(sweep_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self.keys()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "races": self.races,
            "corrupted": self.corrupted,
            "quarantined": len(self.quarantined()),
            "failures": len(self.failure_keys()),
        }

    def reset_counters(self) -> None:
        """Zero the hit/miss/write/race/corruption counters (entries untouched)."""
        self.hits = self.misses = self.writes = self.corrupted = self.races = 0

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, {self.stats()})"
