"""On-disk, content-addressed result store.

Layout (all JSON, all human-inspectable)::

    <root>/
      store.json                   # store-level metadata (schema version)
      objects/<k0k1>/<key>.json    # content-addressed entries (fan-out dir)
      runs/<kind>/<kind>-<n>.json  # append-only run archives (bench, verify,
                                   # sweep summaries) with a monotonic index

Every object entry is an envelope ``{schema, key, kind, created, payload}``;
``payload`` is the caller's JSON document (e.g. the serialized
:class:`~repro.api.report.SolveReport` surface).  Writes are atomic (temp
file + ``os.replace`` in the same directory), so a killed sweep never leaves
a half-written entry: the entry either exists completely or not at all —
which is exactly what makes kill-and-resume safe.

Corrupted entries (truncated file, foreign JSON, wrong schema) are treated
as misses, counted, and quarantined by renaming to ``<name>.corrupt`` so the
next write can recompute and replace them cleanly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.utils.io import atomic_write_json
from repro.utils.timing import report_stamp

#: Version of the on-disk envelope; entries with a different version are
#: misses (and are left untouched — a newer store format is not "corrupt").
STORE_SCHEMA = 1


class ResultStore:
    """A content-addressed JSON store with hit/miss/corruption accounting.

    Parameters
    ----------
    root:
        Directory holding the store (created on first use).

    Notes
    -----
    Counters (``hits``/``misses``/``writes``/``corrupted``) accumulate per
    store *object*, not per directory — two stores opened on the same root
    count independently.  The sweep tests use them to assert "zero new
    solves on a warm re-run".
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupted = 0
        self._ensure_layout()

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    def _ensure_layout(self) -> None:
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        (self.root / "runs").mkdir(parents=True, exist_ok=True)
        meta = self.root / "store.json"
        if not meta.exists():
            self._atomic_write(meta, {"schema": STORE_SCHEMA, "kind": "repro-store"})

    def object_path(self, key: str) -> Path:
        """Path of the entry addressed by *key* (two-hex-char fan-out)."""
        if len(key) < 3:
            raise ValueError(f"store keys must be hex digests, got {key!r}")
        return self.root / "objects" / key[:2] / f"{key}.json"

    @staticmethod
    def _atomic_write(path: Path, document: Dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, document, sort_keys=True)

    # ------------------------------------------------------------------ #
    # content-addressed objects
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        """Whether a *valid* entry exists, without counting hit/miss.

        Validates the full envelope (readable JSON, matching key, supported
        schema) exactly like :meth:`get`, so a status probe can never call
        an entry "stored" that an actual run would treat as a miss.  Unlike
        :meth:`get` it neither touches the counters nor quarantines.
        """
        payload, _corrupt = self._load(key)
        return payload is not None

    def _load(self, key: str) -> tuple:
        """``(payload, corrupt)`` for *key*; counters and files untouched."""
        path = self.object_path(key)
        try:
            envelope = json.loads(path.read_text())
        except FileNotFoundError:
            return None, False
        except (OSError, json.JSONDecodeError):
            return None, True
        if (
            not isinstance(envelope, dict)
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            return None, True
        if envelope.get("schema") != STORE_SCHEMA:
            # A different (likely newer) format: miss, but not corruption.
            return None, False
        return envelope["payload"], False

    def get(self, key: str) -> Optional[Dict]:
        """The payload stored under *key*, or ``None`` (miss).

        A corrupted entry — unreadable, non-JSON, or not a store envelope —
        counts as a miss, increments ``corrupted`` and is quarantined by
        renaming to ``.corrupt`` so it is never consulted again.
        """
        payload, corrupt = self._load(key)
        if corrupt:
            self._quarantine(self.object_path(key))
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict, *, kind: str = "result") -> Path:
        """Atomically store *payload* under *key*; returns the entry path."""
        path = self.object_path(key)
        envelope = {
            "schema": STORE_SCHEMA,
            "key": key,
            "kind": kind,
            "created": report_stamp(),
            "payload": payload,
        }
        self._atomic_write(path, envelope)
        self.writes += 1
        return path

    def _quarantine(self, path: Path) -> None:
        self.corrupted += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # pragma: no cover - already gone / unwritable
            pass

    def keys(self) -> List[str]:
        """All object keys currently stored (sorted)."""
        return sorted(
            p.stem for p in (self.root / "objects").glob("*/*.json")
        )

    # ------------------------------------------------------------------ #
    # run archives
    # ------------------------------------------------------------------ #
    def put_run(self, kind: str, payload: Dict) -> Path:
        """Append *payload* to the ``runs/<kind>/`` archive.

        Entries get a monotonically increasing index (scan-based, so
        archives survive across processes); ``latest_run`` returns the
        highest index.
        """
        directory = self.root / "runs" / kind
        directory.mkdir(parents=True, exist_ok=True)
        existing = self._run_paths(kind)
        next_index = 0
        if existing:
            next_index = max(self._run_index(p, kind) for p in existing) + 1
        path = directory / f"{kind}-{next_index:06d}.json"
        self._atomic_write(path, payload)
        self.writes += 1
        return path

    def _run_paths(self, kind: str) -> List[Path]:
        directory = self.root / "runs" / kind
        if not directory.is_dir():
            return []
        return sorted(directory.glob(f"{kind}-*.json"))

    @staticmethod
    def _run_index(path: Path, kind: str) -> int:
        try:
            return int(path.stem.removeprefix(f"{kind}-"))
        except ValueError:
            return -1

    def list_runs(self, kind: str) -> List[Path]:
        """Paths of every archived run of *kind*, oldest first."""
        return [p for p in self._run_paths(kind) if self._run_index(p, kind) >= 0]

    def latest_run(self, kind: str) -> Optional[Dict]:
        """The most recently archived run payload of *kind*, if any.

        Unreadable archives are skipped (newest readable one wins) rather
        than raised — a durable trajectory should tolerate one bad file.
        """
        for path in reversed(self.list_runs(kind)):
            try:
                return json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
        return None

    # ------------------------------------------------------------------ #
    # sweep manifests
    # ------------------------------------------------------------------ #
    def manifest_path(self, sweep_id: str) -> Path:
        """Path of the checkpoint manifest for the sweep *sweep_id*."""
        return self.root / "sweeps" / sweep_id / "manifest.json"

    def put_manifest(self, sweep_id: str, payload: Dict) -> Path:
        """Atomically (re)write a sweep's checkpoint manifest."""
        path = self.manifest_path(sweep_id)
        self._atomic_write(path, payload)
        return path

    def get_manifest(self, sweep_id: str) -> Optional[Dict]:
        """A sweep's checkpoint manifest, or ``None`` (absent / unreadable)."""
        try:
            return json.loads(self.manifest_path(sweep_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self.keys()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupted": self.corrupted,
        }

    def reset_counters(self) -> None:
        """Zero the hit/miss/write/corruption counters (entries untouched)."""
        self.hits = self.misses = self.writes = self.corrupted = 0

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, {self.stats()})"
