"""repro.store — persistent, content-addressed result store.

The durable-computation layer under the sweep orchestrator
(:mod:`repro.experiments.sweep`), the experiment runner, the bench harness
and the verifier: every solved ``(instance, algorithm, config)`` triple is
keyed by a stable BLAKE2b fingerprint (the keying discipline of
:func:`repro.utils.rng.derive_seed`) and written atomically to disk, so

* an interrupted run resumes to a byte-identical result set — completed
  work is never recomputed, pending work recomputes to the same bytes; and
* a completed run re-executed against the same store performs **zero** new
  LP solves (every unit is a store hit).

Components
----------
* :mod:`~repro.store.fingerprint` — stable keys
  (:func:`instance_fingerprint`, :func:`config_fingerprint`,
  :func:`result_key`).
* :mod:`~repro.store.serialize` — the JSON report surface
  (:func:`report_to_dict` / :func:`report_from_dict`).
* :mod:`~repro.store.store` — :class:`ResultStore`: atomic writes,
  corruption quarantine, run archives, hit/miss accounting.
* :mod:`~repro.store.cache` — :func:`cached_solve`, the store-aware
  :func:`repro.api.solve`.
"""

from repro.store.fingerprint import (
    FINGERPRINT_SCHEMA,
    FingerprintError,
    canonical_json,
    config_fingerprint,
    grid_fingerprint,
    instance_fingerprint,
    result_key,
    text_key,
)
from repro.store.serialize import (
    MEASUREMENT_FIELDS,
    REPORT_SCHEMA,
    canonical_payload_bytes,
    report_from_dict,
    report_to_dict,
)
from repro.store.store import STORE_SCHEMA, ResultStore
from repro.store.cache import cacheable_config, cached_solve

__all__ = [
    "FINGERPRINT_SCHEMA",
    "FingerprintError",
    "MEASUREMENT_FIELDS",
    "REPORT_SCHEMA",
    "STORE_SCHEMA",
    "ResultStore",
    "cacheable_config",
    "cached_solve",
    "canonical_json",
    "canonical_payload_bytes",
    "config_fingerprint",
    "grid_fingerprint",
    "instance_fingerprint",
    "report_from_dict",
    "report_to_dict",
    "result_key",
    "text_key",
]
