"""Store-backed solving: skip any solve whose result is already on disk.

:func:`cached_solve` is the one choke point every store-aware caller goes
through — the sweep orchestrator, the experiment runner and (indirectly,
at scenario-block granularity) the verifier.  The contract:

* a **hit** returns the cached report surface without touching the LP
  solver at all;
* a **miss** dispatches through :func:`repro.api.solve`, then persists the
  surface so every later run — same process, another shard, a resumed
  sweep — hits;
* inputs with no stable identity are *bypassed*, never mis-cached: a config
  carrying a live generator, or a randomized algorithm without a pinned
  integer seed, solves normally and writes nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.api.batch import solve
from repro.api.registry import get_algorithm
from repro.api.report import SolveReport
from repro.api.request import SolverConfig
from repro.coflow.instance import CoflowInstance
from repro.core.timeindexed import CoflowLPSolution

from repro.store.fingerprint import FingerprintError, result_key
from repro.store.serialize import report_from_dict, report_to_dict
from repro.store.store import ResultStore


def cacheable_config(config: SolverConfig, algorithm: str) -> bool:
    """Whether ``(algorithm, config)`` results can be cached faithfully.

    ``False`` for configs whose ``rng`` is a live generator (no stable
    fingerprint) and for randomized algorithms without a pinned integer
    seed (two "identical" runs would legitimately differ).
    """
    if config.rng is not None and not isinstance(config.rng, int):
        return False
    info = get_algorithm(algorithm)
    if info.randomized and config.rng is None:
        return False
    return True


def cached_solve(
    instance: CoflowInstance,
    algorithm: str,
    *,
    store: Optional[ResultStore],
    config: Optional[SolverConfig] = None,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    """:func:`repro.api.solve` through *store* (``None`` disables caching).

    Returns the full in-memory report on a miss and the reconstructed
    surface (``schedule``/``lp_solution`` elided, see
    :mod:`repro.store.serialize`) on a hit; either way the report's
    objective, completion times, bound and timing are identical.
    """
    cfg = config if config is not None else SolverConfig()
    if store is None or not cacheable_config(cfg, algorithm):
        return solve(instance, algorithm, config=cfg, lp_solution=lp_solution)
    try:
        key = result_key(instance, algorithm, cfg)
    except FingerprintError:  # pragma: no cover - guarded by cacheable_config
        return solve(instance, algorithm, config=cfg, lp_solution=lp_solution)
    cached = store.get(key)
    if cached is not None:
        try:
            return report_from_dict(cached, instance)
        except (KeyError, TypeError, ValueError):
            # Structurally foreign payload under our key: recompute and
            # overwrite below rather than fail the run.
            pass
    report = solve(instance, algorithm, config=cfg, lp_solution=lp_solution)
    store.put(key, report_to_dict(report), kind="solve-report")
    return report
