"""The serialized *surface* of a :class:`~repro.api.report.SolveReport`.

The store does not persist the full in-memory report: LP solutions and slot
schedules are large, numpy-shaped and cheap to regenerate when actually
needed, while every consumer of cached results (sweeps, experiment tables,
bench trajectories, verification summaries) reads only the report surface —
objective, completion times, bound, timing and JSON-safe extras.  The
surface round-trips losslessly; ``schedule``/``lp_solution``/``feasibility``
come back as ``None`` with the original feasibility verdict preserved under
``extras["store_feasible"]``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

import numpy as np

from repro.api.report import SolveReport
from repro.coflow.instance import CoflowInstance

#: Version of the serialized report surface (stored in every entry; entries
#: with a different version are treated as misses, never misparsed).
REPORT_SCHEMA = 1


def _json_safe(value: object) -> bool:
    """Whether *value* serializes to JSON without custom encoding."""
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


def _clean_extras(extras: Dict[str, object]) -> Dict[str, object]:
    """JSON-serializable subset of *extras* (numpy scalars coerced).

    Non-serializable values (evaluation objects, schedules, ...) are
    dropped; their keys are recorded under ``"_dropped"`` so a reader can
    tell that information was elided rather than absent.
    """
    cleaned: Dict[str, object] = {}
    dropped: List[str] = []
    for key, value in extras.items():
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            value = value.item()
        elif isinstance(value, np.ndarray):
            value = value.tolist()
        if _json_safe(value):
            cleaned[key] = value
        else:
            dropped.append(key)
    if dropped:
        cleaned["_dropped"] = sorted(dropped)
    return cleaned


def report_to_dict(report: SolveReport) -> Dict:
    """The JSON-ready surface of *report* (see the module docstring)."""
    return {
        "report_schema": REPORT_SCHEMA,
        "algorithm": report.algorithm,
        "instance_name": report.instance.name,
        "num_coflows": int(report.instance.num_coflows),
        "num_flows": int(report.instance.num_flows),
        "model": report.instance.model.value,
        "objective": float(report.objective),
        "coflow_completion_times": [
            float(t) for t in report.coflow_completion_times
        ],
        "lower_bound": (
            None if report.lower_bound is None else float(report.lower_bound)
        ),
        "solve_seconds": (
            None if report.solve_seconds is None else float(report.solve_seconds)
        ),
        "feasible": bool(report.is_feasible),
        "had_schedule": report.schedule is not None,
        "had_lp_solution": report.lp_solution is not None,
        "extras": _clean_extras(report.extras),
    }


def report_from_dict(data: Dict, instance: CoflowInstance) -> SolveReport:
    """Rebuild the report surface for *instance* from :func:`report_to_dict`.

    The caller supplies the instance (the store key already pins its
    content, so any instance with the same fingerprint is *the* instance).
    Heavy fields are not resurrected: ``schedule``, ``lp_solution`` and
    ``feasibility`` are ``None``; the original verdict survives as
    ``extras["store_feasible"]``.
    """
    if data.get("report_schema") != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported report schema {data.get('report_schema')!r} "
            f"(expected {REPORT_SCHEMA})"
        )
    if data["num_coflows"] != instance.num_coflows:
        raise ValueError(
            f"cached report has {data['num_coflows']} coflows but the "
            f"instance has {instance.num_coflows}; wrong instance for entry"
        )
    extras = dict(data.get("extras", {}))
    extras["store_feasible"] = bool(data.get("feasible", True))
    report = SolveReport(
        algorithm=data["algorithm"],
        instance=instance,
        objective=float(data["objective"]),
        coflow_completion_times=np.asarray(
            data["coflow_completion_times"], dtype=float
        ),
        lower_bound=(
            None if data.get("lower_bound") is None else float(data["lower_bound"])
        ),
        solve_seconds=(
            None
            if data.get("solve_seconds") is None
            else float(data["solve_seconds"])
        ),
        extras=extras,
    )
    return report


#: Fields that record *how the run went*, not *what the result is* — they
#: legitimately differ between an interrupted-and-resumed run and an
#: uninterrupted one and are excluded from result-identity comparison.
MEASUREMENT_FIELDS = ("solve_seconds",)


def canonical_payload_bytes(payload: Dict, *, ignore_timing: bool = True) -> bytes:
    """Deterministic byte rendering of a payload (sorted keys, no spaces).

    What the resume tests compare: two result sets are *byte-identical*
    exactly when every entry's canonical payload bytes match.  By default
    the wall-clock :data:`MEASUREMENT_FIELDS` are dropped first — timing is
    measurement metadata, not result content.
    """
    if ignore_timing:
        payload = {
            key: value
            for key, value in payload.items()
            if key not in MEASUREMENT_FIELDS
        }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
