"""Stable content fingerprints for the result store.

Every cached result is addressed by a BLAKE2b fingerprint of
``(CoflowInstance, algorithm, SolverConfig)`` — the same keying discipline
as :func:`repro.utils.rng.derive_seed` (stateless, length-prefixed
components, endianness- and process-independent) and the LP program
fingerprint of :mod:`repro.lp.solver`.  The guarantees:

* the same logical inputs always produce the same key, in any process, on
  any platform — a store written by a sweep shard on one worker is readable
  by every other worker and by every later resume;
* any change to an input that can change the result changes the key.

What is *excluded* from the instance fingerprint is the instance ``name``:
two structurally identical instances that differ only in their label solve
identically, so they share one cache entry.

Randomness
----------
A :class:`~repro.api.request.SolverConfig` whose ``rng`` is a live
``numpy.random.Generator`` (or ``SeedSequence``) has no stable textual
identity — its future draws depend on hidden mutable state.  Such configs
raise :class:`FingerprintError`; callers that want caching must pin an
integer seed (or ``None``, which the cache layer refuses separately for
randomized algorithms — see :func:`repro.store.cache.cached_solve`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Optional

from repro.api.request import SolverConfig
from repro.coflow.instance import CoflowInstance
from repro.schedule.timegrid import TimeGrid

#: Bump when the fingerprint scheme (or the serialized report surface it
#: addresses) changes incompatibly; old entries then simply miss.
FINGERPRINT_SCHEMA = 1


class FingerprintError(ValueError):
    """Raised when an input has no stable fingerprint (e.g. a live RNG)."""


def _digest(parts: Iterable[bytes]) -> str:
    """Length-prefixed BLAKE2b over *parts* (unambiguous concatenation)."""
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(str(len(part)).encode("ascii") + b":" + part)
    return digest.hexdigest()


def canonical_json(payload: object) -> str:
    """The canonical JSON text of *payload*: sorted keys, no whitespace.

    Every fingerprint in the repository hashes this exact form; callers
    that need a stable textual identity (e.g. sweep ids) must use it too,
    so two serializations of the same document can never diverge.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def instance_fingerprint(instance: CoflowInstance) -> str:
    """Stable hex fingerprint of an instance's solver-visible content.

    Covers the transmission model, the graph (nodes, edges, capacities) and
    every coflow (weights, release times, flows with demands and pinned
    paths) via the canonical JSON serialization — everything an algorithm
    can observe.  The human-facing ``name`` is excluded so renamed copies
    share cache entries.
    """
    payload = instance.to_dict()
    payload.pop("name", None)
    payload["graph"].pop("name", None)
    return _digest([b"instance", canonical_json(payload).encode("utf-8")])


def grid_fingerprint(grid: Optional[TimeGrid]) -> str:
    """Fingerprint of an explicit grid (``"none"`` when unset)."""
    if grid is None:
        return "none"
    return grid.boundary_digest()


def config_fingerprint(config: SolverConfig) -> str:
    """Stable hex fingerprint of every result-affecting config field.

    Raises
    ------
    FingerprintError
        If ``config.rng`` is a live generator / seed sequence (no stable
        identity).  Integer seeds and ``None`` are fingerprintable.
    """
    if config.rng is not None and not isinstance(config.rng, int):
        raise FingerprintError(
            "SolverConfig.rng must be None or an integer seed to be "
            f"fingerprinted, got {type(config.rng).__name__}; pass a seed "
            "so cached results are reproducible"
        )
    fields = {
        "grid": grid_fingerprint(config.grid),
        "num_slots": config.num_slots,
        "slot_length": config.slot_length,
        "epsilon": config.epsilon,
        "rng": config.rng,
        "solver_method": config.solver_method,
        "num_samples": config.num_samples,
        "compact": config.compact,
        "verify": config.verify,
    }
    return _digest([b"config", canonical_json(fields).encode("utf-8")])


def result_key(
    instance: CoflowInstance, algorithm: str, config: SolverConfig
) -> str:
    """The store address of ``solve(instance, algorithm, config=config)``."""
    return _digest(
        [
            b"repro-store",
            str(FINGERPRINT_SCHEMA).encode("ascii"),
            instance_fingerprint(instance).encode("ascii"),
            algorithm.encode("utf-8"),
            config_fingerprint(config).encode("ascii"),
        ]
    )


def text_key(*parts: str) -> str:
    """A store key for free-form addresses (scenario blocks, manifests).

    Components are length-prefixed like every other fingerprint here, so
    ``("ab", "c")`` and ``("a", "bc")`` address different entries.
    """
    return _digest(
        [b"repro-store-text", str(FINGERPRINT_SCHEMA).encode("ascii")]
        + [part.encode("utf-8") for part in parts]
    )
