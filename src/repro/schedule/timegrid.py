"""Time grids: uniform slots and geometric (interval-indexed) slots.

The paper's main LP (Section 3) indexes time by unit slots ``[t-1, t]``.
Appendix A replaces the unit slots with geometric intervals
``tau_0 = 0, tau_1 = 1, tau_k = (1+eps)^(k-1)`` so that the number of
variables stays polynomial even when the horizon is huge, at the cost of a
``(1+eps)`` factor in the approximation guarantee.  Both are instances of the
same abstraction: an increasing sequence of slot boundaries.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Sequence

import numpy as np

from repro.utils.validation import check_positive

#: Decimal places the canonical (hash/equality) boundary representation is
#: rounded to.  1e-9 absolute is far below any meaningful slot length yet
#: far above the float noise accumulated when identical grids are rebuilt
#: from the same parameters.
_CANONICAL_DECIMALS = 9


def relative_tol(magnitude: float, base: float) -> float:
    """*base* scaled up with *magnitude* so it survives float rounding.

    An absolute tolerance like ``1e-12`` vanishes once times reach ~1e6
    (double precision resolves only ~1e-10 there), silently turning boundary
    comparisons exact.  Scaling by ``max(1, |magnitude|)`` keeps the
    tolerance meaningful at any horizon while preserving the original
    absolute value for small times.

    This is *the* boundary-tolerance discipline for time comparisons —
    shared by the grid methods below, the online epoch computation
    (:mod:`repro.online.batch`) and the online verification invariants —
    so a future tolerance change has exactly one site.
    """
    return base * max(1.0, abs(magnitude))


#: Backwards-compatible private alias (internal callers predate the rename).
_relative_tol = relative_tol


class TimeGrid:
    """An increasing sequence of slot boundaries ``0 = b_0 < b_1 < ... < b_T``.

    Slot ``t`` (1-based, following the paper) covers the half-open interval
    ``(b_{t-1}, b_t]``.  Internally slots are indexed 0-based; all public
    methods take 0-based slot indices and document the mapping.
    """

    def __init__(self, boundaries: Sequence[float] | np.ndarray) -> None:
        bounds = np.asarray(boundaries, dtype=float)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ValueError("a time grid needs at least two boundaries")
        if abs(bounds[0]) > 1e-12:
            raise ValueError(f"the first boundary must be 0, got {bounds[0]}")
        if not np.all(np.diff(bounds) > 1e-12):
            raise ValueError("boundaries must be strictly increasing")
        self._bounds = bounds
        self._durations = np.diff(bounds)
        # Canonical rounded boundaries back equality, hashing and the store
        # fingerprint: grids built twice from the same parameters agree
        # exactly, and sub-1e-9 float noise does not split cache keys.
        self._canonical = np.round(bounds, _CANONICAL_DECIMALS)
        self._canonical.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(cls, num_slots: int, slot_length: float = 1.0) -> "TimeGrid":
        """A grid of *num_slots* equal slots of *slot_length* each."""
        if num_slots < 1:
            raise ValueError("num_slots must be at least 1")
        check_positive(slot_length, "slot_length")
        bounds = np.arange(num_slots + 1, dtype=float) * slot_length
        return cls(bounds)

    @classmethod
    def geometric(cls, horizon: float, epsilon: float) -> "TimeGrid":
        """Geometric intervals covering ``[0, horizon]`` (paper Appendix A).

        Boundaries follow ``0, 1, (1+eps), (1+eps)^2, ...`` until the horizon
        is covered, with one refinement: in the paper's construction every
        interval groups whole unit time slots, so no interval can be shorter
        than one slot.  Each boundary therefore advances by at least 1
        (``b_{k+1} = max(b_k (1+eps), b_k + 1)``); once ``b_k >= 1/eps`` the
        grid is purely geometric and the number of slots is
        ``O(1/eps + log_{1+eps} horizon)``.  Without this floor the early,
        sub-slot intervals would let the interval-indexed completion-time
        bound (Eq. 16, which adds ``+1`` because completions happen on whole
        slots) exceed values achievable by interval-aligned schedules.
        """
        check_positive(horizon, "horizon")
        check_positive(epsilon, "epsilon")
        bounds = [0.0, 1.0]
        while bounds[-1] < horizon - 1e-12:
            last = bounds[-1]
            bounds.append(max(last * (1.0 + epsilon), last + 1.0))
        return cls(np.array(bounds))

    @classmethod
    def from_boundaries(cls, boundaries: Sequence[float]) -> "TimeGrid":
        """Arbitrary custom grid (used by tests)."""
        return cls(boundaries)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_slots(self) -> int:
        """Number of slots ``T``."""
        return self._durations.size

    @property
    def boundaries(self) -> np.ndarray:
        """Copy of the boundary array (length ``T + 1``)."""
        return self._bounds.copy()

    @property
    def durations(self) -> np.ndarray:
        """Slot durations ``b_t - b_{t-1}`` (length ``T``)."""
        return self._durations.copy()

    @property
    def horizon(self) -> float:
        """The final boundary ``b_T``."""
        return float(self._bounds[-1])

    @property
    def is_uniform(self) -> bool:
        """Whether all slots have (numerically) equal length."""
        return bool(np.allclose(self._durations, self._durations[0]))

    def slot_start(self, slot: int) -> float:
        """Left boundary of 0-based *slot*."""
        return float(self._bounds[self._check_slot(slot)])

    def slot_end(self, slot: int) -> float:
        """Right boundary of 0-based *slot*."""
        return float(self._bounds[self._check_slot(slot) + 1])

    def slot_duration(self, slot: int) -> float:
        """Length of 0-based *slot*."""
        return float(self._durations[self._check_slot(slot)])

    def _check_slot(self, slot: int) -> int:
        slot = int(slot)
        if not 0 <= slot < self.num_slots:
            raise IndexError(
                f"slot {slot} out of range for grid with {self.num_slots} slots"
            )
        return slot

    def slot_containing(self, time: float) -> int:
        """0-based index of the slot whose interval ``(b_{t-1}, b_t]`` holds *time*.

        ``time = 0`` maps to slot 0.  Times beyond the horizon raise.
        """
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        if time > self.horizon + _relative_tol(self.horizon, 1e-9):
            raise ValueError(
                f"time {time} is beyond the grid horizon {self.horizon}"
            )
        if time <= self._bounds[1]:
            return 0
        # searchsorted with side='left' gives the first boundary >= time.
        idx = int(
            np.searchsorted(
                self._bounds, time - _relative_tol(time, 1e-12), side="left"
            )
        )
        return min(idx - 1, self.num_slots - 1)

    def first_usable_slot(self, release_time: float) -> int:
        """First 0-based slot in which a flow released at *release_time* may send.

        Mirrors the LP release constraint (paper Eq. 4 / Eq. 17): slot ``t``
        is forbidden when ``release_time >= b_t`` (the slot's end), i.e. the
        first usable slot is the one whose end strictly exceeds the release
        time.
        """
        if release_time < 0:
            raise ValueError("release_time must be non-negative")
        usable = np.nonzero(
            self._bounds[1:] > release_time + _relative_tol(release_time, 1e-12)
        )[0]
        if usable.size == 0:
            raise ValueError(
                f"release time {release_time} is at or beyond the grid horizon "
                f"{self.horizon}"
            )
        return int(usable[0])

    def release_mask(self, release_times: np.ndarray) -> np.ndarray:
        """Boolean matrix ``allowed[flow, slot]`` implementing Eq. (4)/(17).

        ``allowed[f, t]`` is true when flow *f* may transmit during slot *t*,
        i.e. when its release time is strictly before the slot's end.
        """
        release = np.asarray(release_times, dtype=float).reshape(-1, 1)
        ends = self._bounds[1:].reshape(1, -1)
        tol = 1e-12 * np.maximum(1.0, np.abs(release))
        return ends > release + tol

    def refine_map(self, coarse: "TimeGrid") -> np.ndarray:
        """For each of this grid's slots, the *coarse* slot containing it.

        The workhorse of progressive grid refinement: a solution on a coarse
        grid is mapped onto this (finer) grid by giving every fine slot the
        time-proportional share of its containing coarse slot's allocation.
        Returns an int array of length ``num_slots`` with values in
        ``[0, coarse.num_slots)``.

        Fine slots are matched by midpoint containment, so this grid need
        not subdivide *coarse* exactly — any fine slot straddling a coarse
        boundary is attributed to the coarse slot holding its midpoint.
        Both grids must share horizon (within boundary tolerance); mapping
        against a shorter coarse grid would silently drop demand.
        """
        if self.horizon > coarse.horizon + relative_tol(coarse.horizon, 1e-9):
            raise ValueError(
                f"cannot refine: fine horizon {self.horizon} exceeds coarse "
                f"horizon {coarse.horizon}"
            )
        mids = 0.5 * (self._bounds[:-1] + self._bounds[1:])
        owner = np.searchsorted(coarse._bounds, mids, side="left") - 1
        return np.clip(owner, 0, coarse.num_slots - 1).astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_slots))

    def __len__(self) -> int:
        return self.num_slots

    def __eq__(self, other: object) -> bool:
        """Equality on the canonical (rounded) boundaries.

        Defined together with :meth:`__hash__` from the same canonical
        representation, so equal grids always hash equal — grids can be
        dict keys and members of result-store cache fingerprints.
        """
        if not isinstance(other, TimeGrid):
            return NotImplemented
        return self._canonical.shape == other._canonical.shape and bool(
            np.array_equal(self._canonical, other._canonical)
        )

    def __hash__(self) -> int:
        return hash((self.num_slots, self._canonical.tobytes()))

    def boundary_digest(self) -> str:
        """Hex BLAKE2b digest of the canonical boundaries.

        The stable fingerprint :mod:`repro.store` keys cached results on:
        identical grids (up to the canonical rounding that also backs
        ``__eq__``/``__hash__``) always digest identically, in any process,
        on any platform.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.ascontiguousarray(self._canonical).tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:
        kind = "uniform" if self.is_uniform else "geometric/custom"
        return (
            f"TimeGrid({kind}, slots={self.num_slots}, horizon={self.horizon:g})"
        )
