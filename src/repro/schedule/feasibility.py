"""Schedule feasibility checking.

Every algorithm in the library returns a :class:`~repro.schedule.schedule.Schedule`;
this module verifies such a schedule against the constraints of the paper's
Section 3: demand satisfaction (Eq. 1), release times (Eq. 4), edge
bandwidths (Eq. 6 / Eq. 10) and — for the free path model — flow
conservation at intermediate nodes (Eqs. 7–9).

The checker is used by the integration tests, the property-based tests and
(optionally) by the scheduler façade after every solve, so it is written to
be clear and vectorized rather than minimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.coflow.instance import TransmissionModel
from repro.schedule.schedule import Schedule

#: Default relative tolerance for all feasibility comparisons.
DEFAULT_TOL = 1e-6


@dataclass
class FeasibilityReport:
    """Outcome of checking a schedule.

    ``violations`` holds human-readable descriptions of every constraint
    violation found (possibly truncated — see ``max_reported``); ``is_feasible``
    is true when the list is empty.
    """

    is_feasible: bool
    violations: List[str] = field(default_factory=list)
    max_capacity_excess: float = 0.0
    max_conservation_error: float = 0.0
    max_demand_shortfall: float = 0.0

    def raise_if_infeasible(self) -> None:
        """Raise ``ValueError`` with the collected violations, if any."""
        if not self.is_feasible:
            detail = "\n  - ".join(self.violations[:20])
            raise ValueError(f"schedule is infeasible:\n  - {detail}")

    def __bool__(self) -> bool:
        return self.is_feasible


def check_feasibility(
    schedule: Schedule,
    *,
    tol: float = DEFAULT_TOL,
    require_complete: bool = True,
    max_reported: int = 50,
) -> FeasibilityReport:
    """Check *schedule* against all constraints of its transmission model.

    Parameters
    ----------
    schedule:
        The schedule to verify.
    tol:
        Absolute/relative tolerance for numerical comparisons.
    require_complete:
        When true (default), every flow must ship its entire demand
        (Eq. 1); set to false to validate partial schedules such as
        intermediate LP solutions.
    max_reported:
        Cap on the number of violation strings collected.
    """
    instance = schedule.instance
    grid = schedule.grid
    violations: List[str] = []
    max_cap_excess = 0.0
    max_cons_err = 0.0
    max_shortfall = 0.0

    def report(msg: str) -> None:
        if len(violations) < max_reported:
            violations.append(msg)

    # ---------------------------------------------------------------- #
    # non-negativity
    # ---------------------------------------------------------------- #
    if np.any(schedule.fractions < -tol):
        worst = float(schedule.fractions.min())
        report(f"negative transmission fraction found (min {worst:.3g})")
    if schedule.edge_fractions is not None and np.any(
        schedule.edge_fractions < -tol
    ):
        worst = float(schedule.edge_fractions.min())
        report(f"negative per-edge fraction found (min {worst:.3g})")

    # ---------------------------------------------------------------- #
    # demand satisfaction (Eq. 1)
    # ---------------------------------------------------------------- #
    totals = schedule.total_fractions()
    if require_complete:
        shortfall = 1.0 - totals
        max_shortfall = float(np.clip(shortfall, 0.0, None).max(initial=0.0))
        for ref in instance.flow_refs():
            if shortfall[ref.global_index] > tol:
                report(
                    f"flow {ref.label} only ships "
                    f"{totals[ref.global_index]:.6f} of its demand"
                )
    overshoot = totals - 1.0
    for ref in instance.flow_refs():
        if overshoot[ref.global_index] > 1e-3:
            report(
                f"flow {ref.label} ships {totals[ref.global_index]:.6f} "
                "(> 1) of its demand"
            )

    # ---------------------------------------------------------------- #
    # release times (Eq. 4 / Eq. 17)
    # ---------------------------------------------------------------- #
    release = instance.flow_release_times()
    allowed = grid.release_mask(release)
    early = (schedule.fractions > tol) & (~allowed)
    if early.any():
        flows_with_violation = np.nonzero(early.any(axis=1))[0]
        for f in flows_with_violation:
            ref = instance.flow_refs()[int(f)]
            first_bad = int(np.nonzero(early[f])[0][0])
            report(
                f"flow {ref.label} transmits in slot {first_bad} "
                f"(ends {grid.slot_end(first_bad):g}) before its release time "
                f"{ref.release_time:g}"
            )

    # ---------------------------------------------------------------- #
    # capacity constraints (Eq. 6 / Eq. 10)
    # ---------------------------------------------------------------- #
    missing_edge_fractions = (
        instance.model is TransmissionModel.FREE_PATH
        and schedule.edge_fractions is None
    )
    if missing_edge_fractions:
        # Without per-edge fractions neither capacity nor conservation can be
        # verified for the free path model.
        report("free path schedule is missing per-edge fractions")
    else:
        capacities = instance.graph.capacity_vector()
        durations = grid.durations
        load = schedule.edge_load()  # (slots, edges)
        limit = capacities.reshape(1, -1) * durations.reshape(-1, 1)
        excess = load - limit
        rel_excess = excess / np.maximum(limit, 1e-30)
        max_cap_excess = float(np.clip(rel_excess, 0.0, None).max(initial=0.0))
        bad = np.argwhere(rel_excess > tol * 10)
        edges = instance.graph.edges
        for slot, edge_idx in bad[:max_reported]:
            report(
                f"edge {edges[int(edge_idx)]} overloaded in slot {int(slot)}: "
                f"load {load[slot, edge_idx]:.4f} > capacity "
                f"{limit[slot, edge_idx]:.4f}"
            )

    # ---------------------------------------------------------------- #
    # flow conservation (free path only, Eqs. 7–9)
    # ---------------------------------------------------------------- #
    if instance.model is TransmissionModel.FREE_PATH and not missing_edge_fractions:
        max_cons_err = _check_conservation(schedule, tol, report)

    is_feasible = not violations
    return FeasibilityReport(
        is_feasible=is_feasible,
        violations=violations,
        max_capacity_excess=max_cap_excess,
        max_conservation_error=max_cons_err,
        max_demand_shortfall=max_shortfall,
    )


def _check_conservation(schedule: Schedule, tol: float, report) -> float:
    """Verify Eqs. (7)–(9) for a free path schedule; returns the worst error."""
    instance = schedule.instance
    graph = instance.graph
    edge_index = graph.edge_index()
    num_nodes = graph.num_nodes
    node_index = {node: i for i, node in enumerate(graph.nodes)}

    # Node-edge incidence: +1 when the edge leaves the node, -1 when it enters.
    out_matrix = np.zeros((num_nodes, graph.num_edges), dtype=float)
    in_matrix = np.zeros((num_nodes, graph.num_edges), dtype=float)
    for (u, v), e in edge_index.items():
        out_matrix[node_index[u], e] = 1.0
        in_matrix[node_index[v], e] = 1.0

    worst = 0.0
    fractions = schedule.fractions
    edge_fractions = schedule.edge_fractions
    assert edge_fractions is not None

    for ref in instance.flow_refs():
        f = ref.global_index
        src = node_index[ref.flow.source]
        dst = node_index[ref.flow.sink]
        # (slots, nodes): total fraction leaving / entering each node per slot
        leaving = edge_fractions[f] @ out_matrix.T
        entering = edge_fractions[f] @ in_matrix.T

        # Eq. (7): flow out of the source equals x_j^i(t).
        # In the presence of edges into the source we allow net outflow
        # (out - in) to equal x, which is the standard flow formulation and
        # is implied by (7)+(9) when no flow circulates through the source.
        src_err = np.abs(leaving[:, src] - entering[:, src] - fractions[f])
        dst_err = np.abs(entering[:, dst] - leaving[:, dst] - fractions[f])
        if src_err.max(initial=0.0) > tol * 10:
            slot = int(np.argmax(src_err))
            report(
                f"flow {ref.label}: source net outflow "
                f"{leaving[slot, src] - entering[slot, src]:.6f} != scheduled "
                f"fraction {fractions[f, slot]:.6f} in slot {slot}"
            )
        if dst_err.max(initial=0.0) > tol * 10:
            slot = int(np.argmax(dst_err))
            report(
                f"flow {ref.label}: sink net inflow "
                f"{entering[slot, dst] - leaving[slot, dst]:.6f} != scheduled "
                f"fraction {fractions[f, slot]:.6f} in slot {slot}"
            )
        worst = max(worst, float(src_err.max(initial=0.0)), float(dst_err.max(initial=0.0)))

        # Eq. (9): conservation at intermediate nodes.
        balance = entering - leaving
        balance[:, src] = 0.0
        balance[:, dst] = 0.0
        err = np.abs(balance)
        worst = max(worst, float(err.max(initial=0.0)))
        if err.max(initial=0.0) > tol * 10:
            slot, node = np.unravel_index(int(np.argmax(err)), err.shape)
            report(
                f"flow {ref.label}: conservation violated at node "
                f"{graph.nodes[int(node)]} in slot {int(slot)} "
                f"(imbalance {balance[slot, node]:.6f})"
            )
    return worst
