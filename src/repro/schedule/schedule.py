"""The schedule object produced by every algorithm in the library."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.schedule.timegrid import TimeGrid

#: Numerical tolerance used when deciding whether a fraction is "positive".
FRACTION_TOL = 1e-9


class Schedule:
    """Per-slot transmission fractions for every flow of an instance.

    Attributes
    ----------
    instance:
        The scheduling instance this schedule belongs to.
    grid:
        The time grid the schedule is expressed on.
    fractions:
        Array of shape ``(num_flows, num_slots)``; entry ``[f, t]`` is the
        fraction of flow *f*'s demand transmitted during slot *t* (the LP
        variable ``x_j^i(t)``).  Rows of a complete schedule sum to 1.
    edge_fractions:
        Only for the free path model: array of shape
        ``(num_flows, num_slots, num_edges)`` holding the per-edge split
        ``x_j^i(t, e)``.  For the single path model this is ``None`` (the
        split is implied by the pinned paths).
    """

    def __init__(
        self,
        instance: CoflowInstance,
        grid: TimeGrid,
        fractions: np.ndarray,
        edge_fractions: Optional[np.ndarray] = None,
        *,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        fractions = np.asarray(fractions, dtype=float)
        expected = (instance.num_flows, grid.num_slots)
        if fractions.shape != expected:
            raise ValueError(
                f"fractions must have shape {expected}, got {fractions.shape}"
            )
        if edge_fractions is not None:
            edge_fractions = np.asarray(edge_fractions, dtype=float)
            expected_e = (
                instance.num_flows,
                grid.num_slots,
                instance.graph.num_edges,
            )
            if edge_fractions.shape != expected_e:
                raise ValueError(
                    f"edge_fractions must have shape {expected_e}, "
                    f"got {edge_fractions.shape}"
                )
        self.instance = instance
        self.grid = grid
        self.fractions = fractions
        self.edge_fractions = edge_fractions
        self.metadata: Dict[str, object] = dict(metadata or {})

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, instance: CoflowInstance, grid: TimeGrid) -> "Schedule":
        """An all-zero schedule (nothing transmitted)."""
        fractions = np.zeros((instance.num_flows, grid.num_slots), dtype=float)
        edge_fractions = None
        if instance.model is TransmissionModel.FREE_PATH:
            edge_fractions = np.zeros(
                (instance.num_flows, grid.num_slots, instance.graph.num_edges),
                dtype=float,
            )
        return cls(instance, grid, fractions, edge_fractions)

    def copy(self) -> "Schedule":
        """Deep copy (fraction arrays are copied)."""
        return Schedule(
            self.instance,
            self.grid,
            self.fractions.copy(),
            None if self.edge_fractions is None else self.edge_fractions.copy(),
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_flows(self) -> int:
        return self.fractions.shape[0]

    @property
    def num_slots(self) -> int:
        return self.fractions.shape[1]

    @property
    def has_edge_fractions(self) -> bool:
        return self.edge_fractions is not None

    def total_fractions(self) -> np.ndarray:
        """Per-flow sum of scheduled fractions (1.0 for a complete schedule)."""
        return self.fractions.sum(axis=1)

    def cumulative_fractions(self) -> np.ndarray:
        """Per-flow cumulative fraction by the end of each slot.

        Shape ``(num_flows, num_slots)``; the LP's ``sum_{l<=t} x_j^i(l)``.
        """
        return np.cumsum(self.fractions, axis=1)

    def is_complete(self, tol: float = 1e-6) -> bool:
        """Whether every flow has (numerically) shipped its full demand."""
        return bool(np.all(self.total_fractions() >= 1.0 - tol))

    # ------------------------------------------------------------------ #
    # completion times
    # ------------------------------------------------------------------ #
    def flow_completion_slots(self, tol: float = FRACTION_TOL) -> np.ndarray:
        """0-based index of the last slot in which each flow transmits.

        Flows that never transmit get ``-1``.  This mirrors the paper's
        Eq. (12): the true completion time of a flow under an LP schedule is
        the last slot with a positive fraction.
        """
        positive = self.fractions > tol
        has_any = positive.any(axis=1)
        # argmax on the reversed axis finds the last positive slot.
        last = self.num_slots - 1 - np.argmax(positive[:, ::-1], axis=1)
        return np.where(has_any, last, -1)

    def flow_completion_times(self, tol: float = FRACTION_TOL) -> np.ndarray:
        """Completion time of each flow = end boundary of its last active slot.

        Flows that never transmit get 0.0 (they are vacuously complete only
        if their demand is zero, which the data model forbids — feasibility
        checking reports such flows as incomplete).
        """
        slots = self.flow_completion_slots(tol)
        ends = self.grid.boundaries[1:]
        times = np.where(slots >= 0, ends[np.clip(slots, 0, None)], 0.0)
        return times.astype(float)

    def coflow_completion_times(self, tol: float = FRACTION_TOL) -> np.ndarray:
        """Completion time of each coflow = max over its flows (paper Section 2)."""
        flow_times = self.flow_completion_times(tol)
        coflow_idx = self.instance.coflow_of_flow()
        times = np.zeros(self.instance.num_coflows, dtype=float)
        np.maximum.at(times, coflow_idx, flow_times)
        return times

    def weighted_completion_time(self, tol: float = FRACTION_TOL) -> float:
        """The objective ``sum_j w_j C_j`` of this schedule."""
        return float(
            np.dot(self.instance.weights, self.coflow_completion_times(tol))
        )

    def total_completion_time(self, tol: float = FRACTION_TOL) -> float:
        """Unweighted sum of coflow completion times (Figs. 11–12 metric)."""
        return float(self.coflow_completion_times(tol).sum())

    def makespan(self, tol: float = FRACTION_TOL) -> float:
        """Completion time of the last coflow."""
        times = self.coflow_completion_times(tol)
        return float(times.max()) if times.size else 0.0

    # ------------------------------------------------------------------ #
    # edge utilisation
    # ------------------------------------------------------------------ #
    def edge_load(self) -> np.ndarray:
        """Data volume crossing each edge in each slot.

        Returns an array of shape ``(num_slots, num_edges)``.  For the single
        path model the load is derived from the pinned paths; for the free
        path model it comes from the per-edge fractions.
        """
        graph = self.instance.graph
        num_edges = graph.num_edges
        demands = self.instance.demands()
        load = np.zeros((self.num_slots, num_edges), dtype=float)
        if self.edge_fractions is not None:
            # volume[f, t, e] = fraction on edge * demand of flow
            load = np.einsum("fte,f->te", self.edge_fractions, demands)
            return load
        edge_index = graph.edge_index()
        for ref in self.instance.flow_refs():
            flow = ref.flow
            if not flow.has_path:
                raise ValueError(
                    f"flow {ref.label} has no pinned path and the schedule has "
                    "no edge fractions; cannot compute edge load"
                )
            volumes = self.fractions[ref.global_index] * flow.demand
            for edge in flow.path_edges():
                load[:, edge_index[edge]] += volumes
        return load

    def edge_utilization(self) -> np.ndarray:
        """Per-slot, per-edge utilisation in [0, 1+] relative to capacity x duration."""
        load = self.edge_load()
        caps = self.instance.graph.capacity_vector().reshape(1, -1)
        durations = self.grid.durations.reshape(-1, 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            return load / (caps * durations)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def active_slots(self, tol: float = FRACTION_TOL) -> np.ndarray:
        """Boolean mask of slots in which any flow transmits."""
        return (self.fractions > tol).any(axis=0)

    def idle_slots(self, tol: float = FRACTION_TOL) -> np.ndarray:
        """0-based indices of completely idle slots."""
        return np.nonzero(~self.active_slots(tol))[0]

    def __repr__(self) -> str:
        return (
            f"Schedule(instance={self.instance.name!r}, "
            f"flows={self.num_flows}, slots={self.num_slots}, "
            f"complete={self.is_complete()})"
        )
