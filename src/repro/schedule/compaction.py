"""Idle-slot compaction (the paper's Section 6.1 "Rounding" refinement).

The Stretch algorithm leaves slots empty once a flow's demand has been met
(see the third panel of the paper's Figure 5).  The paper's implementation
"deals with this issue by moving the schedule of every time slot t to an
earlier idle slot t' if for all flows scheduled at t, its release time is
before t'".  This module implements exactly that transformation, plus a
per-flow truncation helper shared with the Stretch algorithm.

Compaction never increases any coflow's completion time and preserves
feasibility because entire slots are moved verbatim into idle slots of at
least the same duration.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.schedule.schedule import FRACTION_TOL, Schedule


def truncate_completed_flows(
    fractions: np.ndarray, tol: float = FRACTION_TOL
) -> np.ndarray:
    """Clamp each flow's cumulative fraction at 1, slot by slot.

    Given per-slot fractions that may sum to more than 1 (as produced by
    stretching an LP schedule), return fractions where transmission stops as
    soon as the cumulative total reaches 1 — step (4) of the Stretch
    algorithm ("once sigma units have been scheduled, leave the remaining
    slots empty").  Reducing per-slot volume can only relax capacity and
    conservation constraints, so feasibility is preserved.
    """
    fractions = np.asarray(fractions, dtype=float)
    cumulative = np.cumsum(fractions, axis=1)
    # Amount still allowed at the start of each slot.
    previous = np.concatenate(
        [np.zeros((fractions.shape[0], 1)), cumulative[:, :-1]], axis=1
    )
    allowed = np.clip(1.0 - previous, 0.0, None)
    truncated = np.minimum(fractions, allowed)
    return np.clip(truncated, 0.0, None)


def compact_schedule(
    schedule: Schedule,
    *,
    tol: float = FRACTION_TOL,
    respect_release_times: bool = True,
) -> Schedule:
    """Move whole slots earlier into idle slots when release times permit.

    The transformation scans slots left to right.  A slot *t* with any
    transmission is moved to the earliest idle slot *t'* < *t* such that

    * every flow transmitting in *t* has been released by the **start** of
      *t'* (slightly stricter than the LP's release rule, so the result is
      always feasible), and
    * slot *t'* is at least as long as slot *t* (automatically true on the
      uniform grids used by the main algorithm).

    Moving a whole slot keeps the per-slot multicommodity flow (or per-path
    loads) intact, so capacity and conservation constraints keep holding.

    Returns a new schedule; the input is unchanged.
    """
    result = schedule.copy()
    fractions = result.fractions
    edge_fractions = result.edge_fractions
    grid = result.grid
    release = result.instance.flow_release_times()

    active = (fractions > tol).any(axis=0)
    idle: List[int] = [int(s) for s in np.nonzero(~active)[0]]

    for t in range(result.num_slots):
        if not active[t]:
            continue
        flows_here = np.nonzero(fractions[:, t] > tol)[0]
        if flows_here.size == 0:
            continue
        latest_release = float(release[flows_here].max()) if respect_release_times else 0.0
        target: Optional[int] = None
        target_pos = -1
        for pos, candidate in enumerate(idle):
            if candidate >= t:
                break
            if grid.slot_duration(candidate) + 1e-12 < grid.slot_duration(t):
                continue
            if respect_release_times and grid.slot_start(candidate) < latest_release - 1e-12:
                continue
            target = candidate
            target_pos = pos
            break
        if target is None:
            continue
        # Move the whole slot t into the idle slot `target`.
        fractions[:, target] = fractions[:, t]
        fractions[:, t] = 0.0
        if edge_fractions is not None:
            edge_fractions[:, target, :] = edge_fractions[:, t, :]
            edge_fractions[:, t, :] = 0.0
        # Slot `target` is now busy, slot t becomes idle (and may be reused
        # by an even later slot).
        idle.pop(target_pos)
        # Keep the idle list sorted by inserting t in order.
        insert_at = 0
        while insert_at < len(idle) and idle[insert_at] < t:
            insert_at += 1
        idle.insert(insert_at, t)
        active[target] = True
        active[t] = False

    result.metadata["compacted"] = True
    return result


def compaction_gain(
    before: Schedule, after: Schedule, tol: float = FRACTION_TOL
) -> float:
    """Relative reduction in weighted completion time achieved by compaction.

    Returns ``(before - after) / before``; 0.0 when the original objective is
    zero.
    """
    base = before.weighted_completion_time(tol)
    if base <= 0:
        return 0.0
    return float((base - after.weighted_completion_time(tol)) / base)
