"""Completion-time metrics and schedule comparisons.

Thin functional wrappers around :class:`~repro.schedule.schedule.Schedule`
methods plus aggregate statistics used by the experiment reports (the
paper's figures report the weighted — Figs. 6–10 — or unweighted —
Figs. 11–12 — sum of coflow completion times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.schedule.schedule import FRACTION_TOL, Schedule


def flow_completion_times(schedule: Schedule, tol: float = FRACTION_TOL) -> np.ndarray:
    """Completion time of every flow (end of its last active slot)."""
    return schedule.flow_completion_times(tol)


def coflow_completion_times(
    schedule: Schedule, tol: float = FRACTION_TOL
) -> np.ndarray:
    """Completion time of every coflow (max over its flows)."""
    return schedule.coflow_completion_times(tol)


def weighted_completion_time(schedule: Schedule, tol: float = FRACTION_TOL) -> float:
    """The paper's objective ``sum_j w_j C_j``."""
    return schedule.weighted_completion_time(tol)


def total_completion_time(schedule: Schedule, tol: float = FRACTION_TOL) -> float:
    """Unweighted sum of coflow completion times."""
    return schedule.total_completion_time(tol)


def makespan(schedule: Schedule, tol: float = FRACTION_TOL) -> float:
    """Completion time of the last coflow."""
    return schedule.makespan(tol)


def average_slowdown(
    schedule: Schedule, baseline_times: np.ndarray, tol: float = FRACTION_TOL
) -> float:
    """Mean ratio of coflow completion times to *baseline_times*.

    Used in examples to express how much a shared schedule delays each coflow
    relative to running it alone on the network.
    """
    times = schedule.coflow_completion_times(tol)
    baseline = np.asarray(baseline_times, dtype=float)
    if baseline.shape != times.shape:
        raise ValueError("baseline_times must have one entry per coflow")
    if np.any(baseline <= 0):
        raise ValueError("baseline times must be strictly positive")
    return float(np.mean(times / baseline))


@dataclass
class ScheduleStats:
    """Aggregate statistics of a schedule for experiment reports."""

    weighted_completion_time: float
    total_completion_time: float
    makespan: float
    mean_completion_time: float
    median_completion_time: float
    p95_completion_time: float
    num_coflows: int
    num_flows: int
    num_slots: int
    mean_edge_utilization: float
    peak_edge_utilization: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "weighted_completion_time": self.weighted_completion_time,
            "total_completion_time": self.total_completion_time,
            "makespan": self.makespan,
            "mean_completion_time": self.mean_completion_time,
            "median_completion_time": self.median_completion_time,
            "p95_completion_time": self.p95_completion_time,
            "num_coflows": self.num_coflows,
            "num_flows": self.num_flows,
            "num_slots": self.num_slots,
            "mean_edge_utilization": self.mean_edge_utilization,
            "peak_edge_utilization": self.peak_edge_utilization,
        }


def schedule_stats(schedule: Schedule, tol: float = FRACTION_TOL) -> ScheduleStats:
    """Collect the standard statistics for a schedule."""
    times = schedule.coflow_completion_times(tol)
    utilization = schedule.edge_utilization()
    active = schedule.active_slots(tol)
    if active.any():
        active_util = utilization[active]
        mean_util = float(np.nanmean(active_util))
        peak_util = float(np.nanmax(active_util))
    else:
        mean_util = 0.0
        peak_util = 0.0
    return ScheduleStats(
        weighted_completion_time=schedule.weighted_completion_time(tol),
        total_completion_time=schedule.total_completion_time(tol),
        makespan=schedule.makespan(tol),
        mean_completion_time=float(times.mean()) if times.size else 0.0,
        median_completion_time=float(np.median(times)) if times.size else 0.0,
        p95_completion_time=float(np.percentile(times, 95)) if times.size else 0.0,
        num_coflows=schedule.instance.num_coflows,
        num_flows=schedule.instance.num_flows,
        num_slots=schedule.num_slots,
        mean_edge_utilization=mean_util,
        peak_edge_utilization=peak_util,
    )


def compare_to_lower_bound(
    objective_value: float, lower_bound: float
) -> float:
    """Ratio of an algorithm's objective to an LP lower bound (>= 1 - tol).

    Returns ``inf`` when the lower bound is zero (degenerate instances).
    """
    if lower_bound <= 0:
        return float("inf")
    return float(objective_value / lower_bound)


def completion_time_from_weighted(
    weighted_times: Dict[str, float], reference: Optional[str] = None
) -> Dict[str, float]:
    """Normalize a dict of algorithm -> objective by a reference entry.

    Handy for producing the "ratio to LP lower bound" rows of the experiment
    reports.  When *reference* is omitted the smallest value is used.
    """
    if not weighted_times:
        return {}
    if reference is None:
        reference = min(weighted_times, key=weighted_times.get)  # type: ignore[arg-type]
    base = weighted_times[reference]
    if base <= 0:
        raise ValueError(f"reference objective {reference!r} must be positive")
    return {name: value / base for name, value in weighted_times.items()}
