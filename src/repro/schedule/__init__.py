"""Schedule representation, feasibility checking, metrics and compaction.

A :class:`~repro.schedule.schedule.Schedule` stores, for every flow and time
slot, the fraction of the flow's demand transmitted in that slot (plus the
per-edge split for the free path model).  The surrounding modules provide:

* :class:`~repro.schedule.timegrid.TimeGrid` — uniform or geometric slot
  boundaries (paper Section 3 and Appendix A);
* :mod:`~repro.schedule.feasibility` — verification that a schedule satisfies
  demand, release-time, capacity and flow-conservation constraints;
* :mod:`~repro.schedule.metrics` — completion times and the weighted
  completion-time objective;
* :mod:`~repro.schedule.compaction` — the idle-slot compaction heuristic of
  the paper's Section 6.1.
"""

from repro.schedule.timegrid import TimeGrid
from repro.schedule.schedule import Schedule
from repro.schedule.feasibility import FeasibilityReport, check_feasibility
from repro.schedule.metrics import (
    coflow_completion_times,
    flow_completion_times,
    makespan,
    total_completion_time,
    weighted_completion_time,
)
from repro.schedule.compaction import compact_schedule
from repro.schedule.gantt import render_completion_summary, render_gantt

__all__ = [
    "render_gantt",
    "render_completion_summary",
    "TimeGrid",
    "Schedule",
    "FeasibilityReport",
    "check_feasibility",
    "flow_completion_times",
    "coflow_completion_times",
    "weighted_completion_time",
    "total_completion_time",
    "makespan",
    "compact_schedule",
]
