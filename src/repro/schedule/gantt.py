"""ASCII Gantt rendering of schedules.

Quick, dependency-free visualisation of slotted schedules for examples,
debugging and test failure messages: one row per flow (or per coflow), one
character column per time slot, where the glyph encodes how much of the
flow's demand is transmitted in that slot.

Example output::

    coflow   flow            |0         1         |
    red      f0 (v1->t)      |#         .         |
    blue     f0 (s->t)       |=======   .         |

Glyphs: ``#`` for a full slot (fraction close to the per-slot maximum),
``=`` / ``-`` / ``.`` for progressively smaller fractions, space for idle.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.schedule.schedule import FRACTION_TOL, Schedule

#: Glyphs from lowest positive intensity to highest.
_GLYPHS = (".", "-", "=", "#")


def _glyph(fraction: float, scale: float) -> str:
    """Pick the glyph for a per-slot fraction relative to *scale*."""
    if fraction <= FRACTION_TOL:
        return " "
    if scale <= FRACTION_TOL:
        return _GLYPHS[0]
    level = fraction / scale
    if level < 0.25:
        return _GLYPHS[0]
    if level < 0.5:
        return _GLYPHS[1]
    if level < 0.9:
        return _GLYPHS[2]
    return _GLYPHS[3]


def _time_ruler(num_slots: int, label_width: int) -> str:
    """A header row marking every tenth slot index."""
    cells = []
    for t in range(num_slots):
        if t % 10 == 0:
            marker = str(t)
            cells.append(marker[0])
        else:
            cells.append(" ")
    return " " * label_width + "|" + "".join(cells) + "|"


def render_gantt(
    schedule: Schedule,
    *,
    per_coflow: bool = False,
    max_slots: Optional[int] = 120,
    tol: float = FRACTION_TOL,
) -> str:
    """Render *schedule* as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        Any schedule (single path or free path).
    per_coflow:
        Aggregate the rows of a coflow into one line (sum of its flows'
        fractions per slot) instead of one line per flow.
    max_slots:
        Truncate the rendering after this many slots (``None`` = no limit);
        a trailing ``>`` marks truncation.
    tol:
        Fractions at or below this value render as idle.
    """
    instance = schedule.instance
    num_slots = schedule.num_slots
    shown_slots = num_slots if max_slots is None else min(num_slots, max_slots)
    truncated = shown_slots < num_slots

    if per_coflow:
        rows = np.zeros((instance.num_coflows, num_slots))
        labels: List[str] = []
        for j, coflow in enumerate(instance.coflows):
            labels.append(coflow.name or f"C{j}")
        for ref in instance.flow_refs():
            rows[ref.coflow_index] += schedule.fractions[ref.global_index]
        scales = np.maximum(rows.max(axis=1), tol)
    else:
        rows = schedule.fractions
        labels = [ref.label for ref in instance.flow_refs()]
        scales = np.maximum(rows.max(axis=1), tol)

    label_width = max((len(label) for label in labels), default=5) + 2
    lines = [_time_ruler(shown_slots, label_width)]
    for label, row, scale in zip(labels, rows, scales):
        glyphs = "".join(_glyph(float(row[t]), float(scale)) for t in range(shown_slots))
        suffix = ">" if truncated else "|"
        lines.append(label.ljust(label_width) + "|" + glyphs + suffix)
    footer = (
        f"slots shown: {shown_slots}/{num_slots}, slot length "
        f"{schedule.grid.slot_duration(0):g}; glyphs . - = # from light to full"
    )
    lines.append(footer)
    return "\n".join(lines)


def render_completion_summary(schedule: Schedule, tol: float = FRACTION_TOL) -> str:
    """One line per coflow: weight, completion time and contribution to the objective."""
    instance = schedule.instance
    times = schedule.coflow_completion_times(tol)
    lines = []
    width = max((len(c.name or f"C{j}") for j, c in enumerate(instance.coflows)), default=2)
    for j, coflow in enumerate(instance.coflows):
        name = coflow.name or f"C{j}"
        lines.append(
            f"{name.ljust(width)}  weight {coflow.weight:8.2f}  "
            f"C_j = {times[j]:8.2f}  contribution {coflow.weight * times[j]:10.2f}"
        )
    lines.append(
        f"total weighted completion time: {schedule.weighted_completion_time(tol):.2f}"
    )
    return "\n".join(lines)
