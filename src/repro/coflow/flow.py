"""A single flow: one point-to-point transfer demand inside a coflow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class Flow:
    """One transfer demand ``f_j^i = (s_j^i, t_j^i, sigma_j^i)``.

    Parameters
    ----------
    source:
        Source node label (must exist in the instance's network graph).
    sink:
        Destination node label.
    demand:
        Amount of data to ship (``sigma`` in the paper), in the same units
        as edge capacity × one time slot.  Must be strictly positive.
    path:
        Optional pinned path for the *single path* model, given as a tuple of
        node labels starting at ``source`` and ending at ``sink``.  Ignored by
        the free path model.
    release_time:
        Earliest (continuous) time at which the flow may be transmitted.
        Flows inherit their coflow's release time when not set explicitly;
        the effective release time is the maximum of the two.

    Notes
    -----
    ``Flow`` is an immutable value object so that it can be shared freely
    between instances, schedules and LP builders without defensive copies.
    """

    source: str
    sink: str
    demand: float
    path: Optional[Tuple[str, ...]] = None
    release_time: float = 0.0
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        check_positive(self.demand, "demand")
        check_nonnegative(self.release_time, "release_time")
        if self.source == self.sink:
            raise ValueError(
                f"flow source and sink must differ, both are {self.source!r}"
            )
        if self.path is not None:
            path = tuple(self.path)
            object.__setattr__(self, "path", path)
            if len(path) < 2:
                raise ValueError("a path must contain at least two nodes")
            if path[0] != self.source:
                raise ValueError(
                    f"path must start at the flow source {self.source!r}, "
                    f"starts at {path[0]!r}"
                )
            if path[-1] != self.sink:
                raise ValueError(
                    f"path must end at the flow sink {self.sink!r}, "
                    f"ends at {path[-1]!r}"
                )
            if len(set(path)) != len(path):
                raise ValueError(f"path must not repeat nodes: {path!r}")

    @property
    def has_path(self) -> bool:
        """Whether a single-path routing has been pinned for this flow."""
        return self.path is not None

    def path_edges(self) -> Tuple[Tuple[str, str], ...]:
        """The directed edges traversed by the pinned path.

        The tuple is computed once and cached on the (immutable) flow, so LP
        builders and simulators may call this in hot loops without
        re-materializing it.

        Raises
        ------
        ValueError
            If the flow has no pinned path.
        """
        if self.path is None:
            raise ValueError("flow has no pinned path")
        cached = self.__dict__.get("_path_edges_cache")
        if cached is None:
            cached = tuple(zip(self.path[:-1], self.path[1:]))
            object.__setattr__(self, "_path_edges_cache", cached)
        return cached

    def with_path(self, path: Tuple[str, ...]) -> "Flow":
        """Return a copy of this flow pinned to *path*."""
        return Flow(
            source=self.source,
            sink=self.sink,
            demand=self.demand,
            path=tuple(path),
            release_time=self.release_time,
            name=self.name,
        )

    def with_release_time(self, release_time: float) -> "Flow":
        """Return a copy of this flow with a new release time."""
        return Flow(
            source=self.source,
            sink=self.sink,
            demand=self.demand,
            path=self.path,
            release_time=release_time,
            name=self.name,
        )

    def scaled(self, factor: float) -> "Flow":
        """Return a copy with the demand multiplied by *factor* (> 0)."""
        check_positive(factor, "factor")
        return Flow(
            source=self.source,
            sink=self.sink,
            demand=self.demand * factor,
            path=self.path,
            release_time=self.release_time,
            name=self.name,
        )

    def to_dict(self) -> dict:
        """Plain-dict representation (for trace serialization)."""
        return {
            "source": self.source,
            "sink": self.sink,
            "demand": self.demand,
            "path": list(self.path) if self.path is not None else None,
            "release_time": self.release_time,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Flow":
        """Inverse of :meth:`to_dict`."""
        path = data.get("path")
        return cls(
            source=data["source"],
            sink=data["sink"],
            demand=float(data["demand"]),
            path=tuple(path) if path else None,
            release_time=float(data.get("release_time", 0.0)),
            name=data.get("name"),
        )
