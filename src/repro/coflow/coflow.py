"""A coflow: a weighted collection of flows that completes together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Tuple

from repro.coflow.flow import Flow
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class Coflow:
    """A coflow ``F_j`` with weight ``w_j`` and flows ``f_j^1 ... f_j^{n_j}``.

    A coflow is *completed* at the earliest time by which every one of its
    flows has shipped its full demand (paper Section 2).  The scheduling
    objective is the weighted sum of coflow completion times.

    Parameters
    ----------
    flows:
        Non-empty sequence of :class:`~repro.coflow.flow.Flow`.
    weight:
        Priority weight ``w_j`` (> 0).  The unweighted experiments of the
        paper (Figs. 11–12) simply use weight 1 for every coflow.
    release_time:
        Earliest time any of the coflow's flows may start.  Individual flows
        may additionally carry their own (later) release times.
    name:
        Optional human-readable identifier used in reports.
    """

    flows: Tuple[Flow, ...]
    weight: float = 1.0
    release_time: float = 0.0
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        flows = tuple(self.flows)
        object.__setattr__(self, "flows", flows)
        if not flows:
            raise ValueError("a coflow must contain at least one flow")
        for flow in flows:
            if not isinstance(flow, Flow):
                raise TypeError(f"expected Flow, got {type(flow).__name__}")
        check_positive(self.weight, "weight")
        check_nonnegative(self.release_time, "release_time")

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    def __len__(self) -> int:
        return len(self.flows)

    @property
    def num_flows(self) -> int:
        """Number of flows ``n_j`` in the coflow."""
        return len(self.flows)

    @property
    def total_demand(self) -> float:
        """Sum of flow demands (the coflow's total bytes)."""
        return float(sum(flow.demand for flow in self.flows))

    @property
    def max_demand(self) -> float:
        """Largest single-flow demand in the coflow."""
        return float(max(flow.demand for flow in self.flows))

    def effective_release_time(self, flow: Flow) -> float:
        """The release time that actually binds a member flow."""
        return max(self.release_time, flow.release_time)

    def endpoints(self) -> set[str]:
        """All node labels used as a source or sink by the coflow."""
        nodes: set[str] = set()
        for flow in self.flows:
            nodes.add(flow.source)
            nodes.add(flow.sink)
        return nodes

    def all_paths_pinned(self) -> bool:
        """Whether every flow carries a pinned path (single path model ready)."""
        return all(flow.has_path for flow in self.flows)

    def with_weight(self, weight: float) -> "Coflow":
        """Return a copy with a different weight."""
        return Coflow(
            flows=self.flows,
            weight=weight,
            release_time=self.release_time,
            name=self.name,
        )

    def with_release_time(self, release_time: float) -> "Coflow":
        """Return a copy with a different release time."""
        return Coflow(
            flows=self.flows,
            weight=self.weight,
            release_time=release_time,
            name=self.name,
        )

    def with_flows(self, flows: Iterable[Flow]) -> "Coflow":
        """Return a copy with a different flow set."""
        return Coflow(
            flows=tuple(flows),
            weight=self.weight,
            release_time=self.release_time,
            name=self.name,
        )

    def unweighted(self) -> "Coflow":
        """Return a copy with weight 1 (used by the Terra comparison)."""
        return self.with_weight(1.0)

    def to_dict(self) -> dict:
        """Plain-dict representation (for trace serialization)."""
        return {
            "weight": self.weight,
            "release_time": self.release_time,
            "name": self.name,
            "flows": [flow.to_dict() for flow in self.flows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Coflow":
        """Inverse of :meth:`to_dict`."""
        return cls(
            flows=tuple(Flow.from_dict(f) for f in data["flows"]),
            weight=float(data.get("weight", 1.0)),
            release_time=float(data.get("release_time", 0.0)),
            name=data.get("name"),
        )
