"""A coflow scheduling instance: a network plus the coflows to schedule on it."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.coflow.coflow import Coflow
from repro.coflow.flow import Flow
from repro.network.graph import NetworkGraph


class TransmissionModel(str, enum.Enum):
    """The two transmission models studied by the paper (Section 2).

    ``SINGLE_PATH``
        Every flow is pinned to a given path; only edge bandwidths constrain
        the schedule (paper Eq. 6).  This is Jahanjou et al.'s
        "circuit-based coflows with paths given" model.
    ``FREE_PATH``
        Per-slot transmissions form a feasible multicommodity flow; data may
        split and merge arbitrarily (paper Eqs. 7–10).  Introduced by Terra.
    """

    SINGLE_PATH = "single_path"
    FREE_PATH = "free_path"

    @classmethod
    def parse(cls, value: "TransmissionModel | str") -> "TransmissionModel":
        """Accept either an enum member or its string name/value."""
        if isinstance(value, cls):
            return value
        key = str(value).strip().lower().replace("-", "_")
        for member in cls:
            if member.value == key or member.name.lower() == key:
                return member
        raise ValueError(
            f"unknown transmission model {value!r}; "
            f"expected one of {[m.value for m in cls]}"
        )


@dataclass(frozen=True)
class FlowRef:
    """A (coflow index, flow index) pair with a dense global index.

    LP builders and schedules address flows by their global index so that
    schedule matrices can be plain numpy arrays.
    """

    coflow_index: int
    flow_index: int
    global_index: int
    flow: Flow
    coflow: Coflow

    @property
    def release_time(self) -> float:
        """The binding release time of this flow."""
        return self.coflow.effective_release_time(self.flow)

    @property
    def demand(self) -> float:
        return self.flow.demand

    @property
    def label(self) -> str:
        """Readable identifier, e.g. ``C3.f1 (a->b)``."""
        cname = self.coflow.name or f"C{self.coflow_index}"
        fname = self.flow.name or f"f{self.flow_index}"
        return f"{cname}.{fname} ({self.flow.source}->{self.flow.sink})"


class CoflowInstance:
    """A complete scheduling problem: ``(G, c)`` plus the coflow set ``J``.

    Parameters
    ----------
    graph:
        The capacitated network.
    coflows:
        The coflows to schedule.  Order is preserved and used as the coflow
        index everywhere in the library.
    model:
        Which transmission model this instance is intended for.  Single path
        instances must have a pinned path on every flow and the paths must
        exist in the graph; free path instances only need connectivity.
    name:
        Optional label used in experiment reports.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        coflows: Sequence[Coflow],
        *,
        model: TransmissionModel | str = TransmissionModel.FREE_PATH,
        name: Optional[str] = None,
        validate: bool = True,
    ) -> None:
        self._graph = graph
        self._coflows: Tuple[Coflow, ...] = tuple(coflows)
        self._model = TransmissionModel.parse(model)
        self._name = name or f"instance-{self._model.value}"
        if not self._coflows:
            raise ValueError("an instance must contain at least one coflow")
        self._flow_refs: Tuple[FlowRef, ...] = self._build_flow_refs()
        buckets: List[List[FlowRef]] = [[] for _ in self._coflows]
        for ref in self._flow_refs:
            buckets[ref.coflow_index].append(ref)
        self._flows_by_coflow: Tuple[Tuple[FlowRef, ...], ...] = tuple(
            tuple(bucket) for bucket in buckets
        )
        # Lazily computed, cached numpy views (see _frozen_array).
        self._array_cache: Dict[str, np.ndarray] = {}
        self._path_incidence_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if validate:
            self.validate()

    def _frozen_array(self, key: str, build) -> np.ndarray:
        """Build-once cache for derived arrays, returned read-only.

        The arrays are shared between callers (LP builders, simulators,
        baselines), so they are marked non-writeable; callers that need a
        mutable copy must copy explicitly.
        """
        cached = self._array_cache.get(key)
        if cached is None:
            cached = np.asarray(build())
            cached.setflags(write=False)
            self._array_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> NetworkGraph:
        return self._graph

    @property
    def coflows(self) -> Tuple[Coflow, ...]:
        return self._coflows

    @property
    def model(self) -> TransmissionModel:
        return self._model

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_coflows(self) -> int:
        return len(self._coflows)

    @property
    def num_flows(self) -> int:
        """Total number of flows across all coflows."""
        return len(self._flow_refs)

    @property
    def weights(self) -> np.ndarray:
        """Coflow weights as a float array indexed by coflow index (cached)."""
        return self._frozen_array(
            "weights", lambda: np.array([c.weight for c in self._coflows], dtype=float)
        )

    @property
    def release_times(self) -> np.ndarray:
        """Coflow release times as a float array indexed by coflow index (cached)."""
        return self._frozen_array(
            "release_times",
            lambda: np.array([c.release_time for c in self._coflows], dtype=float),
        )

    def _build_flow_refs(self) -> Tuple[FlowRef, ...]:
        refs: List[FlowRef] = []
        for j, coflow in enumerate(self._coflows):
            for i, flow in enumerate(coflow.flows):
                refs.append(
                    FlowRef(
                        coflow_index=j,
                        flow_index=i,
                        global_index=len(refs),
                        flow=flow,
                        coflow=coflow,
                    )
                )
        return tuple(refs)

    # ------------------------------------------------------------------ #
    # flow enumeration
    # ------------------------------------------------------------------ #
    def flow_refs(self) -> Tuple[FlowRef, ...]:
        """All flows with their dense global indices (stable ordering)."""
        return self._flow_refs

    def iter_flows(self) -> Iterator[FlowRef]:
        return iter(self._flow_refs)

    def flows_of(self, coflow_index: int) -> Tuple[FlowRef, ...]:
        """Flow refs belonging to the coflow at *coflow_index* (precomputed)."""
        return self._flows_by_coflow[coflow_index]

    def flow_ref(self, coflow_index: int, flow_index: int) -> FlowRef:
        """Look up a flow ref by (coflow, flow) position."""
        for ref in self._flow_refs:
            if ref.coflow_index == coflow_index and ref.flow_index == flow_index:
                return ref
        raise KeyError(f"no flow ({coflow_index}, {flow_index}) in instance")

    def demands(self) -> np.ndarray:
        """Flow demands as a float array indexed by global flow index (cached)."""
        return self._frozen_array(
            "demands",
            lambda: np.array([r.demand for r in self._flow_refs], dtype=float),
        )

    def flow_release_times(self) -> np.ndarray:
        """Effective flow release times indexed by global flow index (cached)."""
        return self._frozen_array(
            "flow_release_times",
            lambda: np.array([r.release_time for r in self._flow_refs], dtype=float),
        )

    def coflow_of_flow(self) -> np.ndarray:
        """Coflow index of each flow, indexed by global flow index (cached)."""
        return self._frozen_array(
            "coflow_of_flow",
            lambda: np.array([r.coflow_index for r in self._flow_refs], dtype=int),
        )

    def coflow_release_times(self) -> np.ndarray:
        """Earliest release time of each coflow, min over its flows (cached)."""

        def build() -> np.ndarray:
            release = np.full(self.num_coflows, np.inf)
            for ref in self._flow_refs:
                release[ref.coflow_index] = min(
                    release[ref.coflow_index], ref.release_time
                )
            return release

        return self._frozen_array("coflow_release_times", build)

    def coflow_total_demands(self) -> np.ndarray:
        """Total demand of each coflow, indexed by coflow index (cached)."""
        return self._frozen_array(
            "coflow_total_demands",
            lambda: np.bincount(
                self.coflow_of_flow(),
                weights=self.demands(),
                minlength=self.num_coflows,
            ),
        )

    def path_edge_incidence(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flow→edge incidence of the pinned paths, as parallel COO arrays.

        Returns ``(flow_ids, edge_ids)``: entry *k* says the flow with global
        index ``flow_ids[k]`` traverses the edge with dense index
        ``edge_ids[k]``.  Entries are ordered flow-major, path-order minor.
        Computed once and cached; this is the array the vectorized LP builder
        and the simulator's rate allocator share.

        Raises
        ------
        ValueError
            If some flow has no pinned path.
        """
        if self._path_incidence_cache is None:
            edge_index = self._graph.edge_index()
            flow_ids: List[int] = []
            edge_ids: List[int] = []
            for ref in self._flow_refs:
                if not ref.flow.has_path:
                    raise ValueError(
                        f"path incidence requires a pinned path on flow {ref.label}"
                    )
                for edge in ref.flow.path_edges():
                    flow_ids.append(ref.global_index)
                    edge_ids.append(edge_index[edge])
            flows = np.array(flow_ids, dtype=np.int64)
            edges = np.array(edge_ids, dtype=np.int64)
            flows.setflags(write=False)
            edges.setflags(write=False)
            self._path_incidence_cache = (flows, edges)
        return self._path_incidence_cache

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def total_demand(self) -> float:
        """Sum of all flow demands in the instance."""
        return float(self.demands().sum())

    def max_release_time(self) -> float:
        """Latest effective release time over all flows."""
        return float(self.flow_release_times().max(initial=0.0))

    def horizon_upper_bound(self) -> int:
        """A safe integral upper bound ``T`` on the schedule makespan.

        Any released flow can always ship at least ``min_capacity`` units per
        slot along some path once scheduled alone, so serialising all flows
        after the last release time bounds the horizon.  The bound is loose
        but only affects LP size, not correctness; callers typically pass a
        tighter, workload-aware horizon.
        """
        min_cap = self._graph.min_capacity()
        serial_slots = int(np.ceil(self.total_demand() / min_cap)) + self.num_flows
        return int(np.ceil(self.max_release_time())) + max(serial_slots, 1)

    def trivial_lower_bound(self) -> float:
        """A weak per-coflow lower bound on the weighted completion time.

        Each coflow needs at least ``ceil(max flow demand / max capacity)``
        slots after its release time; summing the weighted bounds gives an
        instance-level sanity lower bound used in tests.
        """
        max_cap = self._graph.max_capacity()
        total = 0.0
        for coflow in self._coflows:
            slots = np.ceil(coflow.max_demand / max_cap)
            total += coflow.weight * (coflow.release_time + max(slots, 1.0))
        return float(total)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def with_model(self, model: TransmissionModel | str) -> "CoflowInstance":
        """Return a copy of the instance for a different transmission model."""
        return CoflowInstance(
            self._graph,
            self._coflows,
            model=model,
            name=self._name,
        )

    def with_coflows(self, coflows: Sequence[Coflow]) -> "CoflowInstance":
        """Return a copy with a different coflow set (same graph and model)."""
        return CoflowInstance(
            self._graph, coflows, model=self._model, name=self._name
        )

    def unweighted(self) -> "CoflowInstance":
        """Copy of the instance with all coflow weights set to 1."""
        return self.with_coflows([c.unweighted() for c in self._coflows])

    def without_release_times(self) -> "CoflowInstance":
        """Copy of the instance with all release times reset to 0."""
        new = []
        for coflow in self._coflows:
            flows = [f.with_release_time(0.0) for f in coflow.flows]
            new.append(coflow.with_flows(flows).with_release_time(0.0))
        return self.with_coflows(new)

    def subset(self, coflow_indices: Sequence[int]) -> "CoflowInstance":
        """Instance restricted to the given coflow indices (order preserved)."""
        chosen = [self._coflows[i] for i in coflow_indices]
        return self.with_coflows(chosen)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the instance is well formed for its transmission model.

        Raises
        ------
        ValueError
            If an endpoint is missing from the graph, a pinned path uses a
            missing edge, a single-path instance has unpinned flows, or a
            free-path instance has a disconnected source/sink pair.
        """
        for ref in self._flow_refs:
            flow = ref.flow
            for endpoint in (flow.source, flow.sink):
                if not self._graph.has_node(endpoint):
                    raise ValueError(
                        f"flow {ref.label} endpoint {endpoint!r} is not a node of "
                        f"graph {self._graph.name!r}"
                    )
            if self._model is TransmissionModel.SINGLE_PATH:
                if not flow.has_path:
                    raise ValueError(
                        f"single path instance requires a pinned path on every "
                        f"flow; {ref.label} has none"
                    )
                self._graph.validate_path(flow.path)  # type: ignore[arg-type]
            else:
                if not self._graph.is_connected(flow.source, flow.sink):
                    raise ValueError(
                        f"no directed path from {flow.source!r} to {flow.sink!r} "
                        f"for flow {ref.label}"
                    )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable representation of the instance."""
        return {
            "name": self._name,
            "model": self._model.value,
            "graph": {
                "name": self._graph.name,
                "nodes": list(self._graph.nodes),
                "edges": [
                    {"source": u, "sink": v, "capacity": cap}
                    for (u, v), cap in self._graph.capacities().items()
                ],
            },
            "coflows": [c.to_dict() for c in self._coflows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoflowInstance":
        """Inverse of :meth:`to_dict`."""
        graph_data = data["graph"]
        graph = NetworkGraph(
            [
                (e["source"], e["sink"], float(e["capacity"]))
                for e in graph_data["edges"]
            ],
            nodes=graph_data.get("nodes"),
            name=graph_data.get("name", "network"),
        )
        coflows = [Coflow.from_dict(c) for c in data["coflows"]]
        return cls(
            graph,
            coflows,
            model=data.get("model", TransmissionModel.FREE_PATH),
            name=data.get("name"),
        )

    def save_json(self, path: str | Path) -> None:
        """Write the instance to a JSON file (atomic temp+rename)."""
        from repro.utils.io import atomic_write_json

        atomic_write_json(path, self.to_dict())

    @classmethod
    def load_json(cls, path: str | Path) -> "CoflowInstance":
        """Read an instance previously written by :meth:`save_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (
            f"CoflowInstance(name={self._name!r}, model={self._model.value!r}, "
            f"coflows={self.num_coflows}, flows={self.num_flows}, "
            f"graph={self._graph.name!r})"
        )
