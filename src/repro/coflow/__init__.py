"""Coflow data model.

A :class:`~repro.coflow.flow.Flow` is a single point-to-point demand, a
:class:`~repro.coflow.coflow.Coflow` is a weighted set of flows that completes
only when all of its flows have completed, and a
:class:`~repro.coflow.instance.CoflowInstance` couples a set of coflows with
the :class:`~repro.network.graph.NetworkGraph` they must be scheduled on.
"""

from repro.coflow.flow import Flow
from repro.coflow.coflow import Coflow
from repro.coflow.instance import CoflowInstance, TransmissionModel

__all__ = ["Flow", "Coflow", "CoflowInstance", "TransmissionModel"]
