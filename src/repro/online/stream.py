"""Arrival streams: the input abstraction of the online scheduling engine.

An :class:`ArrivalStream` is a coflow instance viewed *online*: a
time-ordered sequence of arrival events, one per coflow, at the coflow's
release time.  The engine (:mod:`repro.online.engine`) consumes streams and
reveals each coflow to the policy only at its arrival — policies never see
demands, weights or endpoints of a coflow before it arrives.

Streams can be built from three sources:

* :meth:`ArrivalStream.from_instance` — any :class:`CoflowInstance`; the
  release times already on the instance define the arrivals.  This is the
  path the registered online algorithms use, so every workload the offline
  solvers accept is an online workload too.
* :meth:`ArrivalStream.from_scenario` — a scenario address
  ``(family, index, root_seed)`` of the engine in
  :mod:`repro.scenarios.engine` (e.g. the ``online-poisson`` and
  ``bursty-arrivals`` families).  Streams built from the same address are
  bit-identical in any process — the scenario engine's reproducibility
  contract carries over to online replays.
* :meth:`ArrivalStream.from_trace` — a saved JSON trace replayed through
  :func:`repro.workloads.traces.replay_trace` onto a (possibly different)
  topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.network.graph import NetworkGraph
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class Arrival:
    """One arrival event: coflow *coflow_index* becomes known at *time*."""

    time: float
    coflow_index: int


class ArrivalStream:
    """A coflow instance plus its time-ordered arrival sequence.

    Arrivals are ordered by release time, ties broken by coflow index, so
    the event order is deterministic for any instance.
    """

    def __init__(self, instance: CoflowInstance, *, name: Optional[str] = None):
        self._instance = instance
        self._name = name or instance.name
        release = instance.coflow_release_times()
        order = np.lexsort((np.arange(instance.num_coflows), release))
        self._arrivals: Tuple[Arrival, ...] = tuple(
            Arrival(time=float(release[j]), coflow_index=int(j)) for j in order
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_instance(cls, instance: CoflowInstance) -> "ArrivalStream":
        """The stream defined by the instance's own release times."""
        return cls(instance)

    @classmethod
    def from_scenario(
        cls, family: str, index: int, root_seed: int = 0
    ) -> "ArrivalStream":
        """The stream of the scenario at address ``(root_seed, family, index)``.

        Bit-reproducible: the same address always yields the same stream, in
        any process (see :func:`repro.scenarios.engine.build_scenario`).
        """
        from repro.scenarios.engine import build_scenario

        scenario = build_scenario(family, index, root_seed)
        return cls(
            scenario.instance, name=f"{family}#{index}@{root_seed}"
        )

    @classmethod
    def from_trace(
        cls,
        path: str | Path,
        graph: Optional[NetworkGraph] = None,
        *,
        model: TransmissionModel | str = TransmissionModel.FREE_PATH,
        rng: RandomSource = None,
    ) -> "ArrivalStream":
        """Replay a saved JSON trace as a stream (default target: SWAN).

        Full-instance traces replay onto their own topology unless *graph*
        overrides it; bare coflow traces need *graph* (or fall back to the
        SWAN WAN) — see :func:`repro.workloads.traces.replay_trace`.
        """
        from repro.network.topologies import swan_topology
        from repro.workloads.traces import load_trace, replay_coflows

        trace = load_trace(path)
        if isinstance(trace, CoflowInstance) and graph is None:
            return cls(trace, name=f"trace:{Path(path).stem}")
        coflows = (
            list(trace.coflows) if isinstance(trace, CoflowInstance) else trace
        )
        target = graph if graph is not None else swan_topology()
        instance = replay_coflows(
            coflows,
            target,
            model=model,
            rng=rng,
            name=f"trace:{Path(path).stem}",
        )
        return cls(instance)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> CoflowInstance:
        return self._instance

    @property
    def name(self) -> str:
        return self._name

    @property
    def arrivals(self) -> Tuple[Arrival, ...]:
        """All arrival events, time-ordered (ties by coflow index)."""
        return self._arrivals

    @property
    def num_arrivals(self) -> int:
        return len(self._arrivals)

    @property
    def last_arrival_time(self) -> float:
        return self._arrivals[-1].time if self._arrivals else 0.0

    def __len__(self) -> int:
        return len(self._arrivals)

    def __repr__(self) -> str:
        return (
            f"ArrivalStream({self._name!r}, arrivals={self.num_arrivals}, "
            f"span=[0, {self.last_arrival_time:g}])"
        )
