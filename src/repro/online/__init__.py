"""Online coflow scheduling (the paper's Section 7 outlook).

The paper's conclusion points to online scheduling as the next challenge and
cites Khuller et al. (LATIN 2018), whose framework turns any offline
approximation for weighted completion time into an online algorithm by
batching jobs over geometrically growing intervals.  This package implements
that framework — and two event-driven alternatives — on top of the offline
algorithms of :mod:`repro.core`:

* :mod:`~repro.online.stream` — :class:`ArrivalStream`: instances, scenario
  addresses and saved traces viewed as time-ordered arrival sequences;
* :mod:`~repro.online.engine` — :class:`OnlineEngine`: the event loop
  (arrivals, epoch closes, batch drains) that runs a policy over a stream
  and records first-service evidence for the verification invariants;
* :mod:`~repro.online.policies` — the policies behind one interface:
  generalized geometric batching (configurable base, optional
  work-conserving early start), the incremental re-solve policy
  (per-arrival re-prioritization via warm-started remaining-time LPs) and
  the non-clairvoyant WSJF baseline.  All four registry entries
  (``online-batch``, ``online-batch-wc``, ``online-resolve``,
  ``online-wsjf``) carry the ``online=True`` capability flag and flow
  through ``solve()``, ``repro sweep`` and ``repro verify``;
* :func:`~repro.online.batch.online_batch_schedule` /
  :func:`~repro.online.batch.greedy_online_schedule` — the original
  single-shot entry points, kept for compatibility (the engine reproduces
  ``online_batch_schedule`` exactly when early start is off).
"""

from repro.online.batch import (
    BatchRecord,
    OnlineScheduleResult,
    greedy_online_schedule,
    online_batch_schedule,
)
from repro.online.engine import OnlineEngine
from repro.online.policies import (
    ONLINE_ALGORITHMS,
    GeometricBatchingPolicy,
    IncrementalResolvePolicy,
    OnlinePolicy,
    WSJFPolicy,
    run_online_policy,
)
from repro.online.stream import Arrival, ArrivalStream

__all__ = [
    "Arrival",
    "ArrivalStream",
    "BatchRecord",
    "GeometricBatchingPolicy",
    "IncrementalResolvePolicy",
    "ONLINE_ALGORITHMS",
    "OnlineEngine",
    "OnlinePolicy",
    "OnlineScheduleResult",
    "WSJFPolicy",
    "greedy_online_schedule",
    "online_batch_schedule",
    "run_online_policy",
]
