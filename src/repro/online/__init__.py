"""Online coflow scheduling (the paper's Section 7 outlook).

The paper's conclusion points to online scheduling as the next challenge and
cites Khuller et al. (LATIN 2018), whose framework turns any offline
approximation for weighted completion time into an online algorithm by
batching jobs over geometrically growing intervals.  This package implements
that framework on top of the offline algorithms of :mod:`repro.core`:

* :func:`~repro.online.batch.online_batch_schedule` — the doubling /
  batching framework: coflows released during one epoch are scheduled
  together (with the offline LP heuristic or Stretch) once the epoch closes
  and the previous batch has drained;
* :func:`~repro.online.batch.greedy_online_schedule` — a simple
  non-clairvoyant baseline that re-runs a priority rule at every release
  (used to show what the LP batching buys).
"""

from repro.online.batch import (
    OnlineScheduleResult,
    greedy_online_schedule,
    online_batch_schedule,
)

__all__ = [
    "OnlineScheduleResult",
    "online_batch_schedule",
    "greedy_online_schedule",
]
