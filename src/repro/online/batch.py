"""Online coflow scheduling via geometric batching (doubling framework).

The classical reduction from offline to online minimisation of weighted
completion time (Hall et al.; applied to coflows by Khuller et al., LATIN
2018 — reference [17] of the paper) works as follows:

* Time is divided into geometrically growing epochs ``[B^(k-1), B^k)``
  (``B = 2`` gives the classic doubling framework).
* When an epoch ends, all coflows released during it are handed to an
  *offline* scheduler as one batch, with release times reset to the batch
  start.
* A batch begins transmitting only when (a) its epoch has ended and (b) the
  previous batch has completely drained; batches therefore never overlap and
  every batch schedule remains feasible on its own.

If the offline scheduler is a ``rho``-approximation, the online algorithm is
``O(rho)``-competitive.  Here the offline scheduler is either the LP
heuristic (λ = 1) or the Stretch algorithm from :mod:`repro.core`, so the
resulting online scheduler inherits the paper's guarantees up to the
batching constant.

This module targets the *completion time* objective, as the paper notes that
online *flow time* is a much harder open problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

# No repro.api import at module level: repro.api.__init__ imports
# repro.online.policies (which imports this module) to register the online
# algorithms, so pulling the api package in here would make the import
# order observable.  online_batch_schedule imports what it needs lazily.
from repro.coflow.instance import CoflowInstance
from repro.schedule.timegrid import relative_tol
from repro.sim.simulator import simulate_priority_schedule, static_order_priority
from repro.sim.rate_allocation import coflow_standalone_time
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive

#: The offline algorithms the framework's guarantees are stated for.  Any
#: algorithm registered in :mod:`repro.api` (and supporting the instance's
#: transmission model) is accepted; delegating to a baseline yields an
#: online variant of that baseline instead of the paper's guarantee.
OFFLINE_ALGORITHMS = ("lp-heuristic", "stretch", "stretch-best")


@dataclass
class BatchRecord:
    """Bookkeeping for one scheduled batch (used in reports and tests)."""

    epoch_index: int
    epoch_end: float
    start_time: float
    makespan: float
    coflow_indices: List[int] = field(default_factory=list)
    offline_objective: float = 0.0
    #: LP lower bound of the batch sub-problem; ``None`` when the delegated
    #: offline algorithm solves no LP (e.g. a greedy baseline).
    lp_lower_bound: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON rendering (crosses the store / export boundary)."""
        return {
            "epoch_index": int(self.epoch_index),
            "epoch_end": float(self.epoch_end),
            "start_time": float(self.start_time),
            "makespan": float(self.makespan),
            "coflow_indices": [int(j) for j in self.coflow_indices],
            "offline_objective": float(self.offline_objective),
            "lp_lower_bound": (
                None if self.lp_lower_bound is None else float(self.lp_lower_bound)
            ),
        }


@dataclass
class OnlineScheduleResult:
    """Outcome of an online scheduling run.

    Completion times are reported in the original (global) time axis, so the
    weighted completion time is directly comparable with offline schedules
    of the same instance.
    """

    instance: CoflowInstance
    algorithm: str
    coflow_completion_times: np.ndarray
    batches: List[BatchRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def weighted_completion_time(self) -> float:
        return float(np.dot(self.instance.weights, self.coflow_completion_times))

    @property
    def total_completion_time(self) -> float:
        return float(self.coflow_completion_times.sum())

    @property
    def makespan(self) -> float:
        return float(self.coflow_completion_times.max(initial=0.0))

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    def competitive_ratio(self, offline_objective: float) -> float:
        """Ratio of the online objective to a given offline objective/bound."""
        if offline_objective <= 0:
            return float("inf")
        return self.weighted_completion_time / offline_objective


def _boundary_tol(magnitude: float) -> float:
    """Relative epoch-boundary tolerance — the shared ``TimeGrid`` discipline."""
    return relative_tol(magnitude, 1e-12)


def _epoch_index(release_time: float, base: float) -> int:
    """Index of the geometric epoch ``[base^(k-1), base^k)`` containing *release_time*.

    Epoch 0 is ``[0, 1)`` so that jobs released at time zero are scheduled
    after one unit of waiting at most.

    Computed from ``log(release)/log(base)`` but corrected with a relative
    boundary tolerance: the log ratio of a release *exactly at* ``base**k``
    can round just below the integer (e.g. ``log(1000)/log(10) =
    2.9999999999999996``), which would land the coflow in the epoch
    *ending* at its release instead of the one starting there.
    """
    if release_time < 0.5:  # comfortably inside epoch 0 (log(0) is -inf)
        return 0
    k = int(np.floor(np.log(release_time) / np.log(base)))
    tol = _boundary_tol(release_time)
    # Release at (or within tolerance of) the upper boundary base**(k+1):
    # the log ratio rounded below the integer — it belongs to the epoch
    # starting there.
    while base ** (k + 1) <= release_time + tol:
        k += 1
    # Symmetric guard: the ratio rounded up past the integer (release just
    # below base**k reported as epoch k + 1).
    while base**k > release_time + tol:
        k -= 1
    # Sub-1 releases collapse into epoch 0 regardless of how negative the
    # log ratio was (epoch 0 covers all of [0, 1)).
    return max(k + 1, 0)


def _epoch_end(epoch: int, base: float) -> float:
    return float(base**epoch)


def online_batch_schedule(
    instance: CoflowInstance,
    *,
    base: float = 2.0,
    offline_algorithm: str = "lp-heuristic",
    slot_length: float = 1.0,
    rng: RandomSource = None,
    verify: bool = True,
) -> OnlineScheduleResult:
    """Schedule *instance* online with the geometric batching framework.

    Parameters
    ----------
    instance:
        The coflow instance; release times define when coflows become known.
    base:
        Epoch growth factor (``2`` = doubling).  Must be > 1.
    offline_algorithm:
        Which offline algorithm schedules each batch — any name registered
        in :mod:`repro.api` (``"lp-heuristic"``, ``"stretch"`` and
        ``"stretch-best"`` carry the paper's approximation guarantee).
    slot_length:
        Slot length of the per-batch time-indexed LPs.
    rng:
        Randomness for the Stretch variants.
    verify:
        Whether the per-batch schedules are feasibility-checked.
    """
    from repro.api.batch import solve
    from repro.api.registry import get_algorithm
    from repro.api.request import SolverConfig

    check_positive(base - 1.0, "base - 1")
    info = get_algorithm(offline_algorithm)
    info.check_supports(instance.model)
    offline_config = SolverConfig(slot_length=slot_length, rng=rng, verify=verify)

    release = instance.release_times
    epochs: Dict[int, List[int]] = {}
    for j, r in enumerate(release):
        epochs.setdefault(_epoch_index(float(r), base), []).append(j)

    completion = np.zeros(instance.num_coflows, dtype=float)
    batches: List[BatchRecord] = []
    current_time = 0.0

    for epoch in sorted(epochs):
        members = epochs[epoch]
        epoch_end = _epoch_end(epoch, base)
        batch_start = max(current_time, epoch_end)
        # Build the batch sub-instance with release times reset: by the time
        # the batch starts, every member has been released.
        coflows = []
        for j in members:
            coflow = instance.coflows[j]
            flows = [f.with_release_time(0.0) for f in coflow.flows]
            coflows.append(coflow.with_flows(flows).with_release_time(0.0))
        batch_instance = CoflowInstance(
            instance.graph,
            coflows,
            model=instance.model,
            name=f"{instance.name}-epoch{epoch}",
        )
        report = solve(batch_instance, offline_algorithm, config=offline_config)
        batch_times = report.coflow_completion_times
        for local_j, j in enumerate(members):
            completion[j] = batch_start + float(batch_times[local_j])
        makespan = float(batch_times.max(initial=0.0))
        batches.append(
            BatchRecord(
                epoch_index=epoch,
                epoch_end=epoch_end,
                start_time=batch_start,
                makespan=makespan,
                coflow_indices=list(members),
                offline_objective=report.objective,
                lp_lower_bound=report.lower_bound,
            )
        )
        current_time = batch_start + makespan

    return OnlineScheduleResult(
        instance=instance,
        algorithm=f"online-batch[{offline_algorithm}]",
        coflow_completion_times=completion,
        batches=batches,
        metadata={"base": base, "num_epochs": len(epochs)},
    )


#: Weights at or below this are treated as zero by :func:`wsjf_ratios`.
WEIGHT_TOL = 1e-12


def wsjf_ratios(standalone: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``standalone / weight`` ratios with zero/near-zero weights guarded.

    A coflow whose weight underflows to (near) zero contributes nothing to
    the objective, so it deterministically gets the *worst* ratio
    (``inf`` — scheduled last) instead of emitting a divide RuntimeWarning
    and letting ``0/0 = nan`` scramble the sort order.
    """
    weights = np.asarray(weights, dtype=float)
    standalone = np.asarray(standalone, dtype=float)
    ratio = np.full(standalone.shape, np.inf)
    positive = weights > WEIGHT_TOL
    ratio[positive] = standalone[positive] / weights[positive]
    return ratio


def wsjf_order(instance: CoflowInstance) -> tuple:
    """The static WSJF priority order with its standalone times.

    Returns ``(order, standalone)``: coflow indices sorted by full-demand
    ``standalone time / weight`` (ties by index, zero weights last — see
    :func:`wsjf_ratios`).  The one implementation behind both
    :func:`greedy_online_schedule` and the ``online-wsjf`` policy, so the
    two can never drift apart.
    """
    standalone = np.array(
        [coflow_standalone_time(instance, j) for j in range(instance.num_coflows)]
    )
    ratio = wsjf_ratios(standalone, instance.weights)
    order = sorted(range(instance.num_coflows), key=lambda j: (ratio[j], j))
    return order, standalone


def greedy_online_schedule(instance: CoflowInstance) -> OnlineScheduleResult:
    """A non-clairvoyant online baseline: *static* weighted-SJF.

    The priority order is computed **once**, from the full-demand standalone
    time / weight ratio of every coflow, and held fixed for the whole run;
    the continuous-time simulator handles releases, preemption and work
    conservation under that static order.  (The per-arrival *re-evaluating*
    variant — recompute priorities from remaining demand at every release —
    is the ``online-resolve`` policy of :mod:`repro.online.policies`, run
    through the event engine.)  Unlike the batching framework this baseline
    never waits, so it is strong on lightly loaded instances and degrades
    when large low-value coflows arrive early.
    """
    order, standalone = wsjf_order(instance)
    sim = simulate_priority_schedule(instance, static_order_priority(order))
    # Metadata crosses serialization boundaries (repro.store, CSV/JSON
    # export), so it is normalized to plain JSON types here — never raw
    # numpy arrays.
    return OnlineScheduleResult(
        instance=instance,
        algorithm="online-greedy-wsjf",
        coflow_completion_times=sim.coflow_completion_times,
        metadata={
            "standalone_times": [float(s) for s in standalone],
            "order": [int(j) for j in order],
        },
    )
