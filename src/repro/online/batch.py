"""Online coflow scheduling via geometric batching (doubling framework).

The classical reduction from offline to online minimisation of weighted
completion time (Hall et al.; applied to coflows by Khuller et al., LATIN
2018 — reference [17] of the paper) works as follows:

* Time is divided into geometrically growing epochs ``[B^(k-1), B^k)``
  (``B = 2`` gives the classic doubling framework).
* When an epoch ends, all coflows released during it are handed to an
  *offline* scheduler as one batch, with release times reset to the batch
  start.
* A batch begins transmitting only when (a) its epoch has ended and (b) the
  previous batch has completely drained; batches therefore never overlap and
  every batch schedule remains feasible on its own.

If the offline scheduler is a ``rho``-approximation, the online algorithm is
``O(rho)``-competitive.  Here the offline scheduler is either the LP
heuristic (λ = 1) or the Stretch algorithm from :mod:`repro.core`, so the
resulting online scheduler inherits the paper's guarantees up to the
batching constant.

This module targets the *completion time* objective, as the paper notes that
online *flow time* is a much harder open problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import SolverConfig, get_algorithm, solve
from repro.coflow.instance import CoflowInstance
from repro.sim.simulator import simulate_priority_schedule, static_order_priority
from repro.sim.rate_allocation import coflow_standalone_time
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive

#: The offline algorithms the framework's guarantees are stated for.  Any
#: algorithm registered in :mod:`repro.api` (and supporting the instance's
#: transmission model) is accepted; delegating to a baseline yields an
#: online variant of that baseline instead of the paper's guarantee.
OFFLINE_ALGORITHMS = ("lp-heuristic", "stretch", "stretch-best")


@dataclass
class BatchRecord:
    """Bookkeeping for one scheduled batch (used in reports and tests)."""

    epoch_index: int
    epoch_end: float
    start_time: float
    makespan: float
    coflow_indices: List[int] = field(default_factory=list)
    offline_objective: float = 0.0
    #: LP lower bound of the batch sub-problem; ``None`` when the delegated
    #: offline algorithm solves no LP (e.g. a greedy baseline).
    lp_lower_bound: Optional[float] = None


@dataclass
class OnlineScheduleResult:
    """Outcome of an online scheduling run.

    Completion times are reported in the original (global) time axis, so the
    weighted completion time is directly comparable with offline schedules
    of the same instance.
    """

    instance: CoflowInstance
    algorithm: str
    coflow_completion_times: np.ndarray
    batches: List[BatchRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def weighted_completion_time(self) -> float:
        return float(np.dot(self.instance.weights, self.coflow_completion_times))

    @property
    def total_completion_time(self) -> float:
        return float(self.coflow_completion_times.sum())

    @property
    def makespan(self) -> float:
        return float(self.coflow_completion_times.max(initial=0.0))

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    def competitive_ratio(self, offline_objective: float) -> float:
        """Ratio of the online objective to a given offline objective/bound."""
        if offline_objective <= 0:
            return float("inf")
        return self.weighted_completion_time / offline_objective


def _epoch_index(release_time: float, base: float) -> int:
    """Index of the geometric epoch ``[base^(k-1), base^k)`` containing *release_time*.

    Epoch 0 is ``[0, 1)`` so that jobs released at time zero are scheduled
    after one unit of waiting at most.
    """
    if release_time < 1.0:
        return 0
    return int(np.floor(np.log(release_time) / np.log(base))) + 1


def _epoch_end(epoch: int, base: float) -> float:
    return float(base**epoch)


def online_batch_schedule(
    instance: CoflowInstance,
    *,
    base: float = 2.0,
    offline_algorithm: str = "lp-heuristic",
    slot_length: float = 1.0,
    rng: RandomSource = None,
    verify: bool = True,
) -> OnlineScheduleResult:
    """Schedule *instance* online with the geometric batching framework.

    Parameters
    ----------
    instance:
        The coflow instance; release times define when coflows become known.
    base:
        Epoch growth factor (``2`` = doubling).  Must be > 1.
    offline_algorithm:
        Which offline algorithm schedules each batch — any name registered
        in :mod:`repro.api` (``"lp-heuristic"``, ``"stretch"`` and
        ``"stretch-best"`` carry the paper's approximation guarantee).
    slot_length:
        Slot length of the per-batch time-indexed LPs.
    rng:
        Randomness for the Stretch variants.
    verify:
        Whether the per-batch schedules are feasibility-checked.
    """
    check_positive(base - 1.0, "base - 1")
    info = get_algorithm(offline_algorithm)
    info.check_supports(instance.model)
    offline_config = SolverConfig(slot_length=slot_length, rng=rng, verify=verify)

    release = instance.release_times
    epochs: Dict[int, List[int]] = {}
    for j, r in enumerate(release):
        epochs.setdefault(_epoch_index(float(r), base), []).append(j)

    completion = np.zeros(instance.num_coflows, dtype=float)
    batches: List[BatchRecord] = []
    current_time = 0.0

    for epoch in sorted(epochs):
        members = epochs[epoch]
        epoch_end = _epoch_end(epoch, base)
        batch_start = max(current_time, epoch_end)
        # Build the batch sub-instance with release times reset: by the time
        # the batch starts, every member has been released.
        coflows = []
        for j in members:
            coflow = instance.coflows[j]
            flows = [f.with_release_time(0.0) for f in coflow.flows]
            coflows.append(coflow.with_flows(flows).with_release_time(0.0))
        batch_instance = CoflowInstance(
            instance.graph,
            coflows,
            model=instance.model,
            name=f"{instance.name}-epoch{epoch}",
        )
        report = solve(batch_instance, offline_algorithm, config=offline_config)
        batch_times = report.coflow_completion_times
        for local_j, j in enumerate(members):
            completion[j] = batch_start + float(batch_times[local_j])
        makespan = float(batch_times.max(initial=0.0))
        batches.append(
            BatchRecord(
                epoch_index=epoch,
                epoch_end=epoch_end,
                start_time=batch_start,
                makespan=makespan,
                coflow_indices=list(members),
                offline_objective=report.objective,
                lp_lower_bound=report.lower_bound,
            )
        )
        current_time = batch_start + makespan

    return OnlineScheduleResult(
        instance=instance,
        algorithm=f"online-batch[{offline_algorithm}]",
        coflow_completion_times=completion,
        batches=batches,
        metadata={"base": base, "num_epochs": len(epochs)},
    )


def greedy_online_schedule(instance: CoflowInstance) -> OnlineScheduleResult:
    """A non-clairvoyant online baseline: weighted-SJF re-evaluated at releases.

    At every event the released, unfinished coflow with the smallest
    ``standalone time / weight`` ratio gets priority; the continuous-time
    simulator handles preemption and work conservation.  Unlike the batching
    framework this baseline never waits, so it is strong on lightly loaded
    instances and degrades when large low-value coflows arrive early.
    """
    standalone = np.array(
        [coflow_standalone_time(instance, j) for j in range(instance.num_coflows)]
    )
    ratio = standalone / instance.weights
    order = sorted(range(instance.num_coflows), key=lambda j: (ratio[j], j))
    sim = simulate_priority_schedule(instance, static_order_priority(order))
    return OnlineScheduleResult(
        instance=instance,
        algorithm="online-greedy-wsjf",
        coflow_completion_times=sim.coflow_completion_times,
        metadata={"standalone_times": standalone},
    )
