"""Online scheduling policies and their registry entries.

Three policy families share the engine interface of
:mod:`repro.online.engine`:

======================  ====================================================
policy                  decision rule
======================  ====================================================
geometric batching      coflows released in epoch ``[B^(k-1), B^k)`` are
                        batched when the epoch closes and the previous batch
                        has drained, then scheduled by a registered offline
                        algorithm with releases reset — ``O(rho)``-
                        competitive when the offline algorithm is a
                        ``rho``-approximation (Khuller et al., LATIN 2018).
                        ``early_start=True`` adds a work-conserving variant
                        that dispatches everything already arrived whenever
                        the network is idle instead of waiting for the
                        boundary (a heuristic: the constant-factor proof
                        does not cover it).
incremental re-solve    on every arrival, re-prioritize all released
                        coflows by *remaining* standalone time / weight.
                        The remaining standalone times are max-concurrent-
                        flow LP solves through the warm-started persistent
                        HiGHS models of :mod:`repro.lp.persistent` (the
                        allocator memoizes per residual signature), and the
                        schedule is executed by the incremental simulator.
non-clairvoyant WSJF    the static weighted-SJF baseline: one full-demand
                        standalone/weight ordering, held fixed.
======================  ====================================================

The module registers four algorithms in :mod:`repro.api.registry` with the
``online=True`` capability flag — ``online-batch``, ``online-batch-wc``,
``online-resolve`` and ``online-wsjf`` — so online scheduling flows through
``solve()`` / ``solve_many()``, ``repro sweep``, the result store and
``repro verify`` exactly like the offline algorithms.  Policy knobs beyond
the registered defaults (epoch base, delegated offline algorithm) are
available programmatically and through the ``repro online`` CLI command.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

# Submodule imports (not the repro.api package): repro.api.__init__ imports
# this module while it is still initializing.
from repro.api.registry import get_algorithm, register_algorithm
from repro.api.report import SolveReport
from repro.api.request import SolverConfig
from repro.coflow.instance import CoflowInstance
from repro.core.timeindexed import CoflowLPSolution
from repro.sim.rate_allocation import RATE_TOL, max_concurrent_rate
from repro.sim.simulator import (
    PriorityFunction,
    array_priority,
    static_order_priority,
)
from repro.utils.validation import check_positive

from repro.online.batch import (
    OFFLINE_ALGORITHMS,
    OnlineScheduleResult,
    _boundary_tol,
    _epoch_index,
    wsjf_order,
    wsjf_ratios,
)
from repro.online.stream import ArrivalStream


class OnlinePolicy:
    """Base class: a named policy of one engine *kind* (batching/priority)."""

    kind: str = ""
    name: str = ""
    #: Batching policies delegate batches here; priority policies keep the
    #: attribute for a uniform interface (unused).
    offline_algorithm: str = ""
    base: float = 0.0
    early_start: bool = False


# --------------------------------------------------------------------------- #
# generalized geometric batching
# --------------------------------------------------------------------------- #
class GeometricBatchingPolicy(OnlinePolicy):
    """Geometric (doubling for ``base=2``) batching over an offline solver.

    Parameters
    ----------
    base:
        Epoch growth factor (> 1); epoch ``k >= 1`` covers
        ``[base^(k-1), base^k)`` and epoch 0 covers ``[0, 1)``.
    offline_algorithm:
        Any registered algorithm; the names in
        :data:`~repro.online.batch.OFFLINE_ALGORITHMS` carry the paper's
        approximation guarantee.
    early_start:
        Work-conserving variant: whenever the network is idle, everything
        already arrived is dispatched immediately instead of waiting for
        its epoch boundary.
    """

    kind = "batching"

    def __init__(
        self,
        base: float = 2.0,
        *,
        offline_algorithm: str = "lp-heuristic",
        early_start: bool = False,
    ) -> None:
        check_positive(base - 1.0, "base - 1")
        get_algorithm(offline_algorithm)  # fail fast on typos
        self.base = float(base)
        self.offline_algorithm = offline_algorithm
        self.early_start = bool(early_start)
        suffix = "+wc" if early_start else ""
        self.name = f"online-batch[{offline_algorithm}]{suffix}"

    def epoch_of(self, release_time: float) -> int:
        return _epoch_index(release_time, self.base)

    def epoch_close(self, epoch: int) -> float:
        return float(self.base**epoch)


# --------------------------------------------------------------------------- #
# incremental re-solve
# --------------------------------------------------------------------------- #
class IncrementalResolvePolicy(OnlinePolicy):
    """Re-prioritize on every arrival from *remaining* work.

    At each event where the released set grew, every released coflow's
    remaining standalone time is recomputed from its current remaining
    demand — a max-concurrent-flow LP per coflow, solved through the
    warm-started persistent HiGHS models (and memoized per residual
    signature) — and coflows are reordered by remaining-time/weight.
    Between arrivals the order is held, so the incremental simulator can
    keep reusing allocations above the first changed rank.
    """

    kind = "priority"
    name = "online-resolve"

    def priority_function(
        self, stream: ArrivalStream, config: SolverConfig
    ) -> PriorityFunction:
        instance = stream.instance
        num = instance.num_coflows
        release = instance.coflow_release_times()
        weights = instance.weights
        state = {"released": -1, "order": list(range(num))}

        @array_priority
        def priority(
            time: float, remaining: np.ndarray, inst: CoflowInstance
        ) -> List[int]:
            released = release <= time + _boundary_tol(time)
            count = int(released.sum())
            if count != state["released"]:
                remaining_time = np.zeros(num, dtype=float)
                for j in np.nonzero(released)[0]:
                    rate = max_concurrent_rate(inst, int(j), remaining)
                    if np.isinf(rate):
                        remaining_time[j] = 0.0
                    elif rate <= RATE_TOL:
                        remaining_time[j] = float("inf")
                    else:
                        remaining_time[j] = 1.0 / rate
                ratio = wsjf_ratios(remaining_time, weights)
                order = sorted(
                    (int(j) for j in np.nonzero(released)[0]),
                    key=lambda j: (ratio[j], j),
                )
                order.extend(j for j in range(num) if not released[j])
                state["order"] = order
                state["released"] = count
            return list(state["order"])

        return priority


# --------------------------------------------------------------------------- #
# non-clairvoyant WSJF baseline
# --------------------------------------------------------------------------- #
class WSJFPolicy(OnlinePolicy):
    """Static weighted-SJF: one full-demand standalone/weight ordering.

    The order is precomputed for every coflow, but no information leaks:
    the relative order among *released* coflows at any time only involves
    standalone times each coflow's arrival would have revealed by then.
    """

    kind = "priority"
    name = "online-wsjf"

    def priority_function(
        self, stream: ArrivalStream, config: SolverConfig
    ) -> PriorityFunction:
        order, _ = wsjf_order(stream.instance)
        return static_order_priority(order)


# --------------------------------------------------------------------------- #
# registry entries
# --------------------------------------------------------------------------- #
def run_online_policy(
    instance: CoflowInstance,
    policy: OnlinePolicy,
    *,
    config: Optional[SolverConfig] = None,
) -> OnlineScheduleResult:
    """Run *policy* on *instance* through the engine (programmatic entry)."""
    # Lazy: the engine pulls in repro.api.batch, and this module is imported
    # by repro.api.__init__ itself — a module-level import would cycle.
    from repro.online.engine import OnlineEngine

    stream = ArrivalStream.from_instance(instance)
    return OnlineEngine(stream, config=config).run(policy)


def _online_report(
    result: OnlineScheduleResult,
    instance: CoflowInstance,
    lp_solution: Optional[CoflowLPSolution],
) -> SolveReport:
    """Wrap an engine result as a :class:`SolveReport` with JSON-safe extras.

    The clairvoyant uniform-grid LP objective (when a shared solution is
    handed in) is attached as the comparison bound, with the usual caveat:
    it bounds *slot-aligned* schedules, so continuous-time online policies
    are not held to it by the ``lp-lower-bound`` invariant — the online
    policies have their own ``online-lower-bound`` invariant built on the
    per-coflow clairvoyant standalone LP bound.
    """
    extras = {key: value for key, value in result.metadata.items()}
    extras["num_batches"] = result.num_batches
    if result.batches:
        extras["batches"] = [batch.to_dict() for batch in result.batches]
    return SolveReport(
        algorithm=result.algorithm,
        instance=instance,
        objective=result.weighted_completion_time,
        coflow_completion_times=result.coflow_completion_times,
        lower_bound=lp_solution.objective if lp_solution is not None else None,
        lp_solution=lp_solution,
        extras=extras,
    )


@register_algorithm(
    "online-batch",
    online=True,
    description="geometric batching (base 2) over the offline LP heuristic",
)
def _solve_online_batch(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    policy = GeometricBatchingPolicy(2.0, offline_algorithm="lp-heuristic")
    return _online_report(
        run_online_policy(instance, policy, config=config), instance, lp_solution
    )


@register_algorithm(
    "online-batch-wc",
    online=True,
    description="work-conserving geometric batching (early start when idle)",
)
def _solve_online_batch_wc(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    policy = GeometricBatchingPolicy(
        2.0, offline_algorithm="lp-heuristic", early_start=True
    )
    return _online_report(
        run_online_policy(instance, policy, config=config), instance, lp_solution
    )


@register_algorithm(
    "online-resolve",
    online=True,
    description="per-arrival re-prioritization via warm-started remaining-time LPs",
)
def _solve_online_resolve(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    return _online_report(
        run_online_policy(instance, IncrementalResolvePolicy(), config=config),
        instance,
        lp_solution,
    )


@register_algorithm(
    "online-wsjf",
    online=True,
    description="non-clairvoyant static weighted-SJF baseline",
)
def _solve_online_wsjf(
    instance: CoflowInstance,
    config: SolverConfig,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> SolveReport:
    return _online_report(
        run_online_policy(instance, WSJFPolicy(), config=config),
        instance,
        lp_solution,
    )


#: Names registered by this module.  They are part of the worker-safe set:
#: every process that imports :mod:`repro.api` (which worker processes do)
#: registers them, so parallel batch runs and sweeps can ship them to any
#: start method.
ONLINE_ALGORITHMS = frozenset(
    {"online-batch", "online-batch-wc", "online-resolve", "online-wsjf"}
)

__all__ = [
    "GeometricBatchingPolicy",
    "IncrementalResolvePolicy",
    "ONLINE_ALGORITHMS",
    "OFFLINE_ALGORITHMS",
    "OnlinePolicy",
    "WSJFPolicy",
    "run_online_policy",
]
