"""The event-driven online scheduling engine.

:class:`OnlineEngine` runs an online *policy* over an
:class:`~repro.online.stream.ArrivalStream`.  Two policy kinds exist (see
:mod:`repro.online.policies` for the implementations):

``batching``
    The engine maintains an explicit event queue — coflow **arrivals**,
    epoch **closes** and batch **drains** — and the policy decides how
    arrivals group into batches (epoch assignment, close times, optional
    work-conserving early dispatch).  Each dispatched batch is handed to a
    registered *offline* algorithm through :func:`repro.api.batch.solve`
    with release times reset to the batch start, so the online schedule
    inherits the offline algorithm's guarantee up to the batching constant
    (Khuller et al., LATIN 2018 — reference [17] of the paper).

``priority``
    The policy provides a (possibly stateful) priority function and the
    engine delegates to the continuous-time incremental simulator
    (:func:`repro.sim.simulator.simulate_priority_schedule`), which is
    itself event-driven: releases and flow completions are its events.

Either way the engine reveals a coflow to the policy only at its arrival,
and the result records *first-service evidence* — the earliest time each
coflow was allowed to transmit — which the ``online-release-respect``
invariant of :mod:`repro.scenarios` checks against release times.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

# Submodule imports (not the repro.api package): this module is pulled in
# while repro.api.__init__ is still initializing (it imports
# repro.online.policies to register the online algorithms).
from repro.api.batch import solve
from repro.api.registry import get_algorithm
from repro.api.request import SolverConfig
from repro.coflow.instance import CoflowInstance
from repro.sim.simulator import simulate_priority_schedule

from repro.online.batch import BatchRecord, OnlineScheduleResult, _boundary_tol
from repro.online.stream import ArrivalStream

#: Event ordering at equal timestamps: arrivals are observed first (a
#: boundary-exact arrival belongs to the epoch *starting* at the boundary,
#: never the one closing), then epochs close, then drains dispatch waiting
#: batches.
_ARRIVAL, _CLOSE, _DRAIN = 0, 1, 2


def _service_evidence(first_service: np.ndarray) -> List[Optional[float]]:
    """JSON-safe first-service list (``None`` = the coflow was never served)."""
    return [None if np.isnan(t) else float(t) for t in first_service]


class OnlineEngine:
    """Runs one online policy over one arrival stream.

    Parameters
    ----------
    stream:
        The arrival stream (instance + time-ordered arrivals).
    config:
        Solver configuration forwarded to the offline per-batch solves
        (``slot_length``, ``epsilon``, ``rng``, ``solver_method``,
        ``num_samples``, ``verify``).  Grid overrides (``grid`` /
        ``num_slots``) are *not* forwarded: batch sub-instances need their
        own automatically suggested horizons.
    """

    def __init__(
        self, stream: ArrivalStream, *, config: Optional[SolverConfig] = None
    ) -> None:
        self.stream = stream
        self.config = config if config is not None else SolverConfig()

    def run(self, policy) -> OnlineScheduleResult:
        """Execute *policy* on the stream and return the online schedule."""
        if policy.kind == "batching":
            return self._run_batching(policy)
        if policy.kind == "priority":
            return self._run_priority(policy)
        raise ValueError(
            f"unknown online policy kind {policy.kind!r} "
            "(expected 'batching' or 'priority')"
        )

    # ------------------------------------------------------------------ #
    # batching policies: explicit arrival/close/drain event loop
    # ------------------------------------------------------------------ #
    def _offline_config(self) -> SolverConfig:
        # Everything passes through except explicit grid overrides: batch
        # sub-instances need their own automatically suggested horizons.
        return self.config.replace(grid=None, num_slots=None)

    def _run_batching(self, policy) -> OnlineScheduleResult:
        instance = self.stream.instance
        release = instance.coflow_release_times()
        offline_info = get_algorithm(policy.offline_algorithm)
        offline_info.check_supports(instance.model)
        offline_config = self._offline_config()

        num = instance.num_coflows
        completion = np.zeros(num, dtype=float)
        first_service = np.full(num, np.nan)
        batches: List[BatchRecord] = []
        busy_until = 0.0
        num_events = 0
        # pending[epoch] = members arrived but not yet dispatched;
        # waiting = closed epochs queued behind the running batch (FIFO).
        pending: Dict[int, List[int]] = {}
        waiting: List[int] = []
        closing: set = set()

        heap: List[Tuple[float, int, int, int]] = []
        seq = 0
        for arrival in self.stream.arrivals:
            heapq.heappush(heap, (arrival.time, _ARRIVAL, seq, arrival.coflow_index))
            seq += 1

        def dispatch(members: List[int], start: float, epoch: int, epoch_end: float):
            nonlocal busy_until, seq
            coflows = []
            for j in members:
                coflow = instance.coflows[j]
                flows = [f.with_release_time(0.0) for f in coflow.flows]
                coflows.append(coflow.with_flows(flows).with_release_time(0.0))
            batch_instance = CoflowInstance(
                instance.graph,
                coflows,
                model=instance.model,
                name=f"{instance.name}-epoch{epoch}",
            )
            report = solve(
                batch_instance, policy.offline_algorithm, config=offline_config
            )
            batch_times = report.coflow_completion_times
            for local_j, j in enumerate(members):
                completion[j] = start + float(batch_times[local_j])
                first_service[j] = start
            makespan = float(batch_times.max(initial=0.0))
            batches.append(
                BatchRecord(
                    epoch_index=epoch,
                    epoch_end=epoch_end,
                    start_time=start,
                    makespan=makespan,
                    coflow_indices=list(members),
                    offline_objective=report.objective,
                    lp_lower_bound=report.lower_bound,
                )
            )
            busy_until = start + makespan
            heapq.heappush(heap, (busy_until, _DRAIN, seq, -1))
            seq += 1

        def drain_pending_early(now: float) -> None:
            """Work-conserving early start: batch everything arrived so far."""
            members = [j for epoch in sorted(pending) for j in pending[epoch]]
            if not members:
                return
            epoch = min(pending)
            pending.clear()
            # The batch closed early, at dispatch time rather than at its
            # epoch boundary; epoch_end records the actual close.
            dispatch(members, now, epoch, epoch_end=now)

        while heap:
            # One *instant* at a time: every event within boundary tolerance
            # of the earliest pending timestamp is handled before any
            # work-conserving early dispatch, so a burst of simultaneous
            # arrivals is never split into singleton batches.  Within an
            # instant the heap yields arrivals, then closes, then drains.
            now = heap[0][0]
            tol = _boundary_tol(now)
            while heap and heap[0][0] <= now + tol:
                time, kind, _, payload = heapq.heappop(heap)
                num_events += 1
                idle = busy_until <= time + tol and not waiting
                if kind == _ARRIVAL:
                    j = payload
                    epoch = policy.epoch_of(float(release[j]))
                    pending.setdefault(epoch, []).append(j)
                    if epoch not in closing:
                        closing.add(epoch)
                        heapq.heappush(
                            heap, (policy.epoch_close(epoch), _CLOSE, seq, epoch)
                        )
                        seq += 1
                elif kind == _CLOSE:
                    epoch = payload
                    if not pending.get(epoch):
                        pending.pop(epoch, None)
                    elif idle:
                        members = pending.pop(epoch)
                        dispatch(members, time, epoch, epoch_end=time)
                    else:
                        waiting.append(epoch)
                else:  # _DRAIN
                    if busy_until > time + tol:
                        continue  # superseded by a later dispatch
                    while waiting and not pending.get(waiting[0]):
                        waiting.pop(0)  # emptied by an early-start dispatch
                    if waiting:
                        epoch = waiting.pop(0)
                        members = pending.pop(epoch)
                        dispatch(
                            members, time, epoch, epoch_end=policy.epoch_close(epoch)
                        )
            if (
                policy.early_start
                and busy_until <= now + tol
                and not waiting
                and pending
            ):
                drain_pending_early(now)

        return OnlineScheduleResult(
            instance=instance,
            algorithm=policy.name,
            coflow_completion_times=completion,
            batches=batches,
            metadata={
                "policy": policy.name,
                "offline_algorithm": policy.offline_algorithm,
                "base": float(policy.base),
                "early_start": bool(policy.early_start),
                "num_epochs": len({b.epoch_index for b in batches}),
                "events": num_events,
                "first_service_times": _service_evidence(first_service),
            },
        )

    # ------------------------------------------------------------------ #
    # priority policies: delegate to the event-driven incremental simulator
    # ------------------------------------------------------------------ #
    def _run_priority(self, policy) -> OnlineScheduleResult:
        instance = self.stream.instance
        priority_fn = policy.priority_function(self.stream, self.config)
        sim = simulate_priority_schedule(instance, priority_fn, incremental=True)
        first_service = np.asarray(
            sim.metadata["first_coflow_service_times"], dtype=float
        )
        return OnlineScheduleResult(
            instance=instance,
            algorithm=policy.name,
            coflow_completion_times=sim.coflow_completion_times,
            metadata={
                "policy": policy.name,
                "events": int(sim.metadata.get("events", 0)),
                "first_service_times": _service_evidence(first_service),
            },
        )
