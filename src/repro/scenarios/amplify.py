"""Seeded trace amplifier: scale a base trace to N× coflows.

Production corpora are small relative to the scenario volume the
verification battery wants to chew through; the amplifier turns a base
trace (e.g. a converted Facebook trace, see
:mod:`repro.workloads.fbtrace`) into an arbitrarily large one while
preserving its *marginals*:

* **structure** — each amplified coflow bootstraps a template coflow from
  the base (endpoints, width and weight are copied verbatim);
* **sizes** — every flow demand is re-drawn from the base trace's pooled
  demand distribution (a bootstrap, so every amplified size literally
  occurs in the base);
* **arrivals** — inter-arrival gaps are bootstrapped from the base trace's
  inter-arrival pool and summed, so the arrival process keeps its rate and
  burstiness.

Reproducibility is stateless per index: coflow *k* of an amplified trace
depends only on ``(root_seed, k)`` via :func:`repro.utils.rng.derive_rng`,
never on how many coflows are requested — ``amplify(n)[:m] ==
amplify(m)`` bit-for-bit, the same discipline the scenario engine uses for
``(root_seed, family, index)`` addressing.

:func:`check_marginals` is the statistical guard: a support check (every
amplified size/gap must appear in the base pool — exact under bootstrap)
plus two-sample Kolmogorov–Smirnov statistics on sizes and gaps with a
size-adaptive threshold.  The ``amplifier-marginals`` failure mode is
covered by an injected-bug test, matching the invariant discipline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.coflow.coflow import Coflow
from repro.utils.rng import derive_rng
from repro.workloads.traces import load_coflows, save_trace

#: Two-sample KS acceptance coefficient: reject when
#: ``D > KS_COEFFICIENT * sqrt((n + m) / (n * m))``.  1.95 sits near the
#: alpha = 0.001 critical value — lenient on tiny corpora, tight at scale.
KS_COEFFICIENT = 1.95


def _demand_pool(base: Sequence[Coflow]) -> np.ndarray:
    return np.array(
        [flow.demand for coflow in base for flow in coflow.flows], dtype=float
    )


def _gap_pool(base: Sequence[Coflow]) -> np.ndarray:
    """Inter-arrival gaps of the base trace (diffs of sorted release times)."""
    releases = np.sort(np.array([c.release_time for c in base], dtype=float))
    if releases.size < 2:
        return np.zeros(1, dtype=float)
    return np.diff(releases)


def amplify_coflows(
    base: Sequence[Coflow], target_count: int, *, root_seed: int
) -> List[Coflow]:
    """Bootstrap *base* up (or down) to exactly *target_count* coflows.

    Stateless per index: coflow *k* is a pure function of
    ``(root_seed, k)`` and the base trace, so prefixes agree across calls
    with different *target_count*.  Release times are non-decreasing by
    construction (cumulative sums of non-negative bootstrapped gaps).
    """
    base = list(base)
    if not base:
        raise ValueError("cannot amplify an empty base trace")
    if target_count < 0:
        raise ValueError(f"target_count must be >= 0, got {target_count}")
    demands = _demand_pool(base)
    gaps = _gap_pool(base)

    amplified: List[Coflow] = []
    arrival = 0.0
    for k in range(target_count):
        # One derivation per index per concern: the gap stream must not
        # perturb the structure stream when either pool changes shape.
        gap_rng = derive_rng(root_seed, "amplify-gap", k)
        arrival += float(gaps[int(gap_rng.integers(0, gaps.size))])
        rng = derive_rng(root_seed, "amplify", k)
        template = base[int(rng.integers(0, len(base)))]
        flows = tuple(
            dataclasses.replace(
                flow,
                demand=float(demands[int(rng.integers(0, demands.size))]),
                path=None,
            )
            for flow in template.flows
        )
        amplified.append(
            Coflow(flows=flows, weight=template.weight, release_time=arrival)
        )
    return amplified


def _ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup |F_a - F_b|``."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def _ks_threshold(n: int, m: int) -> float:
    return KS_COEFFICIENT * float(np.sqrt((n + m) / (n * m)))


@dataclass(frozen=True)
class MarginalReport:
    """Outcome of :func:`check_marginals`; falsy when any check failed."""

    ok: bool
    messages: Tuple[str, ...] = ()
    stats: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def check_marginals(
    base: Sequence[Coflow], amplified: Sequence[Coflow]
) -> MarginalReport:
    """Verify *amplified* preserves the size/arrival marginals of *base*.

    Two layers: a **support** check (bootstrap output can only contain
    values from the base pools — any scaling or arithmetic bug breaks this
    immediately) and a **KS** check that the empirical distributions stay
    close, with a threshold that loosens on tiny samples and tightens as
    either side grows.
    """
    messages: List[str] = []
    stats: Dict[str, float] = {}
    base = list(base)
    amplified = list(amplified)
    if not base:
        return MarginalReport(ok=False, messages=("base trace is empty",))
    if not amplified:
        return MarginalReport(ok=False, messages=("amplified trace is empty",))

    base_demands = _demand_pool(base)
    amp_demands = _demand_pool(amplified)
    demand_support = set(base_demands.tolist())
    foreign = [d for d in amp_demands.tolist() if d not in demand_support]
    if foreign:
        messages.append(
            f"{len(foreign)} amplified flow sizes are outside the base "
            f"support (e.g. {foreign[0]!r})"
        )
    ks_demand = _ks_statistic(base_demands, amp_demands)
    threshold = _ks_threshold(base_demands.size, amp_demands.size)
    stats["ks_demand"] = ks_demand
    stats["ks_demand_threshold"] = threshold
    if ks_demand > threshold:
        messages.append(
            f"size marginal drifted: KS={ks_demand:.4f} > {threshold:.4f}"
        )

    base_gaps = _gap_pool(base)
    amp_releases = np.array([c.release_time for c in amplified], dtype=float)
    if amp_releases.size >= 2:
        amp_gaps = np.diff(np.sort(amp_releases))
        # Gaps are recovered by differencing the accumulated arrival times,
        # so support membership is up to float-summation roundoff.
        distance = np.abs(amp_gaps[:, None] - base_gaps[None, :]).min(axis=1)
        gap_tol = 1e-9 * np.maximum(1.0, np.abs(amp_gaps))
        foreign_mask = distance > gap_tol
        if foreign_mask.any():
            example = float(amp_gaps[int(np.argmax(foreign_mask))])
            messages.append(
                f"{int(foreign_mask.sum())} amplified inter-arrival gaps are "
                f"outside the base support (e.g. {example!r})"
            )
        ks_gap = _ks_statistic(base_gaps, amp_gaps)
        gap_threshold = _ks_threshold(base_gaps.size, amp_gaps.size)
        stats["ks_gap"] = ks_gap
        stats["ks_gap_threshold"] = gap_threshold
        if ks_gap > gap_threshold:
            messages.append(
                f"arrival marginal drifted: KS={ks_gap:.4f} > {gap_threshold:.4f}"
            )

    return MarginalReport(ok=not messages, messages=tuple(messages), stats=stats)


def amplify_trace(
    src: str | Path,
    out: str | Path,
    target_count: int,
    *,
    root_seed: int,
    check: bool = True,
) -> dict:
    """File-to-file amplification: load *src*, amplify, validate, save *out*.

    Raises ``ValueError`` when *check* is on and the marginal guard fails
    (should only happen on an amplifier bug — the guard is the tripwire).
    Returns a summary with the marginal statistics.
    """
    base = load_coflows(src)
    amplified = amplify_coflows(base, target_count, root_seed=root_seed)
    report = check_marginals(base, amplified) if check else None
    if report is not None and not report.ok:
        raise ValueError(
            "amplified trace failed the marginal-preservation check: "
            + "; ".join(report.messages)
        )
    save_trace(amplified, out)
    return {
        "source": str(src),
        "out": str(out),
        "root_seed": int(root_seed),
        "base_coflows": len(base),
        "num_coflows": len(amplified),
        "num_flows": sum(len(c) for c in amplified),
        "marginals": dict(report.stats) if report is not None else {},
    }
