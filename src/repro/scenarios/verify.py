"""The differential-verification harness behind ``repro verify``.

:func:`run_verification` samples scenarios from the engine, runs **every
registered algorithm** that supports each scenario's transmission model
(through :mod:`repro.api`, sharing one uniform-grid LP per scenario exactly
like the batch runner), then cross-checks the invariant suite of
:mod:`repro.scenarios.invariants` — vectorized LP ≡ reference builder,
incremental simulator ≡ full re-allocation, schedule feasibility, LP
lower-bound respect, baseline-ordering rules and report consistency.

The result is a machine-readable report (mirroring the spirit of
:class:`~repro.api.report.SolveReport`: one queryable object per unit of
work) that :func:`write_verification_report` stores as
``VERIFY_<YYYYmmdd-HHMMSS>.json`` — the artifact the nightly CI job uploads.
An algorithm that *raises* is recorded as a violation of kind ``crash``, so
a verification run can never silently lose coverage.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api import SolverConfig, available_algorithms, get_algorithm, solve
from repro.core.timeindexed import solve_time_indexed_lp
from repro.lp.solver import solver_cache
from repro.store import ResultStore, config_fingerprint, text_key
from repro.store.fingerprint import FingerprintError
from repro.utils.io import atomic_write_json
from repro.utils.retry import SOLVER_FAILURES, Backoff, retry_call
from repro.utils.timing import file_stamp, report_stamp

from repro.scenarios import families as _families  # noqa: F401 - registers built-ins
from repro.scenarios.engine import Scenario, sample_scenarios, scenario_families
from repro.scenarios.invariants import (
    ScenarioRun,
    check_invariants,
    get_invariant,
    invariant_names,
)

SCHEMA_VERSION = 1

#: λ draws for the stretch sampling algorithms during verification: enough
#: to exercise the multi-draw paths, small enough for a budget-50 nightly.
VERIFY_NUM_SAMPLES = 3

# What counts as an algorithm/LP *crash* during scenario execution: the
# canonical SOLVER_FAILURES tuple now lives in repro.utils.retry (shared
# with the sweep's failure discipline) and is re-exported above because
# this module was its original home.

#: Retry policy for scenario execution: transient solver failures get two
#: deterministic re-attempts before being recorded as crashes.  Zero base
#: delay — verification failures are almost never time-dependent, so the
#: value of the policy is the re-attempt, not the wait.
VERIFY_BACKOFF = Backoff(retries=2, base=0.0, jitter=0.0)


def execute_scenario(
    scenario: Scenario,
    *,
    config: Optional[SolverConfig] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> ScenarioRun:
    """Solve one scenario with every applicable algorithm (no invariants yet).

    Solves the shared uniform-grid LP once, hands it to every algorithm
    (under one warm-start cache, exactly like the batch runner), and records
    crashes per algorithm instead of raising — the resulting
    :class:`ScenarioRun` is what the invariant suite cross-checks.  Exposed
    separately from :func:`verify_scenario` so tests can corrupt a real run
    before checking that invariants catch the corruption.
    """
    instance = scenario.instance
    if algorithms is None:
        names = list(available_algorithms(model=instance.model))
    else:
        # Explicit lists are validated eagerly but filtered by model: asking
        # for terra on a batch that contains single-path scenarios should
        # skip, not crash, those scenarios.
        names = [
            name
            for name in algorithms
            if get_algorithm(name).supports(instance.model)
        ]
    base = config if config is not None else SolverConfig()
    cfg = base.replace(
        rng=scenario.seed if base.rng is None else base.rng,
        num_samples=min(base.num_samples, VERIFY_NUM_SAMPLES),
    )

    run = ScenarioRun(scenario=scenario, config=cfg, lp_solution=None)
    address = (scenario.family, str(scenario.index), str(scenario.root_seed))
    with solver_cache():
        try:
            run.lp_solution = retry_call(
                lambda attempt: solve_time_indexed_lp(
                    instance,
                    grid=cfg.grid,
                    num_slots=cfg.num_slots,
                    slot_length=cfg.slot_length,
                    epsilon=cfg.epsilon,
                    solver_method=cfg.solver_method,
                ),
                backoff=VERIFY_BACKOFF,
                path=("verify-shared-lp", *address),
            )
        except SOLVER_FAILURES as exc:
            run.errors["shared-lp"] = f"{type(exc).__name__}: {exc}"
        for name in names:
            try:
                run.reports[name] = retry_call(
                    lambda attempt, name=name: solve(
                        instance, name, config=cfg, lp_solution=run.lp_solution
                    ),
                    backoff=VERIFY_BACKOFF,
                    path=("verify-solve", name, *address),
                )
            except SOLVER_FAILURES as exc:
                run.errors[name] = f"{type(exc).__name__}: {exc}"
    return run


def _scenario_block_key(
    scenario: Scenario,
    config: Optional[SolverConfig],
    algorithms: Optional[Sequence[str]],
    invariants: Optional[Sequence[str]],
) -> Optional[str]:
    """Store address of one scenario's verification block, or ``None``.

    ``None`` (uncacheable) when the base config carries a live generator —
    the block would not be reproducible.  The key covers the scenario's
    full address, the *overlaid* config actually used (the per-scenario rng
    and the λ-sample cap included) and the algorithm/invariant selections,
    so narrowing either selection never returns a stale wider block.
    """
    base = config if config is not None else SolverConfig()
    cfg = base.replace(
        rng=scenario.seed if base.rng is None else base.rng,
        num_samples=min(base.num_samples, VERIFY_NUM_SAMPLES),
    )
    try:
        cfg_fp = config_fingerprint(cfg)
    except FingerprintError:
        return None
    return text_key(
        "verify-scenario",
        scenario.family,
        str(scenario.index),
        str(scenario.root_seed),
        cfg_fp,
        "algorithms:" + (",".join(sorted(algorithms)) if algorithms else "*"),
        "invariants:" + (",".join(sorted(invariants)) if invariants else "*"),
    )


def verify_scenario(
    scenario: Scenario,
    *,
    config: Optional[SolverConfig] = None,
    algorithms: Optional[Sequence[str]] = None,
    invariants: Optional[Sequence[str]] = None,
    store: Optional[ResultStore] = None,
) -> Dict:
    """Run all applicable algorithms on one scenario and check the invariants.

    Returns the scenario's JSON-ready report block: provenance, per-algorithm
    outcomes, per-invariant violation lists and the flat ``violations`` list
    the harness aggregates.

    With a *store*, completed blocks are checkpointed under a key covering
    the scenario address, overlaid config and selections: an interrupted
    ``repro verify --store`` run resumes from the last finished scenario,
    and a repeated run replays entirely from the store (blocks come back
    flagged ``"cached": true``).
    """
    key = (
        _scenario_block_key(scenario, config, algorithms, invariants)
        if store is not None
        else None
    )
    if key is not None:
        cached = store.get(key)
        if isinstance(cached, dict) and "violations" in cached:
            block = dict(cached)
            block["cached"] = True
            return block
    started = time.perf_counter()
    run = execute_scenario(scenario, config=config, algorithms=algorithms)
    invariant_results = check_invariants(run, invariants=invariants)
    seconds = time.perf_counter() - started

    violations: List[Dict] = []
    for name, message in run.errors.items():
        violations.append({"kind": "crash", "source": name, "message": message})
    for name, messages in invariant_results.items():
        for message in messages:
            violations.append(
                {"kind": "invariant", "source": name, "message": message}
            )

    algorithms_block = {
        name: {
            "objective": float(report.objective),
            "lower_bound": (
                None if report.lower_bound is None else float(report.lower_bound)
            ),
            "gap": None if not np.isfinite(report.gap) else float(report.gap),
            "solve_seconds": float(report.solve_seconds),
            "has_schedule": report.schedule is not None,
            "feasible": bool(report.is_feasible),
        }
        for name, report in run.reports.items()
    }
    block = {
        "scenario": scenario.describe(),
        "algorithms": algorithms_block,
        "invariants": {
            name: {"ok": not messages, "violations": messages}
            for name, messages in invariant_results.items()
        },
        "violations": violations,
        "seconds": seconds,
    }
    # Crashes may be transient (memory pressure, a missing backend): a block
    # containing one must be retried on the next run, never replayed from
    # the store.  Invariant violations are deterministic content and cache
    # fine.
    has_crash = any(v["kind"] == "crash" for v in violations)
    if key is not None and not has_crash:
        store.put(key, block, kind="verify-scenario")
    return block


def run_verification(
    budget: int,
    seed: int,
    *,
    families: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    invariants: Optional[Sequence[str]] = None,
    config: Optional[SolverConfig] = None,
    store: Optional[ResultStore] = None,
) -> Dict:
    """Sample *budget* scenarios and differentially verify every algorithm.

    Parameters
    ----------
    budget:
        Number of scenarios to generate (round-robin across families).
    seed:
        Root seed; every scenario derives its own stream from it (see
        :mod:`repro.scenarios.engine`), so reports are reproducible
        bit-for-bit from ``(budget, seed, families)``.
    families:
        Family names to sample (default: every registered family).
    algorithms:
        Algorithm names to run (default: every registered algorithm that
        supports the scenario's transmission model).
    invariants:
        Invariant names to check (default: all).
    config:
        Base solver configuration (the per-scenario rng and a verification
        λ-sample cap are overlaid onto it).
    store:
        Optional persistent :class:`~repro.store.ResultStore`.  Completed
        scenario blocks are checkpointed as they finish, so an interrupted
        run resumes where it stopped and a repeated run is read entirely
        from the store (see :func:`verify_scenario`).
    """
    # Typos and empty selections fail fast, before any scenario is
    # generated or solved.
    if algorithms is not None and not list(algorithms):
        raise ValueError("algorithms must name at least one registered algorithm")
    for name in algorithms or ():
        get_algorithm(name)
    for name in invariants or ():
        get_invariant(name)
    scenarios = sample_scenarios(budget, seed, families=families)
    scenario_blocks = [
        verify_scenario(
            scenario,
            config=config,
            algorithms=algorithms,
            invariants=invariants,
            store=store,
        )
        for scenario in scenarios
    ]
    total_violations = sum(len(b["violations"]) for b in scenario_blocks)
    families_covered = sorted({b["scenario"]["family"] for b in scenario_blocks})
    algorithms_run = sorted(
        {name for b in scenario_blocks for name in b["algorithms"]}
    )
    # Per-scenario model filtering is expected (terra skips single-path
    # scenarios), but an explicitly requested algorithm that ran on *no*
    # scenario at all means the run verified nothing about it — that must
    # fail, not silently pass.
    uncovered = (
        sorted(set(algorithms) - set(algorithms_run))
        if algorithms is not None
        else []
    )
    return {
        "schema": SCHEMA_VERSION,
        "created": report_stamp(),
        "budget": budget,
        "seed": seed,
        "families": list(families) if families else list(scenario_families()),
        "invariants": (
            list(invariants) if invariants is not None else list(invariant_names())
        ),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scenarios": scenario_blocks,
        "summary": {
            "scenarios": len(scenario_blocks),
            "cached_scenarios": sum(
                1 for b in scenario_blocks if b.get("cached")
            ),
            "families_covered": families_covered,
            "algorithms_run": algorithms_run,
            "uncovered_algorithms": uncovered,
            "violations": total_violations,
            "crashes": sum(
                1
                for b in scenario_blocks
                for v in b["violations"]
                if v["kind"] == "crash"
            ),
            "ok": total_violations == 0 and not uncovered,
            "seconds": sum(b["seconds"] for b in scenario_blocks),
        },
    }


def write_verification_report(report: Dict, output: str | Path = ".") -> Path:
    """Write *report* as JSON; *output* may be a directory or a file path."""
    path = Path(output)
    if path.suffix != ".json":
        path.mkdir(parents=True, exist_ok=True)
        path = path / f"VERIFY_{file_stamp()}.json"
    else:
        path.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_json(path, report)


def format_verification_report(report: Dict) -> str:
    """Human-readable summary of a verification report (CLI output)."""
    lines: List[str] = []
    summary = report["summary"]
    cached = summary.get("cached_scenarios", 0)
    cached_note = f", {cached} from store" if cached else ""
    lines.append(
        f"verified {summary['scenarios']} scenarios "
        f"(seed {report['seed']}, families: "
        f"{', '.join(summary['families_covered'])}{cached_note})"
    )
    lines.append(
        f"{'scenario':<26s} {'model':<12s} {'coflows':>7s} {'algos':>5s} "
        f"{'violations':>10s} {'sec':>6s}"
    )
    for block in report["scenarios"]:
        meta = block["scenario"]
        label = f"{meta['family']}#{meta['index']}"
        lines.append(
            f"{label:<26s} {meta['model']:<12s} {meta['num_coflows']:>7d} "
            f"{len(block['algorithms']):>5d} {len(block['violations']):>10d} "
            f"{block['seconds']:>6.2f}"
        )
        for violation in block["violations"]:
            lines.append(
                f"    [{violation['kind']}/{violation['source']}] "
                f"{violation['message']}"
            )
    lines.append(
        f"algorithms covered: {', '.join(summary['algorithms_run'])}"
    )
    uncovered = summary.get("uncovered_algorithms") or []
    if uncovered:
        lines.append(
            "WARNING: requested algorithms never ran on any sampled "
            f"scenario: {', '.join(uncovered)} (model mismatch with every "
            "scenario — widen the budget or the family selection)"
        )
    if summary["ok"]:
        verdict = "OK"
    elif summary["violations"]:
        verdict = "VIOLATIONS FOUND"
    else:
        verdict = "INCOMPLETE COVERAGE"
    lines.append(
        f"total violations: {summary['violations']} "
        f"({summary['crashes']} crashes) -> {verdict}"
    )
    return "\n".join(lines)
