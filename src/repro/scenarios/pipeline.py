"""Declarative scenario pipelines: spec → generate → solve → verify → report.

A pipeline spec is a small YAML or JSON document that names *which*
scenarios to run (family selections with counts and start indices), *how*
to solve them (an optional solver-config overlay and algorithm/invariant
selections) and nothing else — adding a new corpus slice becomes a config
change, not code::

    name: nightly-corpus
    root_seed: 2019
    scenarios:
      - {family: capacity-churn, count: 4}
      - {family: hardness-gadget, count: 4, start_index: 2}
      - {family: amplified-trace, count: 2}
    algorithms: [heuristic, fifo]        # optional; default = all applicable
    invariants: [feasibility-under-churn]  # optional; default = all
    solver: {num_slots: 12}              # optional SolverConfig overlay

:func:`run_pipeline` expands the selections into scenario addresses
(``(root_seed, family, index)`` — the engine's stateless addressing, so any
worker layout produces the same corpus), verifies each through
:func:`repro.scenarios.verify.verify_scenario`, and assembles a
**deterministic** report: volatile fields (wall-clock seconds, cache flags)
are stripped, so a spec run twice — cold, then warm through a
:class:`~repro.store.ResultStore` — produces byte-identical reports, with
the warm run replaying every block from the store and issuing zero new LP
solves.  The adversarial families' LP-bound-vs-policy gaps are aggregated
into a per-family ``gap_metrics`` section.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.request import SolverConfig
from repro.store import ResultStore
from repro.utils.io import atomic_write_json

from repro.scenarios.engine import Scenario, build_scenario
from repro.scenarios.invariants import get_invariant
from repro.scenarios.verify import verify_scenario

PIPELINE_SCHEMA_VERSION = 1

#: SolverConfig fields a spec may overlay.  Deliberately excludes ``rng``
#: (a live generator would break block caching and bit-reproducibility —
#: the per-scenario seed overlay in the verify layer is the sanctioned
#: source of randomness) and ``grid`` (not JSON-representable).
ALLOWED_SOLVER_KEYS = frozenset(
    {"num_slots", "slot_length", "epsilon", "solver_method", "num_samples"}
)


@dataclass(frozen=True)
class ScenarioSelection:
    """One corpus slice: *count* consecutive scenarios of one family."""

    family: str
    count: int = 1
    start_index: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"selection count must be >= 1, got {self.count}")
        if self.start_index < 0:
            raise ValueError(
                f"selection start_index must be >= 0, got {self.start_index}"
            )

    def indices(self) -> range:
        return range(self.start_index, self.start_index + self.count)

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "count": self.count,
            "start_index": self.start_index,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSelection":
        unknown = set(data) - {"family", "count", "start_index"}
        if unknown:
            raise ValueError(
                f"unknown scenario-selection keys: {sorted(unknown)}"
            )
        return cls(
            family=str(data["family"]),
            count=int(data.get("count", 1)),
            start_index=int(data.get("start_index", 0)),
        )


@dataclass(frozen=True)
class PipelineSpec:
    """A parsed, validated pipeline document (see the module docstring)."""

    name: str
    root_seed: int = 0
    scenarios: Tuple[ScenarioSelection, ...] = ()
    algorithms: Optional[Tuple[str, ...]] = None
    invariants: Optional[Tuple[str, ...]] = None
    solver: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a pipeline spec must select at least one scenario")
        unknown = set(self.solver) - ALLOWED_SOLVER_KEYS
        if unknown:
            raise ValueError(
                f"unsupported solver keys {sorted(unknown)}; allowed: "
                f"{sorted(ALLOWED_SOLVER_KEYS)}"
            )

    def solver_config(self) -> Optional[SolverConfig]:
        """The spec's solver overlay as a :class:`SolverConfig` (or ``None``)."""
        if not self.solver:
            return None
        return SolverConfig(**self.solver)

    def total_scenarios(self) -> int:
        return sum(sel.count for sel in self.scenarios)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "root_seed": self.root_seed,
            "scenarios": [sel.to_dict() for sel in self.scenarios],
            "algorithms": list(self.algorithms) if self.algorithms else None,
            "invariants": list(self.invariants) if self.invariants else None,
            "solver": dict(self.solver),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineSpec":
        unknown = set(data) - {
            "name",
            "root_seed",
            "scenarios",
            "algorithms",
            "invariants",
            "solver",
        }
        if unknown:
            raise ValueError(f"unknown pipeline keys: {sorted(unknown)}")
        algorithms = data.get("algorithms")
        invariants = data.get("invariants")
        return cls(
            name=str(data.get("name", "pipeline")),
            root_seed=int(data.get("root_seed", 0)),
            scenarios=tuple(
                ScenarioSelection.from_dict(sel) for sel in data.get("scenarios", ())
            ),
            algorithms=tuple(str(a) for a in algorithms) if algorithms else None,
            invariants=tuple(str(i) for i in invariants) if invariants else None,
            solver=dict(data.get("solver") or {}),
        )

    @classmethod
    def load(cls, path: str | Path) -> "PipelineSpec":
        """Parse a spec file — JSON always, YAML when PyYAML is available."""
        path = Path(path)
        text = path.read_text()
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError:
                raise ValueError(
                    f"{path} is YAML but PyYAML is not installed; use the "
                    "JSON form of the spec instead"
                ) from None
            data = yaml.safe_load(text)
        else:
            data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"pipeline spec {path} must be a mapping")
        return cls.from_dict(data)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of :func:`run_pipeline`: the deterministic report + run stats."""

    report: Dict
    total_scenarios: int
    cached_scenarios: int
    violations: int

    @property
    def ok(self) -> bool:
        return self.violations == 0


def _strip_volatile(block: Dict) -> Dict:
    """Drop wall-clock and cache-provenance fields from a scenario block.

    What remains is a pure function of the scenario address and the config,
    so cold and warm pipeline runs serialize to identical bytes.
    """
    stripped = {k: v for k, v in block.items() if k not in ("seconds", "cached")}
    stripped["algorithms"] = {
        name: {k: v for k, v in algo.items() if k != "solve_seconds"}
        for name, algo in block.get("algorithms", {}).items()
    }
    return stripped


def _gap_metrics(blocks: Sequence[Dict]) -> Dict:
    """Aggregate per-algorithm LP gaps per family (the adversarial metric)."""
    by_family: Dict[str, List[float]] = {}
    for block in blocks:
        family = block["scenario"]["family"]
        gaps = [
            float(algo["gap"])
            for algo in block["algorithms"].values()
            if algo.get("gap") is not None
        ]
        if gaps:
            by_family.setdefault(family, []).extend(gaps)
    per_family = {
        family: {
            "max_gap": max(gaps),
            "mean_gap": sum(gaps) / len(gaps),
            "samples": len(gaps),
        }
        for family, gaps in sorted(by_family.items())
    }
    worst = max(
        (metrics["max_gap"] for metrics in per_family.values()), default=None
    )
    return {"per_family": per_family, "worst_gap": worst}


def run_pipeline(
    spec: PipelineSpec, *, store: Optional[ResultStore] = None
) -> PipelineResult:
    """Execute *spec*: generate → solve → verify → deterministic report.

    With a *store*, finished scenario blocks are checkpointed so interrupted
    runs resume and repeated runs replay entirely from the store; the
    returned report is identical either way (see :func:`_strip_volatile`).
    """
    for name in spec.invariants or ():
        get_invariant(name)  # fail fast on typos, before any solve
    config = spec.solver_config()
    scenarios: List[Scenario] = [
        build_scenario(selection.family, index, spec.root_seed)
        for selection in spec.scenarios
        for index in selection.indices()
    ]
    blocks: List[Dict] = []
    cached = 0
    for scenario in scenarios:
        block = verify_scenario(
            scenario,
            config=config,
            algorithms=spec.algorithms,
            invariants=spec.invariants,
            store=store,
        )
        if block.get("cached"):
            cached += 1
        blocks.append(_strip_volatile(block))

    violations = sum(len(b["violations"]) for b in blocks)
    families_covered = sorted({b["scenario"]["family"] for b in blocks})
    report = {
        "schema": PIPELINE_SCHEMA_VERSION,
        "pipeline": spec.to_dict(),
        "scenarios": blocks,
        "gap_metrics": _gap_metrics(blocks),
        "summary": {
            "scenarios": len(blocks),
            "families_covered": families_covered,
            "violations": violations,
            "ok": violations == 0,
        },
    }
    return PipelineResult(
        report=report,
        total_scenarios=len(blocks),
        cached_scenarios=cached,
        violations=violations,
    )


def write_pipeline_report(result: PipelineResult, path: str | Path) -> Path:
    """Write the deterministic report as canonical JSON (sorted keys)."""
    return atomic_write_json(Path(path), result.report, sort_keys=True)


def format_pipeline_report(result: PipelineResult) -> str:
    """Human-readable pipeline summary (what ``repro scenarios run`` prints)."""
    report = result.report
    spec = report["pipeline"]
    lines = [
        f"pipeline {spec['name']!r}: {result.total_scenarios} scenarios "
        f"(root seed {spec['root_seed']}, families: "
        f"{', '.join(report['summary']['families_covered'])})",
        f"replayed {result.cached_scenarios}/{result.total_scenarios} "
        "scenario blocks from store",
    ]
    for block in report["scenarios"]:
        meta = block["scenario"]
        label = f"{meta['family']}#{meta['index']}"
        lines.append(
            f"  {label:<26s} {meta['model']:<12s} "
            f"algos={len(block['algorithms'])} "
            f"violations={len(block['violations'])}"
        )
        for violation in block["violations"]:
            lines.append(
                f"      [{violation['kind']}/{violation['source']}] "
                f"{violation['message']}"
            )
    worst = report["gap_metrics"]["worst_gap"]
    if worst is not None:
        lines.append(f"worst LP-bound gap across the corpus: {worst:.4f}")
    verdict = "OK" if result.ok else "VIOLATIONS FOUND"
    lines.append(
        f"total violations: {result.violations} -> {verdict}"
    )
    return "\n".join(lines)
