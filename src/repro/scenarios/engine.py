"""The composable scenario engine: named families of reproducible workloads.

A *scenario family* is a parameterized generator of coflow instances — far
richer than the fixed benchmark profiles the experiments use: online Poisson
and bursty arrivals, Zipf-skewed flow sizes, oversubscribed fat trees,
degraded-capacity (link failure) variants and trace replays.  Families
register themselves under a stable name (mirroring the algorithm registry of
:mod:`repro.api.registry`) and are sampled by the differential-verification
harness (:mod:`repro.scenarios.verify`) and by the Hypothesis property-test
layer in ``tests/``.

Reproducibility contract
------------------------
Every scenario is addressed by ``(root_seed, family, index)``.  The family's
builder receives a generator seeded with
``derive_seed(root_seed, family, index)`` (see :mod:`repro.utils.rng` for
the stateless derivation scheme), so

* the same address always generates a bit-identical instance — in any
  process, regardless of generation order or how many other scenarios were
  generated first; and
* scenario N of a run can be regenerated alone, without replaying the
  N - 1 scenarios before it.

Builders must draw **all** randomness from the generator they are handed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.utils.rng import as_generator, derive_seed

#: A family builder maps (rng, index) to an instance plus the parameters it
#: drew (recorded in verification reports so failures are reproducible by
#: hand).  ``index`` is the scenario's position within the family, which
#: builders typically use to alternate structural choices (e.g. the
#: transmission model) deterministically.
FamilyBuilder = Callable[[np.random.Generator, int], Tuple[CoflowInstance, Dict]]


class UnknownFamilyError(ValueError):
    """Raised for scenario family names absent from the registry."""

    def __init__(self, name: str, registered: Iterable[str]) -> None:
        self.name = name
        self.registered = tuple(sorted(registered))
        super().__init__(
            f"unknown scenario family {name!r}; registered families: "
            + ", ".join(self.registered)
        )


@dataclass(frozen=True)
class ScenarioFamily:
    """One registry entry: a named, parameterized instance generator."""

    name: str
    builder: FamilyBuilder
    description: str = ""
    tags: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Scenario:
    """One generated workload: the instance plus its full provenance.

    ``seed`` is the derived seed the builder's generator was created from;
    together with ``family`` it makes the scenario reproducible from the
    report alone (``build_scenario(family, index, root_seed)`` rebuilds it).
    """

    family: str
    index: int
    root_seed: int
    seed: int
    instance: CoflowInstance
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def model(self) -> TransmissionModel:
        return self.instance.model

    def describe(self) -> Dict[str, object]:
        """The JSON-ready provenance block used in verification reports."""
        return {
            "family": self.family,
            "index": self.index,
            "root_seed": self.root_seed,
            "seed": self.seed,
            "model": self.instance.model.value,
            "topology": self.instance.graph.name,
            "num_coflows": self.instance.num_coflows,
            "num_flows": self.instance.num_flows,
            "params": dict(self.params),
        }


_REGISTRY: Dict[str, ScenarioFamily] = {}


def register_family(
    name: str,
    *,
    description: str = "",
    tags: Sequence[str] = (),
) -> Callable[[FamilyBuilder], FamilyBuilder]:
    """Decorator registering a scenario family under *name* (latest wins)."""

    def decorator(builder: FamilyBuilder) -> FamilyBuilder:
        _REGISTRY[name] = ScenarioFamily(
            name=name,
            builder=builder,
            description=description,
            tags=tuple(tags),
        )
        return builder

    return decorator


def get_family(name: str) -> ScenarioFamily:
    """The registry entry for *name* (:class:`UnknownFamilyError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownFamilyError(name, _REGISTRY) from None


def scenario_families() -> Tuple[str, ...]:
    """Sorted names of all registered scenario families."""
    return tuple(sorted(_REGISTRY))


def family_table() -> Tuple[ScenarioFamily, ...]:
    """All registry entries, sorted by name (for the CLI and docs)."""
    return tuple(_REGISTRY[name] for name in scenario_families())


def build_scenario(family: str, index: int, root_seed: int) -> Scenario:
    """Generate the scenario at address ``(root_seed, family, index)``.

    Bit-reproducible: the builder's generator is seeded with
    ``derive_seed(root_seed, family, index)`` and nothing else, so repeated
    calls — in any order, in any process — return identical instances.
    """
    entry = get_family(family)
    if index < 0:
        raise ValueError(f"scenario index must be non-negative, got {index}")
    seed = derive_seed(root_seed, family, index)
    rng = as_generator(seed)
    instance, params = entry.builder(rng, index)
    return Scenario(
        family=family,
        index=index,
        root_seed=root_seed,
        seed=seed,
        instance=instance,
        params=params,
    )


def sample_scenarios(
    budget: int,
    seed: int,
    *,
    families: Optional[Sequence[str]] = None,
) -> List[Scenario]:
    """Generate *budget* scenarios, round-robin across the chosen families.

    Round-robin (rather than budget-per-family blocks) guarantees that even
    a tiny budget touches every family at least once whenever
    ``budget >= len(families)``, which is what makes small smoke runs of
    ``repro verify`` meaningful.
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    # Dedupe while preserving order: a repeated --family flag must not burn
    # budget on bit-identical duplicate scenarios.
    chosen = tuple(dict.fromkeys(families)) if families else scenario_families()
    if not chosen:
        raise ValueError("no scenario families registered")
    for name in chosen:
        get_family(name)  # fail fast on typos, before any generation work
    scenarios: List[Scenario] = []
    index = 0
    while len(scenarios) < budget:
        for name in chosen:
            if len(scenarios) >= budget:
                break
            scenarios.append(build_scenario(name, index, seed))
        index += 1
    return scenarios
