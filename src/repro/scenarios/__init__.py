"""repro.scenarios — scenario engine + differential verification.

Generate workloads far beyond the fixed benchmark profiles and cross-check
every registered algorithm against the library's built-in oracles::

    from repro import scenarios

    # one reproducible scenario
    s = scenarios.build_scenario("zipf-sizes", index=3, root_seed=0)

    # the full differential harness (what `repro verify` runs)
    report = scenarios.run_verification(budget=20, seed=0)
    assert report["summary"]["ok"]

Components
----------
* :mod:`~repro.scenarios.engine` — the family registry and the
  bit-reproducible ``(root_seed, family, index)`` addressing scheme.
* :mod:`~repro.scenarios.families` — built-in families: online Poisson and
  bursty arrivals, Zipf-skewed sizes, oversubscribed fat trees, degraded
  links, trace replay, mid-run capacity churn, open-shop hardness gadgets,
  adversarial arrivals and amplified traces.
* :mod:`~repro.scenarios.amplify` — the seeded trace amplifier and its
  marginal-preservation guard.
* :mod:`~repro.scenarios.invariants` — the differential invariant suite
  (LP builder equivalence, simulator equivalence, feasibility, LP bounds,
  baseline orderings, report consistency, feasibility under churn).
* :mod:`~repro.scenarios.pipeline` — declarative YAML/JSON pipelines
  (spec → generate → solve → verify → report), what ``repro scenarios run``
  executes.
* :mod:`~repro.scenarios.verify` — the harness + machine-readable report.
"""

from repro.scenarios import families as _families  # noqa: F401 - registers built-ins
from repro.scenarios.amplify import (
    MarginalReport,
    amplify_coflows,
    amplify_trace,
    check_marginals,
)
from repro.scenarios.engine import (
    Scenario,
    ScenarioFamily,
    UnknownFamilyError,
    build_scenario,
    family_table,
    get_family,
    register_family,
    sample_scenarios,
    scenario_families,
)
from repro.scenarios.families import (
    BUILTIN_FAMILIES,
    ONLINE_FAMILIES,
    expected_model,
)
from repro.scenarios.invariants import (
    ScenarioRun,
    check_invariants,
    get_invariant,
    invariant_names,
    register_invariant,
)
from repro.scenarios.pipeline import (
    PipelineResult,
    PipelineSpec,
    ScenarioSelection,
    format_pipeline_report,
    run_pipeline,
    write_pipeline_report,
)
from repro.scenarios.verify import (
    execute_scenario,
    format_verification_report,
    run_verification,
    verify_scenario,
    write_verification_report,
)

__all__ = [
    "BUILTIN_FAMILIES",
    "ONLINE_FAMILIES",
    "MarginalReport",
    "PipelineResult",
    "PipelineSpec",
    "Scenario",
    "ScenarioFamily",
    "ScenarioRun",
    "ScenarioSelection",
    "UnknownFamilyError",
    "amplify_coflows",
    "amplify_trace",
    "build_scenario",
    "check_invariants",
    "check_marginals",
    "execute_scenario",
    "expected_model",
    "family_table",
    "format_pipeline_report",
    "format_verification_report",
    "get_family",
    "get_invariant",
    "invariant_names",
    "register_family",
    "register_invariant",
    "run_pipeline",
    "run_verification",
    "sample_scenarios",
    "scenario_families",
    "verify_scenario",
    "write_pipeline_report",
    "write_verification_report",
]
