"""Cross-checked invariants of the differential-verification harness.

Every invariant is a function ``(run: ScenarioRun) -> list[str]`` returning
human-readable violation messages (empty = the invariant holds).  They are
*differential*: each one checks an optimized implementation against an
independent oracle that is kept in the codebase for exactly this purpose —

====================      =====================================================
``lp-matrix``             vectorized LP assembly ≡ the loop-based reference
                          builder (:mod:`repro.core.timeindexed_reference`)
``incremental-sim``       incremental simulator ≡ full per-event re-allocation,
                          event-for-event
``schedule-feasibility``  every produced slot schedule passes
                          :func:`repro.schedule.feasibility.check_feasibility`
``lp-lower-bound``        slot-aligned objectives respect the LP lower bound
``baseline-ordering``     baseline priority orders match their paper-stated
                          rules (FIFO by release, Terra SRTF by standalone
                          time, weighted-SJF by standalone/weight, Sincronia
                          BSSI a permutation)
``report-consistency``    SolveReport internals agree with each other and with
                          the instance (finite times, release-time respect,
                          objective == w·C where that must hold)
``online-release-respect``  online policies never serve a coflow before its
                          release: the engine's first-service evidence and
                          every batch start are checked against releases
``online-lower-bound``    online objectives respect the *clairvoyant*
                          per-coflow LP bound ``C_j >= r_j + standalone_j``
                          (recomputed independently per coflow)
``feasibility-under-churn``  simulated reservations stay within the churned
                          capacity in every interval, completions stay finite,
                          and incremental ≡ full re-allocation under churn
``refine-equivalence``    the staged solve pipeline preserves the LP optimum:
                          ``strategy="refine"`` reproduces the direct objective
                          exactly, and ``strategy="coarsen"`` stays inside its
                          recorded (1+ε) guarantee band
====================      =====================================================

The checked implementations are referenced through module-level names so
tests can inject bugs by monkeypatching (e.g. replace
``build_time_indexed_lp`` with a wrapper that perturbs one coefficient) and
prove each violation type is actually catchable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.api.registry import get_algorithm
from repro.api.report import SolveReport
from repro.api.request import SolverConfig
from repro.baselines.greedy import sebf_priority_fn
from repro.baselines.terra import srtf_priority_fn
from repro.coflow.instance import TransmissionModel
from repro.network.churn import ChurnSchedule
from repro.core.timeindexed import (
    CoflowLPSolution,
    build_time_indexed_lp,
    resolve_grid,
    solve_time_indexed_lp,
)
from repro.core.timeindexed_reference import build_time_indexed_lp_reference
from repro.schedule.feasibility import check_feasibility
from repro.schedule.timegrid import relative_tol
from repro.sim.rate_allocation import coflow_standalone_time
from repro.sim.simulator import fifo_priority, simulate_priority_schedule

from repro.scenarios.engine import Scenario

#: Tolerance for completion-time equality between simulator modes.  The
#:  allocation memo makes both modes hit identical LP vertices, so this is a
#:  float-roundoff tolerance, not a modelling one.
SIM_EQUALITY_TOL = 1e-9

#: Relative slack for the LP lower bound (HiGHS solves to ~1e-9 accuracy).
LOWER_BOUND_RTOL = 1e-6


@dataclass
class ScenarioRun:
    """Everything one scenario produced: the inputs invariants cross-check.

    ``errors`` maps algorithm names to the exception text of solves that
    crashed; a crash is itself reported as a violation by the harness, and
    invariants simply skip those algorithms.
    """

    scenario: Scenario
    config: SolverConfig
    lp_solution: Optional[CoflowLPSolution]
    reports: Dict[str, SolveReport] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    _standalone: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def instance(self):
        return self.scenario.instance

    def standalone_times(self) -> np.ndarray:
        """Independently recomputed per-coflow standalone completion times.

        Several invariants need this oracle (the simulator-equivalence
        priority and the baseline-ordering cross-check); each coflow costs
        one max-concurrent-flow LP solve, so the array is computed once per
        run and shared.
        """
        if self._standalone is None:
            self._standalone = np.array(
                [
                    coflow_standalone_time(self.instance, j)
                    for j in range(self.instance.num_coflows)
                ]
            )
        return self._standalone


InvariantFn = Callable[[ScenarioRun], List[str]]


@dataclass(frozen=True)
class InvariantInfo:
    name: str
    check: InvariantFn
    description: str = ""


_REGISTRY: Dict[str, InvariantInfo] = {}


def register_invariant(
    name: str, *, description: str = ""
) -> Callable[[InvariantFn], InvariantFn]:
    """Decorator registering an invariant under *name* (latest wins)."""

    def decorator(fn: InvariantFn) -> InvariantFn:
        _REGISTRY[name] = InvariantInfo(name=name, check=fn, description=description)
        return fn

    return decorator


def get_invariant(name: str) -> InvariantInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown invariant {name!r}; registered invariants: "
            + ", ".join(sorted(_REGISTRY))
        ) from None


def invariant_names() -> Tuple[str, ...]:
    """Sorted names of all registered invariants."""
    return tuple(sorted(_REGISTRY))


def check_invariants(
    run: ScenarioRun, *, invariants: Optional[Iterable[str]] = None
) -> Dict[str, List[str]]:
    """Run the chosen invariants (default: all) and collect violations."""
    chosen = tuple(invariants) if invariants is not None else invariant_names()
    results: Dict[str, List[str]] = {}
    for name in chosen:
        info = get_invariant(name)
        try:
            results[name] = list(info.check(run))
        # A buggy invariant must surface as a *violation*, never abort the
        # differential run — this is the one sanctioned catch-all.
        except Exception as exc:  # repro-lint: allow[R007]
            results[name] = [f"invariant raised {type(exc).__name__}: {exc}"]
    return results


# --------------------------------------------------------------------------- #
# 1. vectorized LP assembly ≡ loop-based reference builder
# --------------------------------------------------------------------------- #
def _canonical(matrix):
    if matrix is None:
        return None
    csr = matrix.tocsr().copy()
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


@register_invariant(
    "lp-matrix",
    description="vectorized LP matrices identical to the loop-built reference",
)
def check_lp_matrix_equivalence(run: ScenarioRun) -> List[str]:
    instance = run.instance
    grid = (
        run.lp_solution.grid
        if run.lp_solution is not None
        else resolve_grid(instance)
    )
    lp_vec, _bundle = build_time_indexed_lp(instance, grid)
    lp_ref, _ref_bundle = build_time_indexed_lp_reference(instance, grid)
    ref = lp_ref.build_matrices()
    vec = lp_vec.build_matrices()
    violations: List[str] = []
    if not np.array_equal(ref[0], vec[0]):
        violations.append("objective vectors differ between builders")
    for label, a, b in (("A_ub", ref[1], vec[1]), ("A_eq", ref[3], vec[3])):
        a, b = _canonical(a), _canonical(b)
        if (a is None) != (b is None):
            violations.append(f"{label}: one builder emitted the block, the other not")
            continue
        if a is None:
            continue
        if a.shape != b.shape:
            violations.append(f"{label}: shapes differ ({a.shape} vs {b.shape})")
        elif (
            a.nnz != b.nnz
            or not np.array_equal(a.indptr, b.indptr)
            or not np.array_equal(a.indices, b.indices)
            or not np.array_equal(a.data, b.data)
        ):
            violations.append(f"{label}: sparsity pattern or values differ")
    for label, a, b in (("b_ub", ref[2], vec[2]), ("b_eq", ref[4], vec[4])):
        if (a is None) != (b is None) or (
            a is not None and not np.array_equal(a, b)
        ):
            violations.append(f"{label}: right-hand sides differ")
    if ref[5] != vec[5]:
        violations.append("variable bounds differ between builders")
    return violations


# --------------------------------------------------------------------------- #
# 2. incremental simulator ≡ full per-event re-allocation
# --------------------------------------------------------------------------- #
def _simulation_priority(instance, standalone: np.ndarray):
    """The priority the equivalence check drives both simulator modes with."""
    if instance.model is TransmissionModel.FREE_PATH:
        return srtf_priority_fn(instance, standalone)
    return sebf_priority_fn(instance, standalone)


@register_invariant(
    "incremental-sim",
    description="incremental allocation reuse equals full re-allocation, event-for-event",
)
def check_incremental_simulator(run: ScenarioRun) -> List[str]:
    instance = run.instance
    priority = _simulation_priority(instance, run.standalone_times())
    inc = simulate_priority_schedule(instance, priority, incremental=True)
    full = simulate_priority_schedule(instance, priority, incremental=False)
    violations: List[str] = []
    if inc.metadata.get("events") != full.metadata.get("events"):
        violations.append(
            f"event counts diverge: incremental={inc.metadata.get('events')} "
            f"full={full.metadata.get('events')}"
        )
    diff = np.abs(
        inc.coflow_completion_times - full.coflow_completion_times
    )
    worst = int(np.argmax(diff)) if diff.size else 0
    if diff.size and diff[worst] > SIM_EQUALITY_TOL:
        violations.append(
            f"completion times diverge (coflow {worst}: "
            f"incremental={inc.coflow_completion_times[worst]:.12g} "
            f"full={full.coflow_completion_times[worst]:.12g})"
        )
    return violations


# --------------------------------------------------------------------------- #
# 3. every produced schedule is feasible
# --------------------------------------------------------------------------- #
@register_invariant(
    "schedule-feasibility",
    description="every produced slot schedule passes the Section 3 constraint checker",
)
def check_schedule_feasibility(run: ScenarioRun) -> List[str]:
    violations: List[str] = []
    for name, report in run.reports.items():
        if report.schedule is None:
            continue
        feasibility = check_feasibility(report.schedule)
        if not feasibility.is_feasible:
            head = "; ".join(feasibility.violations[:3])
            violations.append(f"{name}: infeasible schedule ({head})")
    return violations


# --------------------------------------------------------------------------- #
# 4. slot-aligned objectives respect the LP lower bound
# --------------------------------------------------------------------------- #
@register_invariant(
    "lp-lower-bound",
    description="slot-aligned algorithm objectives are >= the LP lower bound",
)
def check_lp_lower_bound(run: ScenarioRun) -> List[str]:
    violations: List[str] = []
    for name, report in run.reports.items():
        if report.lower_bound is None:
            continue
        # Continuous-time baselines may legitimately beat the *slotted*
        # bound (see SolveReport.lower_bound); only slot-aligned algorithms
        # (the shared-LP consumers) are held to it.
        if not get_algorithm(name).uses_shared_lp:
            continue
        floor = report.lower_bound * (1.0 - LOWER_BOUND_RTOL) - 1e-9
        if report.objective < floor:
            violations.append(
                f"{name}: objective {report.objective:.9g} below LP lower "
                f"bound {report.lower_bound:.9g}"
            )
    return violations


# --------------------------------------------------------------------------- #
# 5. baseline orderings match their paper-stated rules
# --------------------------------------------------------------------------- #
def _monotone_along(order, values, tol) -> bool:
    arranged = np.asarray(values, dtype=float)[np.asarray(order, dtype=int)]
    return bool(np.all(np.diff(arranged) >= -tol))


@register_invariant(
    "baseline-ordering",
    description="FIFO/Terra/weighted-SJF/Sincronia orderings follow their stated rules",
)
def check_baseline_ordering(run: ScenarioRun) -> List[str]:
    instance = run.instance
    violations: List[str] = []

    if "fifo" in run.reports:
        order = list(fifo_priority(0.0, instance.demands(), instance))
        if sorted(order) != list(range(instance.num_coflows)):
            violations.append("fifo: priority order is not a permutation")
        elif not _monotone_along(order, instance.coflow_release_times(), 1e-12):
            violations.append(
                "fifo: priority order does not follow coflow release times"
            )

    for name in ("terra", "weighted-sjf", "sebf"):
        report = run.reports.get(name)
        if report is None:
            continue
        recorded = report.extras.get("standalone_times")
        if recorded is None:
            continue
        recorded = np.asarray(recorded, dtype=float)
        if recorded.shape != (instance.num_coflows,) or not np.allclose(
            recorded, run.standalone_times(), rtol=1e-6, atol=1e-8
        ):
            violations.append(
                f"{name}: recorded standalone times disagree with an "
                "independent recomputation"
            )
            continue
        if name == "terra":
            order = list(
                srtf_priority_fn(instance, recorded)(
                    0.0, instance.demands(), instance
                )
            )
            if not _monotone_along(order, recorded, 1e-9):
                violations.append(
                    "terra: initial SRTF order is not sorted by standalone time"
                )

    sincronia = run.reports.get("sincronia")
    if sincronia is not None:
        order = sincronia.extras.get("order")
        if order is None or sorted(order) != list(range(instance.num_coflows)):
            violations.append(
                "sincronia: BSSI order is missing or not a permutation of the coflows"
            )
    return violations


# --------------------------------------------------------------------------- #
# 6. SolveReport internal consistency
# --------------------------------------------------------------------------- #
@register_invariant(
    "report-consistency",
    description="completion times are finite, respect releases, and match the objective",
)
def check_report_consistency(run: ScenarioRun) -> List[str]:
    instance = run.instance
    release = instance.coflow_release_times()
    violations: List[str] = []
    for name, report in run.reports.items():
        times = report.coflow_completion_times
        if not np.all(np.isfinite(times)):
            violations.append(f"{name}: non-finite completion times")
            continue
        if np.any(times < -1e-12):
            violations.append(f"{name}: negative completion times")
        late = times - release
        if np.any(late < -1e-9):
            worst = int(np.argmin(late))
            violations.append(
                f"{name}: coflow {worst} completes at {times[worst]:.9g}, "
                f"before its release time {release[worst]:.9g}"
            )
        if get_algorithm(name).objective_is_wct:
            wct = float(np.dot(instance.weights, times))
            if not np.isclose(report.objective, wct, rtol=1e-9, atol=1e-9):
                violations.append(
                    f"{name}: objective {report.objective:.9g} != weighted "
                    f"completion time {wct:.9g} of the reported times"
                )
        if not report.is_feasible:
            violations.append(f"{name}: report flagged infeasible")
    return violations


# --------------------------------------------------------------------------- #
# 7. online policies never allocate before release
# --------------------------------------------------------------------------- #
def _online_reports(run: ScenarioRun):
    for name, report in run.reports.items():
        if get_algorithm(name).online:
            yield name, report


def _release_tol(release: float) -> float:
    """Relative boundary tolerance — the shared ``TimeGrid`` discipline."""
    return relative_tol(release, 1e-9)


@register_invariant(
    "online-release-respect",
    description="online policies never serve a coflow before its release time",
)
def check_online_release_respect(run: ScenarioRun) -> List[str]:
    """No allocation before release, checked against first-service evidence.

    Every online report carries the engine's evidence: the earliest time
    each coflow was allowed to transmit (``first_service_times``; batch
    start for batching policies, first positive simulator rate otherwise),
    plus per-batch records for batching policies.  Missing evidence is
    itself a violation — an online result the harness cannot audit has lost
    its contract.
    """
    instance = run.instance
    release = instance.coflow_release_times()
    violations: List[str] = []
    for name, report in _online_reports(run):
        first = report.extras.get("first_service_times")
        if first is None:
            violations.append(
                f"{name}: online report carries no first-service evidence"
            )
            continue
        if len(first) != instance.num_coflows:
            violations.append(
                f"{name}: first-service evidence has {len(first)} entries "
                f"for {instance.num_coflows} coflows"
            )
            continue
        for j, served_at in enumerate(first):
            if served_at is None:  # never served (e.g. zero demand)
                continue
            if float(served_at) < release[j] - _release_tol(release[j]):
                violations.append(
                    f"{name}: coflow {j} first served at {float(served_at):.9g}, "
                    f"before its release time {release[j]:.9g}"
                )
        for batch in report.extras.get("batches") or ():
            start = float(batch["start_time"])
            for j in batch["coflow_indices"]:
                if start < release[int(j)] - _release_tol(release[int(j)]):
                    violations.append(
                        f"{name}: batch (epoch {batch['epoch_index']}) starts "
                        f"at {start:.9g}, before member coflow {j}'s release "
                        f"time {release[int(j)]:.9g}"
                    )
    return violations


# --------------------------------------------------------------------------- #
# 8. online objectives respect the clairvoyant LP lower bound
# --------------------------------------------------------------------------- #
@register_invariant(
    "online-lower-bound",
    description="online objectives respect the clairvoyant per-coflow LP bound",
)
def check_online_lower_bound(run: ScenarioRun) -> List[str]:
    """Online results can never beat a clairvoyant per-coflow LP bound.

    Every feasible schedule — continuous-time or slotted, online or
    offline — satisfies ``C_j >= r_j + standalone_j``, where ``standalone_j``
    is the coflow's max-concurrent-flow LP completion time on the empty
    network (recomputed independently by :meth:`ScenarioRun.standalone_times`).
    Summed with the weights this is the clairvoyant lower bound online
    objectives are held to.  (The *slotted* time-indexed LP objective is
    deliberately not used here: it quantizes completions to slot ends, which
    continuous-time schedules may legitimately beat — see
    ``SolveReport.lower_bound``.)
    """
    instance = run.instance
    release = instance.coflow_release_times()
    standalone = run.standalone_times()
    floor_times = release + standalone
    clairvoyant = float(np.dot(instance.weights, floor_times))
    violations: List[str] = []
    for name, report in _online_reports(run):
        times = report.coflow_completion_times
        slack = times - floor_times
        tol = LOWER_BOUND_RTOL * np.maximum(1.0, np.abs(floor_times))
        if np.any(slack < -tol):
            worst = int(np.argmin(slack))
            violations.append(
                f"{name}: coflow {worst} completes at {times[worst]:.9g}, "
                f"below its clairvoyant floor release + standalone = "
                f"{floor_times[worst]:.9g}"
            )
        floor_objective = clairvoyant * (1.0 - LOWER_BOUND_RTOL) - 1e-9
        if report.objective < floor_objective:
            violations.append(
                f"{name}: objective {report.objective:.9g} below the "
                f"clairvoyant lower bound {clairvoyant:.9g}"
            )
    return violations


# --------------------------------------------------------------------------- #
# 9. simulated reservations stay feasible under capacity churn
# --------------------------------------------------------------------------- #
#: Relative slack for comparing reserved capacity against churned capacity.
CHURN_FEASIBILITY_RTOL = 1e-6


# --------------------------------------------------------------------------- #
# 10. staged solve strategies preserve the LP optimum
# --------------------------------------------------------------------------- #
#: Relative tolerance for refine ≡ direct objectives.  Both strategies solve
#: the *same* fine LP to HiGHS default accuracy — only the starting point
#: differs — so this is solver roundoff, not a modelling band.
REFINE_EQUALITY_RTOL = 1e-6

#: Skip the strategy cross-solve above this estimated fine-LP variable count:
#: the invariant re-solves the fine LP twice plus a coarse stage, and the
#: nightly sweep runs it on every scenario.
REFINE_CHECK_MAX_VARIABLES = 200_000


@register_invariant(
    "refine-equivalence",
    description="refine reproduces the direct LP optimum; coarsen stays within "
    "its recorded (1+ε) guarantee",
)
def check_refine_equivalence(run: ScenarioRun) -> List[str]:
    """Cross-solve the instance with all three strategies and compare optima.

    ``refine`` solves the *identical* fine LP as ``direct`` (the geometric
    stage only supplies a warm-start point), so its objective must match to
    solver roundoff.  ``coarsen`` solves a dual-guided adaptive grid whose
    geometric stage carries the paper's Appendix A (1+ε) guarantee; its
    objective may land on either side of the direct optimum (the adaptive
    grid neither refines nor coarsens the fine uniform grid), so the band
    is checked in *both* directions against the recorded guarantee factor.
    """
    instance = run.instance
    grid = (
        run.lp_solution.grid
        if run.lp_solution is not None
        else resolve_grid(instance)
    )
    num_edges = (
        instance.graph.num_edges
        if instance.model is TransmissionModel.FREE_PATH
        else 1
    )
    estimated_variables = instance.num_flows * grid.num_slots * (1 + num_edges)
    if estimated_variables > REFINE_CHECK_MAX_VARIABLES:
        return []

    direct = solve_time_indexed_lp(instance, grid=grid, strategy="direct")
    refine = solve_time_indexed_lp(instance, grid=grid, strategy="refine")
    coarsen = solve_time_indexed_lp(instance, grid=grid, strategy="coarsen")
    violations: List[str] = []

    scale = max(abs(direct.objective), 1.0)
    if abs(refine.objective - direct.objective) > REFINE_EQUALITY_RTOL * scale:
        violations.append(
            f"refine objective {refine.objective:.12g} differs from direct "
            f"objective {direct.objective:.12g} beyond solver roundoff"
        )
    for label, solution in (("refine", refine), ("coarsen", coarsen)):
        path = solution.metadata.get("solve_path")
        if not isinstance(path, dict):
            violations.append(f"{label}: solution carries no solve_path telemetry")
    coarsen_path = coarsen.metadata.get("solve_path") or {}
    coarsen_info = (
        coarsen_path.get("coarsen") if isinstance(coarsen_path, dict) else None
    )
    # A coarsen run that degraded to direct solved the exact target LP, so
    # its band is 1.0 (solver roundoff only); otherwise the recorded
    # geometric-stage guarantee applies.
    if isinstance(coarsen_path, dict) and coarsen_path.get("degraded_to"):
        guarantee = 1.0
    elif isinstance(coarsen_info, dict):
        guarantee = float(coarsen_info.get("guarantee_factor", 1.0))
    else:
        guarantee = 1.0
    rel_gap = abs(coarsen.objective - direct.objective) / max(
        abs(direct.objective), 1e-12
    )
    if 1.0 + rel_gap > guarantee + REFINE_EQUALITY_RTOL:
        violations.append(
            f"coarsen objective {coarsen.objective:.12g} deviates from "
            f"direct objective {direct.objective:.12g} by "
            f"{rel_gap * 100:.2f}%, outside the recorded (1+ε) guarantee "
            f"factor {guarantee:.3g}"
        )
    return violations


@register_invariant(
    "feasibility-under-churn",
    description="churn-aware simulation reserves within the churned capacity "
    "in every interval, and incremental ≡ full re-allocation under churn",
)
def check_feasibility_under_churn(run: ScenarioRun) -> List[str]:
    """Simulate under the scenario's churn schedule and audit every interval.

    Scenarios without a ``churn`` entry in their params vacuously pass.
    For churned scenarios the check is threefold: (a) the per-edge capacity
    the allocator reserved in each constant-rate interval never exceeds the
    capacity the schedule actually grants at that interval's start; (b) the
    simulation completes with finite times that respect releases (a full
    outage must make flows *wait*, never deadlock or teleport); (c) the
    incremental simulator matches full per-event re-allocation
    event-for-event under churn too, extending the ``incremental-sim``
    guarantee to dynamic capacity.
    """
    params = run.scenario.params or {}
    churn_data = params.get("churn")
    if not churn_data:
        return []
    churn = ChurnSchedule.from_dict(churn_data)
    instance = run.instance
    priority = _simulation_priority(instance, run.standalone_times())
    result = simulate_priority_schedule(
        instance, priority, record_timeline=True, churn=churn
    )
    violations: List[str] = []

    times = result.coflow_completion_times
    if not np.all(np.isfinite(times)):
        violations.append("churned simulation produced non-finite completion times")
    else:
        release = instance.coflow_release_times()
        late = times - release
        if np.any(late < -1e-9):
            worst = int(np.argmin(late))
            violations.append(
                f"churned simulation completes coflow {worst} at "
                f"{times[worst]:.9g}, before its release {release[worst]:.9g}"
            )

    edges = list(instance.graph.edges)
    for entry in result.timeline:
        if entry.edge_usage is None:
            violations.append(
                "churn-aware simulation recorded no edge-usage evidence"
            )
            break
        # A correct simulator breaks intervals at every churn event, so the
        # capacity at `start` covers the whole interval.  A buggy one may
        # span events with a single interval — audit those instants too, or
        # the planted ignores-the-schedule bug sails through.
        granted = churn.capacity_vector_at(instance.graph, entry.start)
        for event_time in churn.event_times:
            if entry.start < event_time < entry.end:
                granted = np.minimum(
                    granted,
                    churn.capacity_vector_at(instance.graph, event_time),
                )
        tol = CHURN_FEASIBILITY_RTOL * np.maximum(1.0, granted) + 1e-9
        excess = entry.edge_usage - granted
        if np.any(excess > tol):
            worst = int(np.argmax(excess))
            violations.append(
                f"interval [{entry.start:.6g}, {entry.end:.6g}] reserves "
                f"{entry.edge_usage[worst]:.9g} on edge {edges[worst]} but "
                f"the churn schedule only grants {granted[worst]:.9g}"
            )
            break

    full = simulate_priority_schedule(
        instance, priority, incremental=False, churn=churn
    )
    if result.metadata.get("events") != full.metadata.get("events"):
        violations.append(
            f"event counts diverge under churn: incremental="
            f"{result.metadata.get('events')} full={full.metadata.get('events')}"
        )
    diff = np.abs(result.coflow_completion_times - full.coflow_completion_times)
    worst = int(np.argmax(diff)) if diff.size else 0
    if diff.size and diff[worst] > SIM_EQUALITY_TOL:
        violations.append(
            f"completion times diverge under churn (coflow {worst}: "
            f"incremental={result.coflow_completion_times[worst]:.12g} "
            f"full={full.coflow_completion_times[worst]:.12g})"
        )
    return violations
