"""Built-in scenario families.

Importing this module populates the registry of
:mod:`repro.scenarios.engine` with the ten families the verification
harness samples by default:

=======================  ====================================================
name                     what it stresses
=======================  ====================================================
``online-poisson``       online operation: memoryless (Poisson) coflow arrivals
``bursty-arrivals``      synchronized bursts — many coflows released at once
``zipf-sizes``           heavy-tailed (Zipf) flow sizes: elephants among mice
``oversubscribed``       fat-tree fabrics whose core carries 1/k of host demand
``link-failure``         degraded-capacity WAN variants (partial link failures)
``trace-replay``         the save → load → replay path of :mod:`repro.workloads.traces`
``capacity-churn``       mid-run capacity churn (degrade / outage / restore)
``hardness-gadget``      Section 5 open-shop reductions: worst-case LP gaps
``adversarial-arrival``  geometric arrival bursts engineered against SRTF
``amplified-trace``      the trace amplifier path (bootstrap + replay)
=======================  ====================================================

Every family alternates the transmission model with the scenario index,
and the families are split into two phase groups (see ``MODEL_OFFSET``):
half start at free path, half at single path.  A round-robin sample
therefore covers *both* LP families and every registered algorithm —
including the model-restricted Terra and Jahanjou — even when the budget is
as small as two scenarios.  Builders draw all randomness from the generator
the engine hands them — see the engine module docstring for the
reproducibility contract.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.coflow.coflow import Coflow
from repro.coflow.flow import Flow
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.network.churn import ChurnSchedule
from repro.network.graph import NetworkGraph
from repro.network.paths import pin_random_shortest_paths
from repro.network.topologies import (
    fat_tree_hosts,
    fat_tree_topology,
    gscale_topology,
    swan_topology,
)
from repro.openshop.instance import OpenShopInstance
from repro.openshop.reduction import (
    openshop_objective_bounds,
    openshop_to_coflow_instance,
)
from repro.utils.io import scratch_path
from repro.workloads.generator import WorkloadSpec, generate_coflows
from repro.workloads.traces import replay_coflows, replay_trace, save_trace

from repro.scenarios.amplify import amplify_coflows, check_marginals
from repro.scenarios.engine import register_family

#: Builders keep instances deliberately small: every scenario is solved by
#: every registered algorithm, including the time-indexed LPs, so a budget-50
#: nightly run must stay minutes, not hours.
MAX_COFLOWS = 5
MAX_WIDTH = 3

#: Model phase per family: offset 0 families start at free path, offset 1
#: families at single path, both alternating with the scenario index.  The
#: offsets are fixed literals (not derived from registry order) so scenario
#: addresses stay stable when families are added or renamed — and they are
#: deliberately split half/half so even a budget that only reaches index 0
#: (one scenario per family) exercises both transmission models.
MODEL_OFFSET = {
    "online-poisson": 0,
    "bursty-arrivals": 1,
    "zipf-sizes": 0,
    "oversubscribed": 1,
    "link-failure": 0,
    "trace-replay": 1,
    "capacity-churn": 0,
    "hardness-gadget": 1,
    "adversarial-arrival": 1,
    "amplified-trace": 0,
}


def expected_model(family: str, index: int) -> TransmissionModel:
    """The transmission model scenario ``(family, index)`` is built with."""
    offset = MODEL_OFFSET.get(family, 0)
    return (
        TransmissionModel.FREE_PATH
        if (index + offset) % 2 == 0
        else TransmissionModel.SINGLE_PATH
    )


def _assemble(
    graph: NetworkGraph,
    coflows: Sequence[Coflow],
    model: TransmissionModel,
    rng: np.random.Generator,
    name: str,
) -> CoflowInstance:
    coflows = list(coflows)
    if model is TransmissionModel.SINGLE_PATH:
        coflows = pin_random_shortest_paths(graph, coflows, rng)
    return CoflowInstance(graph, coflows, model=model, name=name)


def _draw_endpoints(
    rng: np.random.Generator, nodes: Sequence[str], width: int
) -> List[Tuple[str, str]]:
    pairs = []
    for _ in range(width):
        src, dst = rng.choice(np.asarray(nodes, dtype=object), size=2, replace=False)
        pairs.append((str(src), str(dst)))
    return pairs


def _make_coflows(
    rng: np.random.Generator,
    nodes: Sequence[str],
    *,
    num_coflows: int,
    release_times: np.ndarray,
    demand_sampler,
    weighted: bool,
    label: str,
) -> List[Coflow]:
    coflows: List[Coflow] = []
    for j in range(num_coflows):
        width = int(rng.integers(1, MAX_WIDTH + 1))
        pairs = _draw_endpoints(rng, nodes, width)
        demands = np.maximum(np.asarray(demand_sampler(width), dtype=float), 1e-3)
        flows = tuple(
            Flow(src, dst, float(demand), release_time=float(release_times[j]), name=f"f{i}")
            for i, ((src, dst), demand) in enumerate(zip(pairs, demands))
        )
        weight = float(rng.uniform(1.0, 10.0)) if weighted else 1.0
        coflows.append(
            Coflow(
                flows,
                weight=weight,
                release_time=float(release_times[j]),
                name=f"{label}-{j}",
            )
        )
    return coflows


# --------------------------------------------------------------------------- #
# online arrivals
# --------------------------------------------------------------------------- #
@register_family(
    "online-poisson",
    description="Poisson coflow arrivals on the SWAN WAN (online operation)",
    tags=("online", "arrivals"),
)
def _build_online_poisson(rng: np.random.Generator, index: int):
    model = expected_model("online-poisson", index)
    graph = swan_topology()
    num_coflows = int(rng.integers(3, MAX_COFLOWS + 1))
    mean_interarrival = float(rng.uniform(0.4, 1.5))
    inter = rng.exponential(scale=mean_interarrival, size=num_coflows)
    release = np.cumsum(inter)
    release[0] = 0.0  # the first coflow arrives at time zero
    weighted = bool(rng.integers(0, 2))
    coflows = _make_coflows(
        rng,
        graph.nodes,
        num_coflows=num_coflows,
        release_times=release,
        demand_sampler=lambda k: rng.lognormal(mean=0.2, sigma=0.6, size=k) * 1.5,
        weighted=weighted,
        label="poisson",
    )
    params = {
        "num_coflows": num_coflows,
        "mean_interarrival": mean_interarrival,
        "weighted": weighted,
    }
    return _assemble(graph, coflows, model, rng, f"online-poisson-{index}"), params


@register_family(
    "bursty-arrivals",
    description="synchronized release bursts — several coflows arrive at once",
    tags=("online", "arrivals", "bursty"),
)
def _build_bursty(rng: np.random.Generator, index: int):
    model = expected_model("bursty-arrivals", index)
    graph = swan_topology()
    num_bursts = int(rng.integers(1, 3))
    per_burst = int(rng.integers(2, 4))
    num_coflows = min(num_bursts * per_burst, MAX_COFLOWS)
    burst_gap = float(rng.uniform(1.0, 4.0))
    burst_times = np.arange(num_bursts) * burst_gap
    release = np.repeat(burst_times, per_burst)[:num_coflows]
    coflows = _make_coflows(
        rng,
        graph.nodes,
        num_coflows=num_coflows,
        release_times=release,
        demand_sampler=lambda k: rng.uniform(0.5, 3.0, size=k),
        weighted=True,
        label="burst",
    )
    params = {
        "num_bursts": num_bursts,
        "per_burst": per_burst,
        "burst_gap": burst_gap,
    }
    return _assemble(graph, coflows, model, rng, f"bursty-{index}"), params


# --------------------------------------------------------------------------- #
# skewed sizes
# --------------------------------------------------------------------------- #
@register_family(
    "zipf-sizes",
    description="heavy-tailed (Zipf) flow sizes: a few elephants, many mice",
    tags=("skew", "sizes"),
)
def _build_zipf(rng: np.random.Generator, index: int):
    model = expected_model("zipf-sizes", index)
    graph = swan_topology()
    num_coflows = int(rng.integers(3, MAX_COFLOWS + 1))
    zipf_a = float(rng.uniform(1.4, 2.6))
    base_demand = float(rng.uniform(0.3, 0.8))

    def demands(k: int) -> np.ndarray:
        # rng.zipf draws unbounded integers; cap the tail so one elephant
        # cannot blow the LP horizon up by orders of magnitude.
        return base_demand * np.minimum(rng.zipf(zipf_a, size=k), 24)

    release = np.zeros(num_coflows)  # offline: skew is the stressor here
    coflows = _make_coflows(
        rng,
        graph.nodes,
        num_coflows=num_coflows,
        release_times=release,
        demand_sampler=demands,
        weighted=True,
        label="zipf",
    )
    params = {
        "num_coflows": num_coflows,
        "zipf_a": zipf_a,
        "base_demand": base_demand,
    }
    return _assemble(graph, coflows, model, rng, f"zipf-{index}"), params


# --------------------------------------------------------------------------- #
# oversubscription
# --------------------------------------------------------------------------- #
@register_family(
    "oversubscribed",
    description="cross-rack coflows on a fat tree with an oversubscribed core",
    tags=("topology", "oversubscription", "fat-tree"),
)
def _build_oversubscribed(rng: np.random.Generator, index: int):
    model = expected_model("oversubscribed", index)
    ratio = float(rng.choice(np.array([2.0, 4.0, 8.0])))
    num_tors = int(rng.integers(2, 4))
    graph = fat_tree_topology(
        num_tors=num_tors, hosts_per_tor=2, oversubscription=ratio
    )
    hosts = fat_tree_hosts(graph)
    by_tor: Dict[str, List[str]] = {}
    for host in hosts:
        by_tor.setdefault(host.split("h")[0], []).append(host)
    tors = sorted(by_tor)
    num_coflows = int(rng.integers(3, MAX_COFLOWS + 1))
    coflows: List[Coflow] = []
    for j in range(num_coflows):
        width = int(rng.integers(1, MAX_WIDTH + 1))
        flows = []
        for i in range(width):
            # Cross-rack on purpose: pick two distinct racks, then one host
            # in each, so every flow traverses the oversubscribed core.
            src_tor, dst_tor = rng.choice(
                np.asarray(tors, dtype=object), size=2, replace=False
            )
            src = str(rng.choice(np.asarray(by_tor[str(src_tor)], dtype=object)))
            dst = str(rng.choice(np.asarray(by_tor[str(dst_tor)], dtype=object)))
            demand = float(rng.uniform(0.3, 1.5))
            flows.append(Flow(src, dst, demand, name=f"f{i}"))
        coflows.append(
            Coflow(
                tuple(flows),
                weight=float(rng.uniform(1.0, 10.0)),
                name=f"xrack-{j}",
            )
        )
    params = {
        "oversubscription": ratio,
        "num_tors": num_tors,
        "num_coflows": num_coflows,
    }
    return _assemble(graph, coflows, model, rng, f"oversub-{index}"), params


# --------------------------------------------------------------------------- #
# failures
# --------------------------------------------------------------------------- #
@register_family(
    "link-failure",
    description="SWAN with randomly degraded links (partial link failures)",
    tags=("topology", "failures"),
)
def _build_link_failure(rng: np.random.Generator, index: int):
    model = expected_model("link-failure", index)
    base = swan_topology()
    undirected = sorted({tuple(sorted(edge)) for edge in base.edges})
    num_failures = int(rng.integers(1, 3))
    picks = rng.choice(len(undirected), size=num_failures, replace=False)
    # Degrade (not remove) both directions of each picked link: degraded
    # capacity keeps every instance feasible while still rerouting load.
    factors = {
        undirected[int(p)]: float(rng.uniform(0.15, 0.5)) for p in picks
    }
    degraded = NetworkGraph(name=f"swan-degraded-{index}")
    for (u, v), cap in base.capacities().items():
        factor = factors.get(tuple(sorted((u, v))), 1.0)
        degraded.add_edge(u, v, cap * factor)

    num_coflows = int(rng.integers(3, MAX_COFLOWS + 1))
    release = np.round(rng.uniform(0.0, 3.0, size=num_coflows), 3)
    release[int(rng.integers(0, num_coflows))] = 0.0
    coflows = _make_coflows(
        rng,
        degraded.nodes,
        num_coflows=num_coflows,
        release_times=release,
        demand_sampler=lambda k: rng.uniform(0.4, 2.5, size=k),
        weighted=True,
        label="fail",
    )
    params = {
        "degraded_links": {f"{u}-{v}": f for (u, v), f in factors.items()},
        "num_coflows": num_coflows,
    }
    return _assemble(degraded, coflows, model, rng, f"link-failure-{index}"), params


# --------------------------------------------------------------------------- #
# trace replay
# --------------------------------------------------------------------------- #
@register_family(
    "trace-replay",
    description="save → load → replay of a generated trace, possibly on a new WAN",
    tags=("traces", "io"),
)
def _build_trace_replay(rng: np.random.Generator, index: int):
    model = expected_model("trace-replay", index)
    source_graph = swan_topology()
    num_coflows = int(rng.integers(3, MAX_COFLOWS + 1))
    spec = WorkloadSpec(
        profile="FB",
        num_coflows=num_coflows,
        weighted=True,
        demand_scale=float(rng.uniform(0.8, 1.6)),
    )
    coflows = generate_coflows(source_graph, spec, rng)
    # Replay onto G-Scale half the time: endpoints are then foreign and the
    # replay hook's deterministic node remapping is exercised for real.
    cross_topology = bool(rng.integers(0, 2))
    target_graph = gscale_topology() if cross_topology else swan_topology()

    with scratch_path(suffix=".json", prefix="repro-trace-") as path:
        save_trace(list(coflows), path)
        instance = replay_trace(
            path,
            target_graph,
            model=model,
            rng=rng,
            name=f"trace-replay-{index}",
        )
    params = {
        "num_coflows": num_coflows,
        "demand_scale": spec.demand_scale,
        "cross_topology": cross_topology,
        "target": target_graph.name,
    }
    return instance, params


# --------------------------------------------------------------------------- #
# mid-run capacity churn
# --------------------------------------------------------------------------- #
@register_family(
    "capacity-churn",
    description="SWAN with mid-run capacity churn: degrade, outage, restore",
    tags=("topology", "churn", "dynamic"),
)
def _build_capacity_churn(rng: np.random.Generator, index: int):
    model = expected_model("capacity-churn", index)
    graph = swan_topology()
    undirected = sorted({tuple(sorted(edge)) for edge in graph.edges})
    num_churned = int(rng.integers(1, 3))
    picks = rng.choice(len(undirected), size=num_churned, replace=False)
    events = []
    for p in picks:
        u, v = undirected[int(p)]
        down_at = float(np.round(rng.uniform(0.3, 1.5), 3))
        up_at = float(np.round(down_at + rng.uniform(1.0, 3.0), 3))
        # One in three churned links goes fully dark (factor 0), the rest
        # degrade; every change is restored so instances stay feasible.
        factor = 0.0 if rng.uniform() < 1.0 / 3.0 else float(
            np.round(rng.uniform(0.3, 0.7), 3)
        )
        for edge in ((u, v), (v, u)):
            events.append({"time": down_at, "edge": edge, "factor": factor})
            events.append({"time": up_at, "edge": edge, "factor": 1.0})
    schedule = ChurnSchedule(events=tuple(events))

    num_coflows = int(rng.integers(3, MAX_COFLOWS + 1))
    release = np.round(rng.uniform(0.0, 2.0, size=num_coflows), 3)
    release[int(rng.integers(0, num_coflows))] = 0.0
    coflows = _make_coflows(
        rng,
        graph.nodes,
        num_coflows=num_coflows,
        release_times=release,
        demand_sampler=lambda k: rng.uniform(0.4, 2.0, size=k),
        weighted=True,
        label="churn",
    )
    params = {
        "churn": schedule.to_dict(),
        "num_churned_links": num_churned,
        "num_coflows": num_coflows,
    }
    return _assemble(graph, coflows, model, rng, f"capacity-churn-{index}"), params


# --------------------------------------------------------------------------- #
# adversarial families
# --------------------------------------------------------------------------- #
@register_family(
    "hardness-gadget",
    description="Section 5 open-shop reduction instances (worst-case LP gaps)",
    tags=("adversarial", "hardness", "openshop"),
)
def _build_hardness_gadget(rng: np.random.Generator, index: int):
    model = expected_model("hardness-gadget", index)
    num_machines = int(rng.integers(2, 4))
    num_jobs = int(rng.integers(3, MAX_COFLOWS + 1))
    shop = OpenShopInstance.random(
        num_machines=num_machines,
        num_jobs=num_jobs,
        rng=rng,
        max_processing=4.0,
        density=0.8,
        weighted=bool(rng.integers(0, 2)),
    )
    instance = openshop_to_coflow_instance(shop, model=model)
    # Cheap combinatorial bounds on the open-shop side: the verify engine's
    # gap metric reads these from the params to contextualize the LP gap.
    shop_lower, shop_upper = openshop_objective_bounds(shop)
    params = {
        "num_machines": num_machines,
        "num_jobs": num_jobs,
        "openshop_lower": float(shop_lower),
        "openshop_upper": float(shop_upper),
    }
    return instance, params


@register_family(
    "adversarial-arrival",
    description="geometric arrival bursts engineered against SRTF-style policies",
    tags=("adversarial", "online", "arrivals"),
)
def _build_adversarial_arrival(rng: np.random.Generator, index: int):
    model = expected_model("adversarial-arrival", index)
    graph = swan_topology()
    num_coflows = int(rng.integers(4, MAX_COFLOWS + 1))
    base = float(rng.uniform(1.5, 2.0))
    epsilon = float(rng.uniform(0.01, 0.05))
    # One heavy coflow at time zero, then light coflows arriving just after
    # each geometric boundary base^k: an SRTF-style policy keeps preempting
    # the elephant, which is exactly the worst case the LP bound exposes.
    heavy = _make_coflows(
        rng,
        graph.nodes,
        num_coflows=1,
        release_times=np.zeros(1),
        demand_sampler=lambda k: rng.uniform(3.0, 5.0, size=k),
        weighted=False,
        label="adv-heavy",
    )
    boundaries = np.array(
        [base**k + epsilon for k in range(num_coflows - 1)], dtype=float
    )
    light = _make_coflows(
        rng,
        graph.nodes,
        num_coflows=num_coflows - 1,
        release_times=boundaries,
        demand_sampler=lambda k: rng.uniform(0.1, 0.4, size=k),
        weighted=False,
        label="adv-light",
    )
    params = {
        "num_coflows": num_coflows,
        "base": base,
        "epsilon": epsilon,
    }
    return (
        _assemble(graph, heavy + light, model, rng, f"adversarial-arrival-{index}"),
        params,
    )


# --------------------------------------------------------------------------- #
# amplified traces
# --------------------------------------------------------------------------- #
@register_family(
    "amplified-trace",
    description="bootstrap-amplified trace replayed on the SWAN WAN",
    tags=("traces", "amplifier"),
)
def _build_amplified_trace(rng: np.random.Generator, index: int):
    model = expected_model("amplified-trace", index)
    graph = swan_topology()
    base_count = 3
    spec = WorkloadSpec(
        profile="FB",
        num_coflows=base_count,
        weighted=True,
        demand_scale=float(rng.uniform(0.8, 1.6)),
    )
    base = list(generate_coflows(graph, spec, rng))
    amplify_seed = int(rng.integers(0, 2**63 - 1))
    target = int(rng.integers(4, MAX_COFLOWS + 1))
    amplified = amplify_coflows(base, target, root_seed=amplify_seed)
    report = check_marginals(base, amplified)
    instance = replay_coflows(
        amplified,
        graph,
        model=model,
        rng=rng,
        name=f"amplified-trace-{index}",
    )
    params = {
        "base_coflows": base_count,
        "num_coflows": target,
        "amplify_seed": amplify_seed,
        "marginals_ok": bool(report.ok),
        "marginals": {k: float(v) for k, v in report.stats.items()},
    }
    return instance, params


#: Families registered by this module (the default sample set).
BUILTIN_FAMILIES = (
    "online-poisson",
    "bursty-arrivals",
    "zipf-sizes",
    "oversubscribed",
    "link-failure",
    "trace-replay",
    "capacity-churn",
    "hardness-gadget",
    "adversarial-arrival",
    "amplified-trace",
)

#: The arrival-driven families — the default sample set when specifically
#: exercising the online policies (``repro verify --family ...`` in the
#: nightly online job, :meth:`repro.online.stream.ArrivalStream.from_scenario`
#: demos).  Both carry the ``"online"`` tag in the registry.
ONLINE_FAMILIES = (
    "online-poisson",
    "bursty-arrivals",
)
