"""Statistical profiles of the paper's four workloads.

Each profile captures the shape of one benchmark's coflow population:

* ``width_range`` — how many flows a coflow contains (log-uniform between
  the bounds).  MapReduce-style shuffles in the Facebook trace are mostly
  narrow with a wide tail; decision-support benchmarks (TPC-DS/H, BigBench)
  produce wider, more regular shuffles.
* ``demand_log_mean`` / ``demand_log_sigma`` — per-flow transfer sizes are
  log-normal.  Sizes are expressed relative to a unit-capacity link and one
  unit time slot, i.e. a demand of 4.0 keeps a unit link busy for 4 slots.
  The Facebook trace is famously heavy tailed (most coflows tiny, a few
  enormous); TPC-H shuffles are fewer but larger; TPC-DS and BigBench sit in
  between.
* ``arrival_rate`` — coflows arrive according to a Poisson process with this
  expected number of arrivals per time slot (the paper assigns release times
  "similar to that in production traces").
* ``weight_range`` — priorities drawn uniformly from this interval, exactly
  as in the paper ("weights uniformly chosen from the interval between 1.0
  and 100.0").

The numbers are synthetic stand-ins for the real traces (which are not
redistributable); what the experiments rely on is the *relative* shape:
FB = narrow + heavy tail + bursty arrivals, TPC-H = wide + large,
TPC-DS / BigBench = intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.validation import check_positive

#: Canonical workload names in the order the paper's figures list them.
BENCHMARK_NAMES: Tuple[str, ...] = ("BigBench", "TPC-DS", "TPC-H", "FB")


@dataclass(frozen=True)
class WorkloadProfile:
    """Shape parameters of one benchmark's coflow population."""

    name: str
    width_range: Tuple[int, int]
    demand_log_mean: float
    demand_log_sigma: float
    arrival_rate: float
    weight_range: Tuple[float, float] = (1.0, 100.0)
    description: str = ""

    def __post_init__(self) -> None:
        lo, hi = self.width_range
        if not (1 <= lo <= hi):
            raise ValueError(f"invalid width range {self.width_range}")
        check_positive(self.demand_log_sigma, "demand_log_sigma")
        check_positive(self.arrival_rate, "arrival_rate")
        wlo, whi = self.weight_range
        check_positive(wlo, "weight lower bound")
        if whi < wlo:
            raise ValueError("weight_range upper bound below lower bound")


def bigbench_profile() -> WorkloadProfile:
    """BigBench (TPCx-BB): mixed analytic queries, moderate shuffles."""
    return WorkloadProfile(
        name="BigBench",
        width_range=(2, 6),
        demand_log_mean=0.8,
        demand_log_sigma=0.7,
        arrival_rate=0.8,
        description="Mixed interactive/analytic queries; moderate, fairly "
        "regular shuffle sizes.",
    )


def tpcds_profile() -> WorkloadProfile:
    """TPC-DS: many decision-support queries with mid-size shuffles."""
    return WorkloadProfile(
        name="TPC-DS",
        width_range=(2, 8),
        demand_log_mean=1.0,
        demand_log_sigma=0.8,
        arrival_rate=0.7,
        description="Decision-support queries; wider shuffles with moderate "
        "size variance.",
    )


def tpch_profile() -> WorkloadProfile:
    """TPC-H: fewer, heavier shuffle-dominated queries."""
    return WorkloadProfile(
        name="TPC-H",
        width_range=(3, 8),
        demand_log_mean=1.3,
        demand_log_sigma=0.6,
        arrival_rate=0.5,
        description="Shuffle-heavy ad-hoc queries; larger transfers, lower "
        "arrival rate.",
    )


def facebook_profile() -> WorkloadProfile:
    """Facebook (FB) production trace: narrow coflows, heavy-tailed sizes."""
    return WorkloadProfile(
        name="FB",
        width_range=(1, 10),
        demand_log_mean=0.3,
        demand_log_sigma=1.4,
        arrival_rate=1.2,
        description="Production MapReduce trace shape: mostly small coflows "
        "with a heavy tail of very large ones; bursty arrivals.",
    )


_PROFILES = {
    "bigbench": bigbench_profile,
    "tpc-ds": tpcds_profile,
    "tpcds": tpcds_profile,
    "tpc-h": tpch_profile,
    "tpch": tpch_profile,
    "fb": facebook_profile,
    "facebook": facebook_profile,
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by (case-insensitive) benchmark name."""
    key = name.strip().lower()
    if key not in _PROFILES:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {sorted(set(_PROFILES))}"
        )
    return _PROFILES[key]()


def all_profiles() -> Dict[str, WorkloadProfile]:
    """The four paper workloads keyed by their canonical names."""
    return {name: get_profile(name) for name in BENCHMARK_NAMES}
