"""Trace (de)serialization.

Workloads can be saved to and loaded from a small JSON format so that
experiment runs are exactly repeatable and traces can be exchanged without
re-running the generators.  The format is the one produced by
``CoflowInstance.to_dict`` for full instances, or a bare list of coflows for
topology-independent traces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.coflow.coflow import Coflow
from repro.coflow.instance import CoflowInstance

TraceLike = Union[CoflowInstance, List[Coflow]]


def save_trace(trace: TraceLike, path: str | Path) -> None:
    """Write an instance or a coflow list to *path* as JSON."""
    path = Path(path)
    if isinstance(trace, CoflowInstance):
        payload = {"kind": "instance", "data": trace.to_dict()}
    else:
        payload = {
            "kind": "coflows",
            "data": [c.to_dict() for c in trace],
        }
    path.write_text(json.dumps(payload, indent=2))


def load_trace(path: str | Path) -> TraceLike:
    """Read a trace previously written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    kind = payload.get("kind")
    if kind == "instance":
        return CoflowInstance.from_dict(payload["data"])
    if kind == "coflows":
        return [Coflow.from_dict(c) for c in payload["data"]]
    raise ValueError(f"unrecognized trace file {path} (kind={kind!r})")


def load_coflows(path: str | Path) -> List[Coflow]:
    """Load a trace and return its coflows regardless of the stored kind."""
    trace = load_trace(path)
    if isinstance(trace, CoflowInstance):
        return list(trace.coflows)
    return trace


def trace_summary(trace: TraceLike) -> dict:
    """Small descriptive statistics used in experiment logs."""
    coflows = trace.coflows if isinstance(trace, CoflowInstance) else trace
    num_flows = sum(len(c) for c in coflows)
    total_demand = sum(c.total_demand for c in coflows)
    return {
        "num_coflows": len(coflows),
        "num_flows": num_flows,
        "total_demand": total_demand,
        "max_release_time": max((c.release_time for c in coflows), default=0.0),
        "weighted": any(abs(c.weight - 1.0) > 1e-12 for c in coflows),
    }
