"""Trace (de)serialization and replay.

Workloads can be saved to and loaded from a small JSON format so that
experiment runs are exactly repeatable and traces can be exchanged without
re-running the generators.  The format is the one produced by
``CoflowInstance.to_dict`` for full instances, or a bare list of coflows for
topology-independent traces.

:func:`replay_trace` is the replay hook used by the scenario engine's
``trace-replay`` family: it loads a saved trace and rebuilds a runnable
:class:`CoflowInstance` on a (possibly different) topology, deterministically
remapping endpoints that do not exist on the target graph and re-pinning
shortest paths for the single path model.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.coflow.coflow import Coflow
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.network.graph import NetworkGraph
from repro.utils.io import atomic_write_json
from repro.utils.rng import RandomSource, as_generator

TraceLike = Union[CoflowInstance, List[Coflow]]


class TraceValidationError(ValueError):
    """A trace file failed validation; the message names the offending row."""


def _coflows_from_rows(rows: List[dict], *, where: str) -> List[Coflow]:
    """Build coflows from serialized rows, reporting the failing row index.

    :class:`Coflow` / :class:`Flow` construction already rejects NaN,
    infinite and non-positive sizes and negative release times; this wrapper
    turns those bare ``ValueError``\\ s into a :class:`TraceValidationError`
    that says *which* row of *where* is malformed.
    """
    coflows: List[Coflow] = []
    for row, data in enumerate(rows):
        try:
            coflows.append(Coflow.from_dict(data))
        except (ValueError, TypeError, KeyError) as err:
            raise TraceValidationError(
                f"{where}: malformed trace row {row}: {err}"
            ) from err
    return coflows


def _instance_from_dict(data: dict, *, where: str) -> CoflowInstance:
    """``CoflowInstance.from_dict`` with row-level coflow validation errors."""
    graph_data = data["graph"]
    graph = NetworkGraph(
        [
            (e["source"], e["sink"], float(e["capacity"]))
            for e in graph_data["edges"]
        ],
        nodes=graph_data.get("nodes"),
        name=graph_data.get("name", "network"),
    )
    return CoflowInstance(
        graph,
        _coflows_from_rows(data["coflows"], where=where),
        model=data.get("model", TransmissionModel.FREE_PATH),
        name=data.get("name"),
    )


def validate_trace_order(coflows: List[Coflow], *, where: str = "trace") -> None:
    """Raise :class:`TraceValidationError` unless release times are non-decreasing.

    Recorded traces (e.g. the Facebook corpus) list coflows in arrival
    order; a decreasing timestamp means the file was corrupted or
    mis-converted.  Synthetic traces are free to order coflows any way they
    like, so this check is opt-in (``require_ordered=...``).
    """
    previous = 0.0
    for row, coflow in enumerate(coflows):
        if coflow.release_time < previous:
            raise TraceValidationError(
                f"{where}: out-of-order release time at trace row {row}: "
                f"{coflow.release_time} after {previous}"
            )
        previous = coflow.release_time


def save_trace(trace: TraceLike, path: str | Path) -> None:
    """Write an instance or a coflow list to *path* as JSON."""
    path = Path(path)
    if isinstance(trace, CoflowInstance):
        payload = {"kind": "instance", "data": trace.to_dict()}
    else:
        payload = {
            "kind": "coflows",
            "data": [c.to_dict() for c in trace],
        }
    atomic_write_json(path, payload)


def load_trace(path: str | Path, *, require_ordered: bool = False) -> TraceLike:
    """Read a trace written by :func:`save_trace` or ``CoflowInstance.save_json``.

    Besides the two enveloped kinds this accepts the bare
    :meth:`CoflowInstance.to_dict` format (what ``repro generate`` writes),
    so every trace file in the repository is a valid arrival-stream source.

    Malformed rows (NaN / negative / zero sizes, negative release times)
    raise :class:`TraceValidationError` naming the offending row.  With
    *require_ordered* the coflows' release times must also be
    non-decreasing, as recorded arrival traces are.
    """
    where = str(path)
    payload = json.loads(Path(path).read_text())
    kind = payload.get("kind")
    if kind == "instance":
        trace: TraceLike = _instance_from_dict(payload["data"], where=where)
    elif kind == "coflows":
        trace = _coflows_from_rows(payload["data"], where=where)
    elif kind is None and "coflows" in payload and "graph" in payload:
        trace = _instance_from_dict(payload, where=where)
    else:
        raise ValueError(f"unrecognized trace file {path} (kind={kind!r})")
    if require_ordered:
        coflows = trace.coflows if isinstance(trace, CoflowInstance) else trace
        validate_trace_order(list(coflows), where=where)
    return trace


def load_coflows(path: str | Path, *, require_ordered: bool = False) -> List[Coflow]:
    """Load a trace and return its coflows regardless of the stored kind."""
    trace = load_trace(path, require_ordered=require_ordered)
    if isinstance(trace, CoflowInstance):
        return list(trace.coflows)
    return trace


def replay_coflows(
    coflows: List[Coflow],
    graph: NetworkGraph,
    *,
    model: TransmissionModel | str = TransmissionModel.FREE_PATH,
    rng: RandomSource = None,
    name: str = "trace-replay",
) -> CoflowInstance:
    """Replay a (possibly foreign) coflow trace on *graph*.

    Endpoints present on *graph* are kept as-is; endpoints the graph does not
    know are remapped onto its nodes by a deterministic random assignment
    (one mapping per distinct foreign node, drawn from *rng*), preserving the
    trace's communication structure — two flows that shared a source keep
    sharing one.  A flow whose remapped source and sink coincide is nudged to
    the next node.  Pinned paths from the originating topology are dropped;
    the single path model re-pins random shortest paths on the target graph.
    """
    model = TransmissionModel.parse(model)
    gen = as_generator(rng)
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        raise ValueError("need at least two nodes to replay a trace")
    foreign = sorted(
        {
            endpoint
            for coflow in coflows
            for flow in coflow.flows
            for endpoint in (flow.source, flow.sink)
            if not graph.has_node(endpoint)
        }
    )
    mapping: Dict[str, str] = {
        node: str(nodes[int(gen.integers(0, len(nodes)))]) for node in foreign
    }

    def _remap(endpoint: str) -> str:
        return mapping.get(endpoint, endpoint)

    replayed: List[Coflow] = []
    for coflow in coflows:
        flows = []
        for flow in coflow.flows:
            src, dst = _remap(flow.source), _remap(flow.sink)
            if src == dst:
                dst = str(nodes[(nodes.index(dst) + 1) % len(nodes)])
            flows.append(dataclasses.replace(flow, source=src, sink=dst, path=None))
        replayed.append(dataclasses.replace(coflow, flows=tuple(flows)))
    if model is TransmissionModel.SINGLE_PATH:
        from repro.network.paths import pin_random_shortest_paths

        replayed = pin_random_shortest_paths(graph, replayed, gen)
    return CoflowInstance(graph, replayed, model=model, name=name)


def replay_trace(
    path: str | Path,
    graph: NetworkGraph,
    *,
    model: TransmissionModel | str = TransmissionModel.FREE_PATH,
    rng: RandomSource = None,
    name: Optional[str] = None,
    require_ordered: bool = False,
) -> CoflowInstance:
    """Load the trace at *path* and replay it on *graph* (see :func:`replay_coflows`).

    Malformed rows raise :class:`TraceValidationError`; *require_ordered*
    additionally rejects traces whose release times decrease.
    """
    return replay_coflows(
        load_coflows(path, require_ordered=require_ordered),
        graph,
        model=model,
        rng=rng,
        name=name or f"replay:{Path(path).stem}",
    )


def trace_summary(trace: TraceLike) -> dict:
    """Small descriptive statistics used in experiment logs."""
    coflows = trace.coflows if isinstance(trace, CoflowInstance) else trace
    num_flows = sum(len(c) for c in coflows)
    total_demand = sum(c.total_demand for c in coflows)
    return {
        "num_coflows": len(coflows),
        "num_flows": num_flows,
        "total_demand": total_demand,
        "max_release_time": max((c.release_time for c in coflows), default=0.0),
        "weighted": any(abs(c.weight - 1.0) > 1e-12 for c in coflows),
    }
