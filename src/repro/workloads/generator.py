"""Workload generation: from a profile + topology to a coflow instance.

The generation procedure mirrors the paper's setup (Section 6): jobs are
sampled from a benchmark's population, assigned to random datacenter pairs,
given production-like (Poisson) release times and, for the weighted
experiments, weights uniform in [1, 100].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.coflow.coflow import Coflow
from repro.coflow.flow import Flow
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.network.graph import NetworkGraph
from repro.network.paths import pin_random_shortest_paths
from repro.utils.rng import RandomSource, as_generator
from repro.workloads.profiles import WorkloadProfile, get_profile


@dataclass
class WorkloadSpec:
    """Everything needed to generate one experiment's workload.

    Attributes
    ----------
    profile:
        Benchmark shape (or its name).
    num_coflows:
        Number of coflows to generate.  The paper uses 200 jobs per
        benchmark; the default experiment configurations in this repository
        use smaller counts so the LPs solve quickly with HiGHS — see
        DESIGN.md ("Substitutions").
    weighted:
        Draw weights from the profile's weight range (True, Figs. 6–10) or
        use unit weights (False, Figs. 11–12).
    demand_scale:
        Multiplier applied to all sampled demands; use it to express demands
        relative to the topology's link capacities.
    release_spread:
        Multiplier applied to inter-arrival times (1.0 = the profile's rate).
        0 collapses all release times to 0.
    seed:
        Generation seed (kept here so experiment configs are self-contained).
    """

    profile: WorkloadProfile | str
    num_coflows: int = 20
    weighted: bool = True
    demand_scale: float = 1.0
    release_spread: float = 1.0
    seed: Optional[int] = None
    name: Optional[str] = None

    def resolved_profile(self) -> WorkloadProfile:
        if isinstance(self.profile, WorkloadProfile):
            return self.profile
        return get_profile(self.profile)


def _sample_endpoints(
    graph: NetworkGraph, width: int, rng: np.random.Generator
) -> List[tuple[str, str]]:
    """Random distinct (source, sink) pairs for one coflow's flows.

    Mirrors the paper: "We randomly assign these jobs to nodes in the
    datacenter, and the demand will be between the corresponding nodes."
    A MapReduce-style shuffle is approximated by drawing a small set of
    sources and sinks and connecting them: sources and sinks may repeat
    across flows of the same coflow but a flow never has equal endpoints.
    """
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        raise ValueError("need at least two nodes to place flows")
    pairs: List[tuple[str, str]] = []
    for _ in range(width):
        src, dst = rng.choice(nodes, size=2, replace=False)
        pairs.append((str(src), str(dst)))
    return pairs


def generate_coflows(
    graph: NetworkGraph,
    spec: WorkloadSpec,
    rng: RandomSource = None,
) -> List[Coflow]:
    """Generate the coflow population described by *spec* on *graph*."""
    profile = spec.resolved_profile()
    gen = as_generator(rng if rng is not None else spec.seed)
    if spec.num_coflows < 1:
        raise ValueError("num_coflows must be at least 1")
    if spec.demand_scale <= 0:
        raise ValueError("demand_scale must be positive")
    if spec.release_spread < 0:
        raise ValueError("release_spread must be non-negative")

    # Poisson arrivals: exponential inter-arrival times with the profile rate.
    if spec.release_spread == 0:
        release_times = np.zeros(spec.num_coflows)
    else:
        inter = gen.exponential(
            scale=spec.release_spread / profile.arrival_rate, size=spec.num_coflows
        )
        release_times = np.cumsum(inter)
        release_times[0] = 0.0  # the first job arrives at time zero

    lo_w, hi_w = profile.width_range
    widths = np.exp(
        gen.uniform(np.log(lo_w), np.log(hi_w + 1), size=spec.num_coflows)
    ).astype(int)
    widths = np.clip(widths, lo_w, hi_w)

    coflows: List[Coflow] = []
    for j in range(spec.num_coflows):
        pairs = _sample_endpoints(graph, int(widths[j]), gen)
        demands = (
            gen.lognormal(
                mean=profile.demand_log_mean,
                sigma=profile.demand_log_sigma,
                size=len(pairs),
            )
            * spec.demand_scale
        )
        demands = np.maximum(demands, 1e-3)
        flows = [
            Flow(
                source=src,
                sink=dst,
                demand=float(demand),
                release_time=float(release_times[j]),
                name=f"f{i}",
            )
            for i, ((src, dst), demand) in enumerate(zip(pairs, demands))
        ]
        if spec.weighted:
            weight = float(gen.uniform(*profile.weight_range))
        else:
            weight = 1.0
        coflows.append(
            Coflow(
                flows=tuple(flows),
                weight=weight,
                release_time=float(release_times[j]),
                name=f"{profile.name}-{j}",
            )
        )
    return coflows


def generate_instance(
    graph: NetworkGraph,
    spec: WorkloadSpec,
    *,
    model: TransmissionModel | str = TransmissionModel.FREE_PATH,
    rng: RandomSource = None,
) -> CoflowInstance:
    """Generate a complete instance, pinning random shortest paths if needed.

    For the single path model, every generated flow gets a uniformly random
    shortest path (paper Section 6.2: "we randomly select one of the shortest
    paths as the path for flow f").
    """
    model = TransmissionModel.parse(model)
    gen = as_generator(rng if rng is not None else spec.seed)
    coflows = generate_coflows(graph, spec, gen)
    if model is TransmissionModel.SINGLE_PATH:
        coflows = pin_random_shortest_paths(graph, coflows, gen)
    name = spec.name or f"{spec.resolved_profile().name}-{model.value}"
    return CoflowInstance(graph, coflows, model=model, name=name)


def random_instance(
    graph: NetworkGraph,
    *,
    num_coflows: int = 5,
    max_flows_per_coflow: int = 3,
    max_demand: float = 4.0,
    weighted: bool = True,
    with_release_times: bool = True,
    model: TransmissionModel | str = TransmissionModel.FREE_PATH,
    rng: RandomSource = None,
) -> CoflowInstance:
    """A small, fully random instance (used heavily by tests and ablations).

    Unlike :func:`generate_instance` this does not follow any benchmark
    profile; it simply draws uniform widths, demands, weights and release
    times, which is handy for property-based testing.
    """
    gen = as_generator(rng)
    model = TransmissionModel.parse(model)
    nodes = list(graph.nodes)
    coflows: List[Coflow] = []
    for j in range(num_coflows):
        width = int(gen.integers(1, max_flows_per_coflow + 1))
        release = float(gen.uniform(0.0, 3.0)) if with_release_times else 0.0
        flows = []
        for i in range(width):
            src, dst = gen.choice(nodes, size=2, replace=False)
            demand = float(gen.uniform(0.5, max_demand))
            flows.append(
                Flow(str(src), str(dst), demand, release_time=release, name=f"f{i}")
            )
        weight = float(gen.uniform(1.0, 10.0)) if weighted else 1.0
        coflows.append(
            Coflow(tuple(flows), weight=weight, release_time=release, name=f"C{j}")
        )
    if model is TransmissionModel.SINGLE_PATH:
        coflows = pin_random_shortest_paths(graph, coflows, gen)
    return CoflowInstance(graph, coflows, model=model, name="random")
