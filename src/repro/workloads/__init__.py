"""Synthetic benchmark workloads.

The paper evaluates on job mixes drawn from BigBench, TPC-DS, TPC-H and a
Facebook production trace, assigning jobs to random datacenter pairs,
production-like release times, and weights uniform in [1, 100]
(Section 6, "Workloads").  The raw traces are not redistributable, so this
package generates *synthetic* workloads whose statistical shape follows the
published characterisations of those benchmarks: per-coflow width (number of
flows), heavy-tailed transfer sizes, and Poisson release processes.  The
relative behaviour of the scheduling algorithms — which is what the paper's
figures compare — is driven by exactly these shape parameters.
"""

from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    WorkloadProfile,
    bigbench_profile,
    facebook_profile,
    get_profile,
    tpcds_profile,
    tpch_profile,
)
from repro.workloads.generator import (
    WorkloadSpec,
    generate_coflows,
    generate_instance,
    random_instance,
)
from repro.workloads.traces import (
    TraceValidationError,
    load_trace,
    save_trace,
    validate_trace_order,
)
from repro.workloads.fbtrace import convert_facebook_trace, parse_facebook_trace
from repro.workloads.analysis import (
    WorkloadStats,
    compare_profiles,
    estimated_network_load,
    workload_stats,
)

__all__ = [
    "WorkloadStats",
    "workload_stats",
    "estimated_network_load",
    "compare_profiles",
    "WorkloadProfile",
    "BENCHMARK_NAMES",
    "bigbench_profile",
    "tpcds_profile",
    "tpch_profile",
    "facebook_profile",
    "get_profile",
    "WorkloadSpec",
    "generate_coflows",
    "generate_instance",
    "random_instance",
    "save_trace",
    "load_trace",
    "TraceValidationError",
    "validate_trace_order",
    "parse_facebook_trace",
    "convert_facebook_trace",
]
