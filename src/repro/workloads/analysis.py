"""Workload analysis: descriptive statistics and load estimation.

The paper's evaluation reasons about workloads in terms of their *shape*
(how wide coflows are, how heavy the size tail is, how loaded the network
gets).  This module computes those statistics for any coflow collection so
that experiment logs can document what was actually generated, and so tests
can assert that the synthetic generators reproduce the intended shape
(e.g. the FB profile is heavier-tailed than BigBench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.coflow.coflow import Coflow
from repro.coflow.instance import CoflowInstance
from repro.network.graph import NetworkGraph
from repro.network.paths import shortest_path


@dataclass(frozen=True)
class WorkloadStats:
    """Descriptive statistics of a coflow collection."""

    num_coflows: int
    num_flows: int
    total_demand: float
    mean_coflow_width: float
    max_coflow_width: int
    mean_coflow_size: float
    median_coflow_size: float
    p95_coflow_size: float
    max_coflow_size: float
    size_coefficient_of_variation: float
    mean_interarrival: float
    max_release_time: float
    weighted: bool

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_coflows": self.num_coflows,
            "num_flows": self.num_flows,
            "total_demand": self.total_demand,
            "mean_coflow_width": self.mean_coflow_width,
            "max_coflow_width": self.max_coflow_width,
            "mean_coflow_size": self.mean_coflow_size,
            "median_coflow_size": self.median_coflow_size,
            "p95_coflow_size": self.p95_coflow_size,
            "max_coflow_size": self.max_coflow_size,
            "size_coefficient_of_variation": self.size_coefficient_of_variation,
            "mean_interarrival": self.mean_interarrival,
            "max_release_time": self.max_release_time,
            "weighted": float(self.weighted),
        }


def workload_stats(coflows: Sequence[Coflow]) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a coflow collection."""
    if not coflows:
        raise ValueError("workload_stats requires at least one coflow")
    widths = np.array([c.num_flows for c in coflows], dtype=float)
    sizes = np.array([c.total_demand for c in coflows], dtype=float)
    releases = np.sort(np.array([c.release_time for c in coflows], dtype=float))
    interarrivals = np.diff(releases) if releases.size > 1 else np.array([0.0])
    mean_size = float(sizes.mean())
    cv = float(sizes.std() / mean_size) if mean_size > 0 else 0.0
    return WorkloadStats(
        num_coflows=len(coflows),
        num_flows=int(widths.sum()),
        total_demand=float(sizes.sum()),
        mean_coflow_width=float(widths.mean()),
        max_coflow_width=int(widths.max()),
        mean_coflow_size=mean_size,
        median_coflow_size=float(np.median(sizes)),
        p95_coflow_size=float(np.percentile(sizes, 95)),
        max_coflow_size=float(sizes.max()),
        size_coefficient_of_variation=cv,
        mean_interarrival=float(interarrivals.mean()),
        max_release_time=float(releases.max()),
        weighted=any(abs(c.weight - 1.0) > 1e-12 for c in coflows),
    )


def estimated_network_load(
    instance: CoflowInstance, *, horizon: float | None = None
) -> float:
    """A rough offered-load factor: demand-hours over capacity-hours.

    Every flow's demand is routed along one shortest path (just for the
    estimate); the resulting per-edge volume is divided by the edge's
    capacity times the horizon (the span from time 0 to the last release
    plus the serial tail, unless given explicitly).  A value near or above 1
    on some edge means that edge is saturated for most of the schedule —
    the regime where scheduling discipline matters most.

    Returns the *maximum* per-edge load factor.
    """
    graph = instance.graph
    edge_index = graph.edge_index()
    volume = np.zeros(graph.num_edges, dtype=float)
    path_cache: Dict[tuple, tuple] = {}
    for ref in instance.flow_refs():
        flow = ref.flow
        if flow.has_path:
            path = tuple(flow.path)
        else:
            key = (flow.source, flow.sink)
            if key not in path_cache:
                path_cache[key] = shortest_path(graph, flow.source, flow.sink)
            path = path_cache[key]
        for edge in zip(path[:-1], path[1:]):
            volume[edge_index[edge]] += flow.demand
    if horizon is None:
        capacities = graph.capacity_vector()
        # Rough horizon: last release plus the time to drain the most loaded
        # edge at full rate.
        with np.errstate(divide="ignore", invalid="ignore"):
            drain = np.where(capacities > 0, volume / capacities, 0.0)
        horizon = float(instance.max_release_time() + drain.max(initial=0.0))
    if horizon <= 0:
        return float("inf")
    capacities = graph.capacity_vector()
    with np.errstate(divide="ignore", invalid="ignore"):
        load = np.where(capacities > 0, volume / (capacities * horizon), 0.0)
    return float(load.max(initial=0.0))


def compare_profiles(
    stats_by_name: Dict[str, WorkloadStats]
) -> Dict[str, Dict[str, float]]:
    """Normalise a set of workload statistics for side-by-side comparison.

    Each metric is divided by its maximum across the provided workloads, so
    a value of 1.0 marks the workload that dominates that dimension — handy
    in experiment logs for eyeballing whether e.g. FB really has the
    heaviest size tail.
    """
    if not stats_by_name:
        return {}
    metrics = ("mean_coflow_size", "p95_coflow_size", "size_coefficient_of_variation",
               "mean_coflow_width", "total_demand")
    maxima = {
        m: max(getattr(s, m) for s in stats_by_name.values()) or 1.0 for m in metrics
    }
    return {
        name: {m: getattr(s, m) / maxima[m] for m in metrics}
        for name, s in stats_by_name.items()
    }
