"""Converter for the public Facebook coflow trace format.

The widely used Facebook/Coflow-Benchmark corpus (``FB2010-1Hr-150-0.txt``
and friends) stores one MapReduce shuffle per line::

    <num_ports> <num_coflows>                      # header
    <id> <arrival_ms> <M> <m_1> ... <m_M> <R> <r_1:size_1> ... <r_R:size_R>

where the ``m_k`` are mapper rack locations, and each ``r_k:size_k`` names a
reducer rack together with the **total** megabytes it receives.  Following
the usual convention, that total is split evenly over the ``M`` mappers, so
the shuffle becomes ``M × R`` point-to-point flows of ``size_k / M`` each.

Rack ``p`` appears as source node ``m<p>`` and sink node ``r<p>`` — mapper
and reducer sides are distinct nodes, matching the ingress/egress port model
the trace was recorded under and guaranteeing ``source != sink`` even when a
mapper and a reducer share a rack.  The converted coflows are
topology-independent: :func:`repro.workloads.traces.replay_coflows` remaps
the ``m*``/``r*`` endpoints onto any target graph deterministically.

Every parse error is reported as a
:class:`~repro.workloads.traces.TraceValidationError` naming the offending
line; arrival times must be non-decreasing (the corpus is sorted by
arrival), and NaN / negative sizes are rejected outright.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional

from repro.coflow.coflow import Coflow
from repro.coflow.flow import Flow
from repro.workloads.traces import TraceValidationError, save_trace

#: The corpus records arrival times in milliseconds; convert to the unit
#: the rest of the library uses (seconds) by default.
DEFAULT_TIME_SCALE = 1e-3


def _parse_row(
    tokens: List[str], line_no: int, *, demand_scale: float, time_scale: float
) -> Coflow:
    def fail(message: str) -> TraceValidationError:
        return TraceValidationError(f"line {line_no}: {message}")

    if len(tokens) < 4:
        raise fail(f"expected at least 4 fields, got {len(tokens)}")
    try:
        arrival = float(tokens[1])
        num_mappers = int(tokens[2])
    except ValueError as err:
        raise fail(str(err)) from err
    if not math.isfinite(arrival) or arrival < 0:
        raise fail(f"arrival time must be finite and >= 0, got {tokens[1]}")
    if num_mappers <= 0:
        raise fail(f"coflow needs at least one mapper, got {num_mappers}")
    cursor = 3
    if len(tokens) < cursor + num_mappers + 1:
        raise fail(f"row truncated: {num_mappers} mapper locations promised")
    mappers = [f"m{tokens[cursor + k]}" for k in range(num_mappers)]
    cursor += num_mappers
    try:
        num_reducers = int(tokens[cursor])
    except ValueError as err:
        raise fail(str(err)) from err
    if num_reducers <= 0:
        raise fail(f"coflow needs at least one reducer, got {num_reducers}")
    cursor += 1
    if len(tokens) != cursor + num_reducers:
        raise fail(
            f"row promises {num_reducers} reducers but carries "
            f"{len(tokens) - cursor} fields"
        )
    flows: List[Flow] = []
    for k in range(num_reducers):
        token = tokens[cursor + k]
        rack, sep, size_text = token.partition(":")
        if not sep:
            raise fail(f"reducer field {token!r} is not of the form rack:size")
        try:
            size = float(size_text)
        except ValueError as err:
            raise fail(str(err)) from err
        if math.isnan(size):
            raise fail(f"reducer {rack!r} has NaN size")
        if not math.isfinite(size) or size < 0:
            raise fail(f"reducer {rack!r} size must be finite and >= 0, got {size}")
        if size <= 0.0:
            continue  # a reducer that receives nothing contributes no flows
        per_mapper = size * demand_scale / num_mappers
        for mapper in mappers:
            flows.append(Flow(source=mapper, sink=f"r{rack}", demand=per_mapper))
    if not flows:
        raise fail("coflow carries no data (every reducer size is 0)")
    return Coflow(
        flows=tuple(flows),
        weight=1.0,
        release_time=arrival * time_scale,
    )


def parse_facebook_trace(
    text: str,
    *,
    demand_scale: float = 1.0,
    time_scale: float = DEFAULT_TIME_SCALE,
    max_coflows: Optional[int] = None,
) -> List[Coflow]:
    """Parse Facebook-format trace *text* into a list of coflows.

    *demand_scale* multiplies every transfer size (the corpus is in MB;
    pick the scale that matches your capacity units), *time_scale* converts
    arrival stamps (milliseconds by default).  *max_coflows* truncates the
    corpus after that many rows — handy for smoke tests on the full file.
    """
    lines = [line.strip() for line in text.splitlines()]
    rows = [
        (no, line) for no, line in enumerate(lines, start=1) if line
    ]
    if not rows:
        raise TraceValidationError("trace is empty")
    header_no, header = rows[0]
    header_tokens = header.split()
    if len(header_tokens) != 2:
        raise TraceValidationError(
            f"line {header_no}: header must be '<num_ports> <num_coflows>', "
            f"got {header!r}"
        )
    coflows: List[Coflow] = []
    previous_arrival = 0.0
    for no, line in rows[1:]:
        if max_coflows is not None and len(coflows) >= max_coflows:
            break
        coflow = _parse_row(
            line.split(), no, demand_scale=demand_scale, time_scale=time_scale
        )
        if coflow.release_time < previous_arrival:
            raise TraceValidationError(
                f"line {no}: out-of-order arrival {coflow.release_time} "
                f"after {previous_arrival}"
            )
        previous_arrival = coflow.release_time
        coflows.append(coflow)
    declared = int(header_tokens[1])
    if max_coflows is None and len(coflows) != declared:
        raise TraceValidationError(
            f"header declares {declared} coflows but the file carries "
            f"{len(coflows)}"
        )
    return coflows


def convert_facebook_trace(
    src: str | Path,
    out: str | Path,
    *,
    demand_scale: float = 1.0,
    time_scale: float = DEFAULT_TIME_SCALE,
    max_coflows: Optional[int] = None,
) -> dict:
    """Convert the Facebook trace at *src* into the library's JSON format.

    The output at *out* is a ``kind: coflows`` trace consumable by
    :func:`repro.workloads.traces.replay_trace` and by the amplifier.
    Returns a small summary dict (coflow/flow counts, horizon).
    """
    coflows = parse_facebook_trace(
        Path(src).read_text(),
        demand_scale=demand_scale,
        time_scale=time_scale,
        max_coflows=max_coflows,
    )
    save_trace(coflows, out)
    return {
        "source": str(src),
        "out": str(out),
        "num_coflows": len(coflows),
        "num_flows": sum(len(c) for c in coflows),
        "max_release_time": max((c.release_time for c in coflows), default=0.0),
        "total_demand": sum(c.total_demand for c in coflows),
    }
