"""Loop-based reference assembly of the time-indexed LP.

This module preserves the original (pre-vectorization) constraint assembly
of :mod:`repro.core.timeindexed` verbatim.  It exists for two reasons:

1. **Equivalence oracle** — the tests assert that the vectorized builder
   produces bit-identical matrices (same ``c``, ``A_ub``/``A_eq`` after CSR
   canonicalization, same right-hand sides and bounds) on both transmission
   models.
2. **Benchmark baseline** — ``repro bench`` measures the vectorized builder
   against this implementation in the same run, so every ``BENCH_*.json``
   records the speedup against the true pre-optimization trajectory rather
   than against a number measured on different hardware.

It is *not* part of the public API and receives no new features; use
:func:`repro.core.timeindexed.build_time_indexed_lp` everywhere else.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.lp.model import ConstraintSense, LinearProgram
from repro.schedule.timegrid import TimeGrid


def build_time_indexed_lp_reference(instance: CoflowInstance, grid: TimeGrid):
    """Assemble the LP of Section 3 / Appendix A with per-slot Python loops.

    Returns ``(lp, bundle)`` exactly like the vectorized builder; see the
    module docstring for why this implementation is kept.
    """
    # Imported here to avoid a cycle (timeindexed imports nothing from us).
    from repro.core.timeindexed import _LPIndexBundle

    num_flows = instance.num_flows
    num_coflows = instance.num_coflows
    num_slots = grid.num_slots
    durations = grid.durations
    graph = instance.graph
    num_edges = graph.num_edges
    free_path = instance.model is TransmissionModel.FREE_PATH

    lp = LinearProgram(name=f"coflow-{instance.model.value}-{instance.name}")

    # ----------------------------- variables --------------------------- #
    x_block = lp.add_variables("x", num_flows * num_slots, lower=0.0, upper=1.0)
    x_idx = x_block.reshape(num_flows, num_slots)
    big_x_block = lp.add_variables("X", num_coflows * num_slots, lower=0.0, upper=1.0)
    big_x_idx = big_x_block.reshape(num_coflows, num_slots)
    c_block = lp.add_variables("C", num_coflows, lower=0.0)
    c_idx = c_block.indices()
    y_idx = None
    if free_path:
        y_block = lp.add_variables(
            "y", num_flows * num_slots * num_edges, lower=0.0, upper=1.0
        )
        y_idx = y_block.reshape(num_flows, num_slots, num_edges)

    # ----------------------------- objective --------------------------- #
    lp.set_objective(c_idx, instance.weights)

    # ------------------------- release times (Eq. 4) ------------------- #
    release = instance.flow_release_times()
    allowed = grid.release_mask(release)  # (num_flows, num_slots)
    forbidden_flows, forbidden_slots = np.nonzero(~allowed)
    for f, t in zip(forbidden_flows, forbidden_slots):
        lp.fix_variable(int(x_idx[f, t]), 0.0)
        if y_idx is not None:
            for e in range(num_edges):
                lp.fix_variable(int(y_idx[f, t, e]), 0.0)

    # -------------------- demand satisfaction (Eq. 1) ------------------ #
    rows = np.repeat(np.arange(num_flows), num_slots)
    cols = x_idx.reshape(-1)
    vals = np.ones(num_flows * num_slots)
    lp.add_constraints_batch(
        rows, cols, vals, np.ones(num_flows), ConstraintSense.EQUAL
    )

    # ------------------- coflow completion indicators (Eq. 2) ---------- #
    coflow_of_flow = instance.coflow_of_flow()
    batch_rows = []
    batch_cols = []
    batch_vals = []
    row_counter = 0
    for f in range(num_flows):
        j = int(coflow_of_flow[f])
        for t in range(num_slots):
            size = t + 2  # X_j(t) plus x_f(0..t)
            rows_ft = np.full(size, row_counter, dtype=np.int64)
            cols_ft = np.empty(size, dtype=np.int64)
            vals_ft = np.empty(size, dtype=float)
            cols_ft[0] = big_x_idx[j, t]
            vals_ft[0] = 1.0
            cols_ft[1:] = x_idx[f, : t + 1]
            vals_ft[1:] = -1.0
            batch_rows.append(rows_ft)
            batch_cols.append(cols_ft)
            batch_vals.append(vals_ft)
            row_counter += 1
    lp.add_constraints_batch(
        np.concatenate(batch_rows),
        np.concatenate(batch_cols),
        np.concatenate(batch_vals),
        np.zeros(row_counter),
        ConstraintSense.LESS_EQUAL,
    )

    # ------------------- completion-time lower bound (Eq. 3 / 16) ------ #
    first_duration = float(durations[0])
    total_duration = float(durations.sum())
    rows3 = []
    cols3 = []
    vals3 = []
    rhs3 = np.full(num_coflows, -(first_duration + total_duration))
    for j in range(num_coflows):
        size = 1 + num_slots
        rows_j = np.full(size, j, dtype=np.int64)
        cols_j = np.empty(size, dtype=np.int64)
        vals_j = np.empty(size, dtype=float)
        cols_j[0] = c_idx[j]
        vals_j[0] = -1.0
        cols_j[1:] = big_x_idx[j]
        vals_j[1:] = -durations
        rows3.append(rows_j)
        cols3.append(cols_j)
        vals3.append(vals_j)
    lp.add_constraints_batch(
        np.concatenate(rows3),
        np.concatenate(cols3),
        np.concatenate(vals3),
        rhs3,
        ConstraintSense.LESS_EQUAL,
    )

    # ------------------------ model-specific part ----------------------- #
    if free_path:
        assert y_idx is not None
        _add_free_path_constraints_loop(lp, instance, grid, x_idx, y_idx)
    else:
        _add_single_path_constraints_loop(lp, instance, grid, x_idx)

    bundle = _LPIndexBundle(x=x_idx, big_x=big_x_idx, c=c_idx, y=y_idx)
    return lp, bundle


def _add_single_path_constraints_loop(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: TimeGrid,
    x_idx: np.ndarray,
) -> None:
    """Edge bandwidth constraints along pinned paths (paper Eq. 6 / 19)."""
    graph = instance.graph
    edge_index = graph.edge_index()
    capacities = graph.capacity_vector()
    durations = grid.durations
    num_slots = grid.num_slots

    flows_on_edge: Dict[int, list] = {}
    for ref in instance.flow_refs():
        flow = ref.flow
        if not flow.has_path:
            raise ValueError(
                f"single path LP requires a pinned path on flow {ref.label}"
            )
        for edge in flow.path_edges():
            flows_on_edge.setdefault(edge_index[edge], []).append(
                (ref.global_index, flow.demand)
            )

    rows = []
    cols = []
    vals = []
    rhs = []
    row_counter = 0
    for e, flow_list in sorted(flows_on_edge.items()):
        flow_ids = np.array([f for f, _ in flow_list], dtype=np.int64)
        demands = np.array([d for _, d in flow_list], dtype=float)
        for t in range(num_slots):
            rows.append(np.full(flow_ids.size, row_counter, dtype=np.int64))
            cols.append(x_idx[flow_ids, t])
            vals.append(demands)
            rhs.append(capacities[e] * durations[t])
            row_counter += 1
    if row_counter:
        lp.add_constraints_batch(
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            np.array(rhs),
            ConstraintSense.LESS_EQUAL,
        )


def _add_free_path_constraints_loop(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: TimeGrid,
    x_idx: np.ndarray,
    y_idx: np.ndarray,
) -> None:
    """Multicommodity-flow constraints of the free path model (Eqs. 7–10 / 20–23)."""
    graph = instance.graph
    edge_index = graph.edge_index()
    capacities = graph.capacity_vector()
    durations = grid.durations
    num_slots = grid.num_slots
    num_edges = graph.num_edges
    nodes = graph.nodes

    out_edges = {node: [edge_index[e] for e in graph.out_edges(node)] for node in nodes}
    in_edges = {node: [edge_index[e] for e in graph.in_edges(node)] for node in nodes}

    eq_rows = []
    eq_cols = []
    eq_vals = []
    eq_rhs = []
    eq_counter = 0

    for ref in instance.flow_refs():
        f = ref.global_index
        src, dst = ref.flow.source, ref.flow.sink
        for e in in_edges[src]:
            for t in range(num_slots):
                lp.fix_variable(int(y_idx[f, t, e]), 0.0)
        for e in out_edges[dst]:
            for t in range(num_slots):
                lp.fix_variable(int(y_idx[f, t, e]), 0.0)

        src_out = np.array(out_edges[src], dtype=np.int64)
        dst_in = np.array(in_edges[dst], dtype=np.int64)
        for t in range(num_slots):
            size = src_out.size + 1
            eq_rows.append(np.full(size, eq_counter, dtype=np.int64))
            eq_cols.append(np.concatenate([y_idx[f, t, src_out], [x_idx[f, t]]]))
            eq_vals.append(np.concatenate([np.ones(src_out.size), [-1.0]]))
            eq_rhs.append(0.0)
            eq_counter += 1
            size = dst_in.size + 1
            eq_rows.append(np.full(size, eq_counter, dtype=np.int64))
            eq_cols.append(np.concatenate([y_idx[f, t, dst_in], [x_idx[f, t]]]))
            eq_vals.append(np.concatenate([np.ones(dst_in.size), [-1.0]]))
            eq_rhs.append(0.0)
            eq_counter += 1
            for node in nodes:
                if node == src or node == dst:
                    continue
                node_in = np.array(in_edges[node], dtype=np.int64)
                node_out = np.array(out_edges[node], dtype=np.int64)
                if node_in.size == 0 and node_out.size == 0:
                    continue
                size = node_in.size + node_out.size
                eq_rows.append(np.full(size, eq_counter, dtype=np.int64))
                eq_cols.append(
                    np.concatenate([y_idx[f, t, node_in], y_idx[f, t, node_out]])
                )
                eq_vals.append(
                    np.concatenate([np.ones(node_in.size), -np.ones(node_out.size)])
                )
                eq_rhs.append(0.0)
                eq_counter += 1

    if eq_counter:
        lp.add_constraints_batch(
            np.concatenate(eq_rows),
            np.concatenate(eq_cols),
            np.concatenate(eq_vals),
            np.array(eq_rhs),
            ConstraintSense.EQUAL,
        )

    num_flows = instance.num_flows
    demands = instance.demands()
    rows = []
    cols = []
    vals = []
    rhs = []
    row_counter = 0
    flow_range = np.arange(num_flows)
    for t in range(num_slots):
        for e in range(num_edges):
            rows.append(np.full(num_flows, row_counter, dtype=np.int64))
            cols.append(y_idx[flow_range, t, e])
            vals.append(demands)
            rhs.append(capacities[e] * durations[t])
            row_counter += 1
    lp.add_constraints_batch(
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
        np.array(rhs),
        ConstraintSense.LESS_EQUAL,
    )
