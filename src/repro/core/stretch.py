"""The Stretch algorithm (paper Section 4.1) — a randomized 2-approximation.

Given an optimal solution of the time-indexed LP, Stretch:

1. draws ``lambda`` in ``(0, 1)`` from the density ``f(v) = 2v``;
2. replays the LP schedule slowed down by a factor ``1 / lambda`` — whatever
   the LP transmits during ``[a, b]`` is transmitted during
   ``[a / lambda, b / lambda]``;
3. stops transmitting a flow as soon as its full demand has shipped (the
   remaining stretched slots stay idle).

Theorem 4.4: the expected weighted completion time of the resulting schedule
is at most twice the LP objective, hence at most twice the optimum.

The practical refinement of Section 6.1 (move whole slots into earlier idle
slots) is available via ``compact=True`` and is applied by default, exactly
as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.timeindexed import CoflowLPSolution
from repro.schedule.compaction import compact_schedule, truncate_completed_flows
from repro.schedule.schedule import Schedule
from repro.schedule.timegrid import TimeGrid
from repro.utils.rng import RandomSource, as_generator, sample_lambda
from repro.utils.validation import check_in_range

#: Number of λ samples used by the paper's experiments ("we sample 20 times").
DEFAULT_NUM_SAMPLES = 20


def _overlap_matrix(
    source_grid: TimeGrid, target_grid: TimeGrid, lam: float
) -> np.ndarray:
    """Matrix ``M[t, u]``: fraction of a flow deposited into target slot *u*
    per unit of LP fraction scheduled in source slot *t*.

    Stretching by ``1 / lam`` replays the LP schedule at its **original
    per-unit-time rates** over a ``1 / lam`` longer timeline: what the LP
    transmits during ``[a, b]`` is transmitted during ``[a / lam, b / lam]``
    at the same rate, so ``1 / lam`` times as much data is (tentatively)
    shipped — step (4) of the algorithm then truncates each flow once its
    full demand has been met.  Keeping the original rates is what makes every
    flow complete by its ``C_j^*(lambda) / lambda`` point (footnote 3 of the
    paper) while per-slot capacity and conservation constraints keep holding
    (each target slot carries a convex combination of feasible LP slot
    transmissions).

    Entry ``M[t, u]`` is therefore ``|stretched_t ∩ target_u| / (b - a)``;
    each row sums to ``1 / lam`` when the target grid covers the stretched
    horizon.
    """
    src_bounds = source_grid.boundaries / lam
    tgt_bounds = target_grid.boundaries
    src_start = src_bounds[:-1].reshape(-1, 1)
    src_end = src_bounds[1:].reshape(-1, 1)
    tgt_start = tgt_bounds[:-1].reshape(1, -1)
    tgt_end = tgt_bounds[1:].reshape(1, -1)
    overlap = np.clip(
        np.minimum(src_end, tgt_end) - np.maximum(src_start, tgt_start), 0.0, None
    )
    source_durations = source_grid.durations.reshape(-1, 1)
    return overlap / source_durations


def default_stretched_grid(source_grid: TimeGrid, lam: float) -> TimeGrid:
    """The uniform grid the stretched schedule is expressed on.

    Uses the source grid's first slot length and enough slots to cover the
    stretched horizon ``horizon / lam``.
    """
    slot_length = source_grid.slot_duration(0)
    num_slots = int(np.ceil(source_grid.horizon / lam / slot_length + 1e-9))
    return TimeGrid.uniform(max(num_slots, 1), slot_length)


def stretch_fractions(
    fractions: np.ndarray,
    source_grid: TimeGrid,
    lam: float,
    *,
    target_grid: Optional[TimeGrid] = None,
    edge_fractions: Optional[np.ndarray] = None,
):
    """Stretch per-slot fractions by ``1 / lam`` onto a (new) time grid.

    Parameters
    ----------
    fractions:
        LP fractions, shape ``(num_flows, source_slots)``.
    source_grid:
        Grid the fractions are expressed on.
    lam:
        Stretch parameter in ``(0, 1]``.
    target_grid:
        Grid for the stretched schedule; defaults to
        :func:`default_stretched_grid`.
    edge_fractions:
        Optional per-edge fractions ``(num_flows, source_slots, num_edges)``
        stretched with the same overlap weights (the per-slot transmission in
        the stretched schedule is a convex combination of feasible per-slot
        transmissions, hence itself feasible — see the paper's Section 4.1).

    Returns
    -------
    (new_fractions, new_edge_fractions, target_grid)
    """
    check_in_range(lam, "lam", 0.0, 1.0, low_open=True)
    if target_grid is None:
        target_grid = default_stretched_grid(source_grid, lam)
    matrix = _overlap_matrix(source_grid, target_grid, lam)
    new_fractions = fractions @ matrix
    new_edge_fractions = None
    if edge_fractions is not None:
        # (f, t, e) x (t, u) -> (f, u, e)
        new_edge_fractions = np.einsum("fte,tu->fue", edge_fractions, matrix)
    return new_fractions, new_edge_fractions, target_grid


def _truncate_with_edges(
    fractions: np.ndarray, edge_fractions: Optional[np.ndarray]
):
    """Apply the "stop once the demand has shipped" rule (step 4 of Stretch)."""
    truncated = truncate_completed_flows(fractions)
    if edge_fractions is None:
        return truncated, None
    ratio = np.ones_like(fractions)
    positive = fractions > 1e-15
    ratio[positive] = truncated[positive] / fractions[positive]
    ratio[~positive] = 0.0
    new_edges = edge_fractions * ratio[:, :, None]
    return truncated, new_edges


@dataclass
class StretchResult:
    """One run of the Stretch algorithm for a fixed ``lambda``."""

    lam: float
    schedule: Schedule
    objective: float
    lp_lower_bound: float
    compacted: bool

    @property
    def approximation_ratio(self) -> float:
        """Objective divided by the LP lower bound (>= 1 up to tolerance)."""
        if self.lp_lower_bound <= 0:
            return float("inf")
        return self.objective / self.lp_lower_bound


@dataclass
class StretchEvaluation:
    """Aggregate of several λ samples (the paper's "Best λ" / "Average λ")."""

    results: List[StretchResult] = field(default_factory=list)

    @property
    def num_samples(self) -> int:
        return len(self.results)

    @property
    def objectives(self) -> np.ndarray:
        return np.array([r.objective for r in self.results], dtype=float)

    @property
    def lambdas(self) -> np.ndarray:
        return np.array([r.lam for r in self.results], dtype=float)

    @property
    def average_objective(self) -> float:
        """The paper's "Average λ" series: mean objective over the samples."""
        return float(self.objectives.mean())

    @property
    def best_objective(self) -> float:
        """The paper's "Best λ" series: best objective over the samples."""
        return float(self.objectives.min())

    @property
    def best_result(self) -> StretchResult:
        return self.results[int(np.argmin(self.objectives))]

    @property
    def best_lambda(self) -> float:
        return self.best_result.lam

    @property
    def worst_objective(self) -> float:
        return float(self.objectives.max())


def run_stretch(
    lp_solution: CoflowLPSolution,
    *,
    lam: Optional[float] = None,
    rng: RandomSource = None,
    compact: bool = True,
) -> StretchResult:
    """Run the Stretch algorithm once.

    Parameters
    ----------
    lp_solution:
        An optimal time-indexed LP solution
        (:func:`repro.core.timeindexed.solve_time_indexed_lp`).
    lam:
        Stretch parameter; when omitted it is drawn from the density
        ``f(v) = 2v`` as in the paper.  ``lam = 1`` replays the LP schedule
        unchanged (the LP-based heuristic).
    rng:
        Random source used only when *lam* is ``None``.
    compact:
        Apply the Section 6.1 idle-slot compaction to the stretched schedule.
    """
    if lam is None:
        lam = float(sample_lambda(as_generator(rng)))
    check_in_range(lam, "lam", 0.0, 1.0, low_open=True)

    fractions, edge_fractions, grid = stretch_fractions(
        lp_solution.fractions,
        lp_solution.grid,
        lam,
        edge_fractions=lp_solution.edge_fractions,
    )
    fractions, edge_fractions = _truncate_with_edges(fractions, edge_fractions)

    schedule = Schedule(
        lp_solution.instance,
        grid,
        fractions,
        edge_fractions,
        metadata={"algorithm": "stretch", "lambda": lam},
    )
    if compact:
        schedule = compact_schedule(schedule)
    return StretchResult(
        lam=lam,
        schedule=schedule,
        objective=schedule.weighted_completion_time(),
        lp_lower_bound=lp_solution.objective,
        compacted=compact,
    )


def evaluate_stretch(
    lp_solution: CoflowLPSolution,
    *,
    num_samples: int = DEFAULT_NUM_SAMPLES,
    rng: RandomSource = None,
    compact: bool = True,
) -> StretchEvaluation:
    """Run Stretch for *num_samples* independent λ draws (paper Section 6.1).

    The returned evaluation exposes the two series the paper plots:
    ``average_objective`` ("Average λ" — an estimate of the algorithm's
    expected objective) and ``best_objective`` ("Best λ").
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    gen = as_generator(rng)
    results = [
        run_stretch(lp_solution, rng=gen, compact=compact)
        for _ in range(num_samples)
    ]
    return StretchEvaluation(results=results)
