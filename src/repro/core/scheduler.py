"""High-level façade: one call from instance to schedule.

:class:`CoflowScheduler` wraps the LP solve (cached), the Stretch algorithm,
the LP heuristic and the λ-sampling evaluation behind a small object, and
:func:`solve_coflow_schedule` offers a single-function entry point used by
the examples and the experiment harness.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.coflow.instance import CoflowInstance
from repro.core.heuristic import lp_heuristic_schedule
from repro.core.stretch import (
    DEFAULT_NUM_SAMPLES,
    StretchEvaluation,
    StretchResult,
    evaluate_stretch,
    run_stretch,
)
from repro.core.timeindexed import (
    CoflowLPSolution,
    resolve_grid,
    solve_time_indexed_lp,
)
from repro.schedule.feasibility import FeasibilityReport, check_feasibility
from repro.schedule.schedule import Schedule
from repro.schedule.timegrid import TimeGrid
from repro.utils.rng import RandomSource, as_generator

logger = logging.getLogger(__name__)

#: Algorithms understood by :func:`solve_coflow_schedule`.
ALGORITHMS = ("lp-heuristic", "stretch", "stretch-average", "stretch-best")


def _grid_key(grid: TimeGrid) -> str:
    """Stable cache key of a time grid.

    Delegates to :meth:`TimeGrid.boundary_digest` — the single canonical
    grid identity also backing ``TimeGrid.__eq__``/``__hash__`` and the
    result-store fingerprints — so "same grid" can never mean different
    things in different caches.
    """
    return grid.boundary_digest()


@dataclass
class SchedulingOutcome:
    """The result of scheduling an instance with one algorithm.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the schedule.
    schedule:
        The feasible schedule (``None`` only for aggregate-only outcomes).
    objective:
        Weighted completion time of the schedule (or the reported aggregate
        for ``stretch-average``).
    lower_bound:
        The LP objective — a lower bound on the optimum (paper Eq. 11).
    lp_solution:
        The underlying LP solution.
    feasibility:
        Feasibility report of the returned schedule, when one was checked.
    extras:
        Algorithm-specific data (e.g. the sampled λ, the full stretch
        evaluation).
    """

    algorithm: str
    objective: float
    lower_bound: float
    lp_solution: CoflowLPSolution
    schedule: Optional[Schedule] = None
    feasibility: Optional[FeasibilityReport] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def gap(self) -> float:
        """Objective divided by the LP lower bound."""
        if self.lower_bound <= 0:
            return float("inf")
        return self.objective / self.lower_bound


class CoflowScheduler:
    """Schedules one instance, reusing a single LP solve across algorithms.

    Parameters
    ----------
    instance:
        The coflow scheduling instance (its :class:`TransmissionModel`
        decides which constraints the LP uses).
    grid:
        Explicit time grid; overrides *num_slots*, *slot_length*, *epsilon*.
    num_slots, slot_length:
        Uniform-grid specification (defaults to an automatically suggested
        horizon of unit slots).
    epsilon:
        When given, use the geometric interval grid of Appendix A instead of
        a uniform grid.
    rng:
        Random source for λ sampling.
    verify:
        When true (default), every produced schedule is checked for
        feasibility and the report attached to the outcome.
    solver_method:
        scipy ``linprog`` backend used for the LP solve.
    strategy:
        Staged-solve strategy for the time-indexed LP (``"direct"``,
        ``"refine"`` or ``"coarsen"``; see
        :func:`repro.core.timeindexed.solve_time_indexed_lp`).
    backend:
        Solver backend selector passed through to the staged pipeline.
    lp_solution:
        A previously solved LP solution for *instance*, seeding the cache so
        several algorithms (or several schedulers) can share one LP solve.
    """

    def __init__(
        self,
        instance: CoflowInstance,
        *,
        grid: Optional[TimeGrid] = None,
        num_slots: Optional[int] = None,
        slot_length: float = 1.0,
        epsilon: Optional[float] = None,
        rng: RandomSource = None,
        verify: bool = True,
        solver_method: str = "highs",
        strategy: str = "direct",
        backend: str = "auto",
        lp_solution: Optional[CoflowLPSolution] = None,
    ) -> None:
        if lp_solution is not None and lp_solution.instance is not instance:
            raise ValueError("lp_solution was computed for a different instance")
        self.instance = instance
        self._grid = grid
        self._num_slots = num_slots
        self._slot_length = slot_length
        self._epsilon = epsilon
        self._rng = as_generator(rng)
        self._verify = verify
        self._solver_method = solver_method
        self._strategy = strategy
        self._backend = backend
        # The LP cache is keyed on the *actual* grid the LP was built on, so
        # a seeded (shared) solution is only reused when this scheduler's own
        # grid parameters resolve to the same grid — a request that differs
        # (e.g. only in epsilon) triggers a fresh, correct solve instead of
        # silently reusing a mismatched LP.
        self._lp_solutions: Dict[str, CoflowLPSolution] = {}
        self._resolved_grid: Optional[TimeGrid] = None
        if lp_solution is not None:
            self._lp_solutions[_grid_key(lp_solution.grid)] = lp_solution

    # ------------------------------------------------------------------ #
    # LP
    # ------------------------------------------------------------------ #
    def _resolve_grid(self) -> TimeGrid:
        """The grid this scheduler's parameters resolve to (cached).

        Delegates to :func:`repro.core.timeindexed.resolve_grid` — the same
        resolution :func:`solve_time_indexed_lp` performs — so the cache key
        always agrees with the grid a shared solution was built on.
        """
        if self._resolved_grid is None:
            self._resolved_grid = resolve_grid(
                self.instance,
                grid=self._grid,
                num_slots=self._num_slots,
                slot_length=self._slot_length,
                epsilon=self._epsilon,
            )
        return self._resolved_grid

    def solve_lp(self) -> CoflowLPSolution:
        """Solve (and cache) the time-indexed LP for this instance.

        The cache is keyed on the resolved grid; a seeded shared solution
        built on a different grid is skipped (with a debug log) rather than
        silently reused.
        """
        grid = self._resolve_grid()
        key = _grid_key(grid)
        solution = self._lp_solutions.get(key)
        if solution is None:
            if self._lp_solutions:
                logger.debug(
                    "shared LP reuse skipped for instance %r: requested grid %r "
                    "does not match any cached grid; solving fresh",
                    self.instance.name,
                    grid,
                )
            solution = solve_time_indexed_lp(
                self.instance,
                grid=grid,
                solver_method=self._solver_method,
                strategy=self._strategy,
                backend=self._backend,
            )
            self._lp_solutions[key] = solution
        return solution

    @property
    def lower_bound(self) -> float:
        """The LP objective (a lower bound on the optimal weighted completion time)."""
        return self.solve_lp().objective

    # ------------------------------------------------------------------ #
    # algorithms
    # ------------------------------------------------------------------ #
    def _outcome(
        self,
        algorithm: str,
        schedule: Schedule,
        extras: Optional[Dict[str, object]] = None,
    ) -> SchedulingOutcome:
        lp_solution = self.solve_lp()
        feasibility = None
        if self._verify:
            feasibility = check_feasibility(schedule)
            feasibility.raise_if_infeasible()
        return SchedulingOutcome(
            algorithm=algorithm,
            objective=schedule.weighted_completion_time(),
            lower_bound=lp_solution.objective,
            lp_solution=lp_solution,
            schedule=schedule,
            feasibility=feasibility,
            extras=dict(extras or {}),
        )

    def heuristic(self, *, compact: bool = True) -> SchedulingOutcome:
        """The LP-based heuristic (λ = 1) of Section 6.2."""
        schedule = lp_heuristic_schedule(self.solve_lp(), compact=compact)
        return self._outcome("lp-heuristic", schedule, {"lambda": 1.0})

    def stretch(
        self, *, lam: Optional[float] = None, compact: bool = True
    ) -> SchedulingOutcome:
        """One run of the randomized Stretch algorithm (Section 4.1)."""
        result: StretchResult = run_stretch(
            self.solve_lp(), lam=lam, rng=self._rng, compact=compact
        )
        return self._outcome(
            "stretch", result.schedule, {"lambda": result.lam}
        )

    def stretch_evaluation(
        self,
        *,
        num_samples: int = DEFAULT_NUM_SAMPLES,
        compact: bool = True,
    ) -> StretchEvaluation:
        """Run Stretch for several λ samples (the paper's 20-sample protocol)."""
        return evaluate_stretch(
            self.solve_lp(), num_samples=num_samples, rng=self._rng, compact=compact
        )

    def best_stretch(
        self,
        *,
        num_samples: int = DEFAULT_NUM_SAMPLES,
        compact: bool = True,
    ) -> SchedulingOutcome:
        """The best schedule over *num_samples* λ draws ("Best λ")."""
        evaluation = self.stretch_evaluation(num_samples=num_samples, compact=compact)
        best = evaluation.best_result
        outcome = self._outcome(
            "stretch-best", best.schedule, {"lambda": best.lam}
        )
        outcome.extras["evaluation"] = evaluation
        return outcome


def solve_coflow_schedule(
    instance: CoflowInstance,
    *,
    algorithm: str = "lp-heuristic",
    grid: Optional[TimeGrid] = None,
    num_slots: Optional[int] = None,
    slot_length: float = 1.0,
    epsilon: Optional[float] = None,
    rng: RandomSource = None,
    compact: bool = True,
    num_samples: int = DEFAULT_NUM_SAMPLES,
    verify: bool = True,
    solver_method: str = "highs",
) -> SchedulingOutcome:
    """One-call entry point: schedule *instance* with the chosen algorithm.

    .. deprecated::
        This is a thin shim over :func:`repro.api.solve`, kept for backward
        compatibility; it only reaches the paper's own algorithms.  New code
        should use :mod:`repro.api`, which also exposes the baselines, the
        algorithm registry and the parallel batch runner, and returns the
        unified :class:`~repro.api.report.SolveReport`.

    Parameters
    ----------
    algorithm:
        ``"lp-heuristic"`` (default), ``"stretch"`` (one random λ),
        ``"stretch-best"`` (best of *num_samples* λ draws) or
        ``"stretch-average"`` (reports the mean objective over the draws;
        the returned schedule is the best one).
    Remaining parameters are forwarded to :class:`CoflowScheduler`.
    """
    from repro.api import SolverConfig, solve

    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    config = SolverConfig(
        grid=grid,
        num_slots=num_slots,
        slot_length=slot_length,
        epsilon=epsilon,
        rng=rng,
        solver_method=solver_method,
        num_samples=num_samples,
        compact=compact,
        verify=verify,
    )
    return solve(instance, algorithm, config=config).to_outcome()
