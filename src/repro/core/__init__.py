"""The paper's primary contribution.

* :mod:`repro.core.timeindexed` — the time-indexed LP relaxation of
  Section 3 (uniform slots) and Appendix A (geometric intervals), with the
  single path (Eq. 6) and free path (Eqs. 7–10) constraint plug-ins.
* :mod:`repro.core.stretch` — the randomized Stretch algorithm of
  Section 4.1 (2-approximation, Theorem 4.4).
* :mod:`repro.core.heuristic` — the LP-based heuristic of Section 6.2
  (take the LP schedule directly, i.e. λ = 1) plus idle-slot compaction.
* :mod:`repro.core.scheduler` — a one-call façade over model × algorithm ×
  time grid, returning schedules together with the LP lower bound.
"""

from repro.core.timeindexed import (
    CoflowLPSolution,
    build_time_indexed_lp,
    solve_time_indexed_lp,
    suggest_horizon,
)
from repro.core.stretch import (
    StretchEvaluation,
    StretchResult,
    evaluate_stretch,
    run_stretch,
    stretch_fractions,
)
from repro.core.heuristic import lp_heuristic_schedule
from repro.core.multipath import assign_candidate_paths, solve_multipath_lp
from repro.core.scheduler import CoflowScheduler, SchedulingOutcome, solve_coflow_schedule

__all__ = [
    "assign_candidate_paths",
    "solve_multipath_lp",
    "CoflowLPSolution",
    "build_time_indexed_lp",
    "solve_time_indexed_lp",
    "suggest_horizon",
    "StretchResult",
    "StretchEvaluation",
    "run_stretch",
    "evaluate_stretch",
    "stretch_fractions",
    "lp_heuristic_schedule",
    "CoflowScheduler",
    "SchedulingOutcome",
    "solve_coflow_schedule",
]
