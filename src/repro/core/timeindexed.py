"""The time-indexed LP relaxation for coflow scheduling in networks.

This module implements the linear program of the paper's Section 3 —
constraints (1)–(5) shared by both models, plus the model-specific
constraints: edge bandwidths along pinned paths for the single path model
(Eq. 6) and per-slot multicommodity-flow constraints for the free path
model (Eqs. 7–10).  The geometric-interval variant of Appendix A
(Eqs. 14–23) is obtained simply by passing a geometric
:class:`~repro.schedule.timegrid.TimeGrid`: every constraint below is
written in terms of slot durations, which are 1 for the uniform grid and
``tau_t - tau_{t-1}`` for the geometric one.

Variables
---------
``x[f, t]``
    Fraction of flow *f* scheduled during slot *t* (paper ``x_j^i(t)``).
``X[j, t]``
    Fraction of coflow *j* completed by the end of slot *t* (paper
    ``X_j(t)``), bounded to [0, 1].
``C[j]``
    Completion-time variable of coflow *j*.
``y[f, t, e]`` (free path only)
    Fraction of flow *f* carried by edge *e* during slot *t* (paper
    ``x_j^i(t, e)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.lp.model import ConstraintSense, LinearProgram
from repro.lp.result import LPResult
from repro.lp.solver import solve_lp
from repro.schedule.schedule import Schedule
from repro.schedule.timegrid import TimeGrid
from repro.utils.validation import check_positive


# --------------------------------------------------------------------------- #
# horizon estimation
# --------------------------------------------------------------------------- #
def suggest_horizon(
    instance: CoflowInstance,
    *,
    slot_length: float = 1.0,
    slack: float = 1.1,
) -> int:
    """A safe number of uniform slots ``T`` for the time-indexed LP.

    The LP needs a horizon large enough that *some* feasible schedule exists.
    Serialising all flows is always feasible, so we bound the horizon by the
    latest release time plus the serial transmission time, where each flow's
    serial time uses the bottleneck bandwidth of its pinned path (single
    path) or its maximum ``s -> t`` flow value (free path).

    Parameters
    ----------
    instance:
        The instance to bound.
    slot_length:
        Length of the uniform slots the LP will use.
    slack:
        Multiplier (> 1) applied to the serial time; a little slack keeps the
        LP comfortably feasible and leaves room for the completion-time
        variables to do their job.

    Returns
    -------
    int
        Number of slots (at least 1).
    """
    check_positive(slot_length, "slot_length")
    check_positive(slack, "slack")
    serial_time = 0.0
    graph = instance.graph
    rate_cache: Dict[tuple, float] = {}
    for ref in instance.flow_refs():
        flow = ref.flow
        if instance.model is TransmissionModel.SINGLE_PATH and flow.has_path:
            rate = graph.path_bottleneck(flow.path)  # type: ignore[arg-type]
        else:
            key = (flow.source, flow.sink)
            if key not in rate_cache:
                rate_cache[key] = graph.max_flow_value(flow.source, flow.sink)
            rate = rate_cache[key]
        if rate <= 0:
            raise ValueError(
                f"flow {ref.label} has no positive-rate route; instance infeasible"
            )
        serial_time += flow.demand / rate
    horizon_time = instance.max_release_time() + serial_time * slack
    return max(int(np.ceil(horizon_time / slot_length)) + 1, 1)


# --------------------------------------------------------------------------- #
# LP solution container
# --------------------------------------------------------------------------- #
@dataclass
class CoflowLPSolution:
    """An optimal solution of the time-indexed (or interval-indexed) LP.

    Attributes
    ----------
    instance, grid:
        The problem and time grid the LP was built on.
    objective:
        The LP objective ``sum_j w_j C_j*`` — a valid lower bound on the
        optimal weighted completion time (paper Eq. 11).
    completion_times:
        The LP completion-time variables ``C_j*`` per coflow.
    fractions:
        Optimal ``x[f, t]`` values, shape ``(num_flows, num_slots)``.
    edge_fractions:
        Optimal ``y[f, t, e]`` values for the free path model, otherwise
        ``None``.
    lp_result:
        The raw solver result (status, timings, sizes).
    """

    instance: CoflowInstance
    grid: TimeGrid
    objective: float
    completion_times: np.ndarray
    fractions: np.ndarray
    edge_fractions: Optional[np.ndarray]
    lp_result: LPResult
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def lower_bound(self) -> float:
        """Alias for :attr:`objective`, emphasising its role as a bound."""
        return self.objective

    def to_schedule(self) -> Schedule:
        """The LP solution interpreted directly as a schedule.

        This is exactly the "LP-based heuristic" raw material of the paper's
        Section 6.2: the LP fractions form a feasible transmission schedule,
        whose *true* completion times (Eq. 12) can exceed the LP
        completion-time variables.
        """
        return Schedule(
            self.instance,
            self.grid,
            self.fractions.copy(),
            None if self.edge_fractions is None else self.edge_fractions.copy(),
            metadata={"source": "lp", **self.metadata},
        )

    def fractional_completion_times(self) -> np.ndarray:
        """Continuous-time fractional completion times implied by the fractions.

        Computed as ``sum_t midpoint-weighted x`` — only used for diagnostics
        and tests; the LP's own ``C_j`` variables are the quantity the
        analysis works with.
        """
        coflow_idx = self.instance.coflow_of_flow()
        cumulative = np.cumsum(self.fractions, axis=1)
        ends = self.grid.boundaries[1:]
        # Fractional completion of a flow: integral of (1 - cumulative) + first slot end.
        durations = self.grid.durations
        remaining = np.clip(1.0 - cumulative, 0.0, None)
        flow_frac = durations[0] + remaining @ durations
        times = np.zeros(self.instance.num_coflows, dtype=float)
        np.maximum.at(times, coflow_idx, flow_frac)
        return times


@dataclass
class _LPIndexBundle:
    """Variable-index arrays for one assembled coflow LP."""

    x: np.ndarray  # (num_flows, T)
    big_x: np.ndarray  # (num_coflows, T)
    c: np.ndarray  # (num_coflows,)
    y: Optional[np.ndarray]  # (num_flows, T, E) or None


# --------------------------------------------------------------------------- #
# LP construction
# --------------------------------------------------------------------------- #
def build_time_indexed_lp(
    instance: CoflowInstance,
    grid: TimeGrid,
) -> tuple[LinearProgram, _LPIndexBundle]:
    """Assemble the LP of Section 3 / Appendix A for *instance* on *grid*.

    Returns the :class:`~repro.lp.model.LinearProgram` plus the index bundle
    needed to read the solution back.  Use :func:`solve_time_indexed_lp` for
    the common build-and-solve path.
    """
    num_flows = instance.num_flows
    num_coflows = instance.num_coflows
    num_slots = grid.num_slots
    durations = grid.durations
    graph = instance.graph
    num_edges = graph.num_edges
    free_path = instance.model is TransmissionModel.FREE_PATH

    lp = LinearProgram(name=f"coflow-{instance.model.value}-{instance.name}")

    # ----------------------------- variables --------------------------- #
    x_block = lp.add_variables("x", num_flows * num_slots, lower=0.0, upper=1.0)
    x_idx = x_block.reshape(num_flows, num_slots)
    big_x_block = lp.add_variables("X", num_coflows * num_slots, lower=0.0, upper=1.0)
    big_x_idx = big_x_block.reshape(num_coflows, num_slots)
    c_block = lp.add_variables("C", num_coflows, lower=0.0)
    c_idx = c_block.indices()
    y_idx: Optional[np.ndarray] = None
    if free_path:
        y_block = lp.add_variables(
            "y", num_flows * num_slots * num_edges, lower=0.0, upper=1.0
        )
        y_idx = y_block.reshape(num_flows, num_slots, num_edges)

    # ----------------------------- objective --------------------------- #
    lp.set_objective(c_idx, instance.weights)

    # ------------------------- release times (Eq. 4) ------------------- #
    release = instance.flow_release_times()
    allowed = grid.release_mask(release)  # (num_flows, num_slots)
    forbidden_flows, forbidden_slots = np.nonzero(~allowed)
    for f, t in zip(forbidden_flows, forbidden_slots):
        lp.fix_variable(int(x_idx[f, t]), 0.0)
        if y_idx is not None:
            for e in range(num_edges):
                lp.fix_variable(int(y_idx[f, t, e]), 0.0)

    # -------------------- demand satisfaction (Eq. 1) ------------------ #
    rows = np.repeat(np.arange(num_flows), num_slots)
    cols = x_idx.reshape(-1)
    vals = np.ones(num_flows * num_slots)
    lp.add_constraints_batch(
        rows, cols, vals, np.ones(num_flows), ConstraintSense.EQUAL
    )

    # ------------------- coflow completion indicators (Eq. 2) ---------- #
    # X_j(t) <= sum_{l <= t} x_f(l)   for every flow f of coflow j, every t.
    coflow_of_flow = instance.coflow_of_flow()
    batch_rows: list[np.ndarray] = []
    batch_cols: list[np.ndarray] = []
    batch_vals: list[np.ndarray] = []
    row_counter = 0
    for f in range(num_flows):
        j = int(coflow_of_flow[f])
        for t in range(num_slots):
            size = t + 2  # X_j(t) plus x_f(0..t)
            rows_ft = np.full(size, row_counter, dtype=np.int64)
            cols_ft = np.empty(size, dtype=np.int64)
            vals_ft = np.empty(size, dtype=float)
            cols_ft[0] = big_x_idx[j, t]
            vals_ft[0] = 1.0
            cols_ft[1:] = x_idx[f, : t + 1]
            vals_ft[1:] = -1.0
            batch_rows.append(rows_ft)
            batch_cols.append(cols_ft)
            batch_vals.append(vals_ft)
            row_counter += 1
    lp.add_constraints_batch(
        np.concatenate(batch_rows),
        np.concatenate(batch_cols),
        np.concatenate(batch_vals),
        np.zeros(row_counter),
        ConstraintSense.LESS_EQUAL,
    )

    # ------------------- completion-time lower bound (Eq. 3 / 16) ------ #
    # C_j >= d_0 + sum_t d_t (1 - X_j(t))
    #   <=>  -C_j - sum_t d_t X_j(t) <= -(d_0 + sum_t d_t)
    first_duration = float(durations[0])
    total_duration = float(durations.sum())
    rows3: list[np.ndarray] = []
    cols3: list[np.ndarray] = []
    vals3: list[np.ndarray] = []
    rhs3 = np.full(num_coflows, -(first_duration + total_duration))
    for j in range(num_coflows):
        size = 1 + num_slots
        rows_j = np.full(size, j, dtype=np.int64)
        cols_j = np.empty(size, dtype=np.int64)
        vals_j = np.empty(size, dtype=float)
        cols_j[0] = c_idx[j]
        vals_j[0] = -1.0
        cols_j[1:] = big_x_idx[j]
        vals_j[1:] = -durations
        rows3.append(rows_j)
        cols3.append(cols_j)
        vals3.append(vals_j)
    lp.add_constraints_batch(
        np.concatenate(rows3),
        np.concatenate(cols3),
        np.concatenate(vals3),
        rhs3,
        ConstraintSense.LESS_EQUAL,
    )

    # ------------------------ model-specific part ----------------------- #
    if free_path:
        assert y_idx is not None
        _add_free_path_constraints(lp, instance, grid, x_idx, y_idx)
    else:
        _add_single_path_constraints(lp, instance, grid, x_idx)

    bundle = _LPIndexBundle(x=x_idx, big_x=big_x_idx, c=c_idx, y=y_idx)
    return lp, bundle


def _add_single_path_constraints(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: TimeGrid,
    x_idx: np.ndarray,
) -> None:
    """Edge bandwidth constraints along pinned paths (paper Eq. 6 / 19)."""
    graph = instance.graph
    edge_index = graph.edge_index()
    capacities = graph.capacity_vector()
    durations = grid.durations
    num_slots = grid.num_slots

    # For each edge, collect the flows whose pinned path uses it.
    flows_on_edge: Dict[int, list[tuple[int, float]]] = {}
    for ref in instance.flow_refs():
        flow = ref.flow
        if not flow.has_path:
            raise ValueError(
                f"single path LP requires a pinned path on flow {ref.label}"
            )
        for edge in flow.path_edges():
            flows_on_edge.setdefault(edge_index[edge], []).append(
                (ref.global_index, flow.demand)
            )

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    rhs: list[float] = []
    row_counter = 0
    for e, flow_list in sorted(flows_on_edge.items()):
        flow_ids = np.array([f for f, _ in flow_list], dtype=np.int64)
        demands = np.array([d for _, d in flow_list], dtype=float)
        for t in range(num_slots):
            rows.append(np.full(flow_ids.size, row_counter, dtype=np.int64))
            cols.append(x_idx[flow_ids, t])
            vals.append(demands)
            rhs.append(capacities[e] * durations[t])
            row_counter += 1
    if row_counter:
        lp.add_constraints_batch(
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            np.array(rhs),
            ConstraintSense.LESS_EQUAL,
        )


def _add_free_path_constraints(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: TimeGrid,
    x_idx: np.ndarray,
    y_idx: np.ndarray,
) -> None:
    """Multicommodity-flow constraints of the free path model (Eqs. 7–10 / 20–23).

    In addition to the paper's constraints we fix ``y = 0`` on edges entering
    a flow's source and leaving its sink.  Any feasible transmission with such
    circulation can be pruned to one without (remove flow cycles), so this
    does not change the LP optimum; it removes useless variables and makes
    solutions directly verifiable as net-flow decompositions.
    """
    graph = instance.graph
    edge_index = graph.edge_index()
    capacities = graph.capacity_vector()
    durations = grid.durations
    num_slots = grid.num_slots
    num_edges = graph.num_edges
    nodes = graph.nodes

    out_edges = {node: [edge_index[e] for e in graph.out_edges(node)] for node in nodes}
    in_edges = {node: [edge_index[e] for e in graph.in_edges(node)] for node in nodes}

    eq_rows: list[np.ndarray] = []
    eq_cols: list[np.ndarray] = []
    eq_vals: list[np.ndarray] = []
    eq_rhs: list[float] = []
    eq_counter = 0

    for ref in instance.flow_refs():
        f = ref.global_index
        src, dst = ref.flow.source, ref.flow.sink
        # Disallow circulation through the endpoints (see docstring).
        for e in in_edges[src]:
            for t in range(num_slots):
                lp.fix_variable(int(y_idx[f, t, e]), 0.0)
        for e in out_edges[dst]:
            for t in range(num_slots):
                lp.fix_variable(int(y_idx[f, t, e]), 0.0)

        src_out = np.array(out_edges[src], dtype=np.int64)
        dst_in = np.array(in_edges[dst], dtype=np.int64)
        for t in range(num_slots):
            # Eq. (7): sum_{e in delta_out(src)} y = x
            size = src_out.size + 1
            eq_rows.append(np.full(size, eq_counter, dtype=np.int64))
            eq_cols.append(np.concatenate([y_idx[f, t, src_out], [x_idx[f, t]]]))
            eq_vals.append(np.concatenate([np.ones(src_out.size), [-1.0]]))
            eq_rhs.append(0.0)
            eq_counter += 1
            # Eq. (8): sum_{e in delta_in(dst)} y = x
            size = dst_in.size + 1
            eq_rows.append(np.full(size, eq_counter, dtype=np.int64))
            eq_cols.append(np.concatenate([y_idx[f, t, dst_in], [x_idx[f, t]]]))
            eq_vals.append(np.concatenate([np.ones(dst_in.size), [-1.0]]))
            eq_rhs.append(0.0)
            eq_counter += 1
            # Eq. (9): conservation at every other node.
            for node in nodes:
                if node == src or node == dst:
                    continue
                node_in = np.array(in_edges[node], dtype=np.int64)
                node_out = np.array(out_edges[node], dtype=np.int64)
                if node_in.size == 0 and node_out.size == 0:
                    continue
                size = node_in.size + node_out.size
                eq_rows.append(np.full(size, eq_counter, dtype=np.int64))
                eq_cols.append(
                    np.concatenate([y_idx[f, t, node_in], y_idx[f, t, node_out]])
                )
                eq_vals.append(
                    np.concatenate([np.ones(node_in.size), -np.ones(node_out.size)])
                )
                eq_rhs.append(0.0)
                eq_counter += 1

    if eq_counter:
        lp.add_constraints_batch(
            np.concatenate(eq_rows),
            np.concatenate(eq_cols),
            np.concatenate(eq_vals),
            np.array(eq_rhs),
            ConstraintSense.EQUAL,
        )

    # Eq. (10): edge bandwidths.
    num_flows = instance.num_flows
    demands = instance.demands()
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    rhs: list[float] = []
    row_counter = 0
    flow_range = np.arange(num_flows)
    for t in range(num_slots):
        for e in range(num_edges):
            rows.append(np.full(num_flows, row_counter, dtype=np.int64))
            cols.append(y_idx[flow_range, t, e])
            vals.append(demands)
            rhs.append(capacities[e] * durations[t])
            row_counter += 1
    lp.add_constraints_batch(
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
        np.array(rhs),
        ConstraintSense.LESS_EQUAL,
    )


# --------------------------------------------------------------------------- #
# solve
# --------------------------------------------------------------------------- #
def solve_time_indexed_lp(
    instance: CoflowInstance,
    *,
    grid: Optional[TimeGrid] = None,
    num_slots: Optional[int] = None,
    slot_length: float = 1.0,
    epsilon: Optional[float] = None,
    horizon_slack: float = 1.1,
    solver_method: str = "highs",
    time_limit: Optional[float] = None,
) -> CoflowLPSolution:
    """Build and solve the coflow LP for *instance*.

    Exactly one time-grid specification is used, in this order of precedence:

    1. an explicit *grid*;
    2. *epsilon* — a geometric grid ``0, 1, (1+eps), ...`` covering the
       suggested horizon (Appendix A);
    3. *num_slots* uniform slots of *slot_length*;
    4. otherwise, a uniform grid sized by :func:`suggest_horizon`.

    Returns
    -------
    CoflowLPSolution
        The optimal LP solution; raises :class:`~repro.lp.solver.LPSolverError`
        if the LP cannot be solved to optimality.
    """
    if grid is None:
        if epsilon is not None:
            horizon_slots = suggest_horizon(
                instance, slot_length=slot_length, slack=horizon_slack
            )
            grid = TimeGrid.geometric(horizon_slots * slot_length, epsilon)
        else:
            if num_slots is None:
                num_slots = suggest_horizon(
                    instance, slot_length=slot_length, slack=horizon_slack
                )
            grid = TimeGrid.uniform(num_slots, slot_length)

    lp, bundle = build_time_indexed_lp(instance, grid)
    result = solve_lp(
        lp, method=solver_method, time_limit=time_limit, require_optimal=True
    )

    fractions = result.values(bundle.x)
    completion_times = result.values(bundle.c)
    edge_fractions = None
    if bundle.y is not None:
        edge_fractions = result.values(bundle.y)
    objective = float(np.dot(instance.weights, completion_times))

    return CoflowLPSolution(
        instance=instance,
        grid=grid,
        objective=objective,
        completion_times=completion_times,
        fractions=fractions,
        edge_fractions=edge_fractions,
        lp_result=result,
        metadata={
            "solver_method": solver_method,
            "lp_size": lp.size_summary(),
        },
    )
