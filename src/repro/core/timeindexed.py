"""The time-indexed LP relaxation for coflow scheduling in networks.

This module implements the linear program of the paper's Section 3 —
constraints (1)–(5) shared by both models, plus the model-specific
constraints: edge bandwidths along pinned paths for the single path model
(Eq. 6) and per-slot multicommodity-flow constraints for the free path
model (Eqs. 7–10).  The geometric-interval variant of Appendix A
(Eqs. 14–23) is obtained simply by passing a geometric
:class:`~repro.schedule.timegrid.TimeGrid`: every constraint below is
written in terms of slot durations, which are 1 for the uniform grid and
``tau_t - tau_{t-1}`` for the geometric one.

Variables
---------
``x[f, t]``
    Fraction of flow *f* scheduled during slot *t* (paper ``x_j^i(t)``).
``X[j, t]``
    Fraction of coflow *j* completed by the end of slot *t* (paper
    ``X_j(t)``), bounded to [0, 1].
``C[j]``
    Completion-time variable of coflow *j*.
``y[f, t, e]`` (free path only)
    Fraction of flow *f* carried by edge *e* during slot *t* (paper
    ``x_j^i(t, e)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.lp.backends import BACKEND_NAMES, LPSpec, get_backend
from repro.lp.model import ConstraintSense, LinearProgram
from repro.lp.result import LPResult
from repro.lp.solver import solve_lp
from repro.schedule.schedule import Schedule
from repro.schedule.timegrid import TimeGrid
from repro.utils.validation import check_positive


# --------------------------------------------------------------------------- #
# horizon estimation
# --------------------------------------------------------------------------- #
def suggest_horizon(
    instance: CoflowInstance,
    *,
    slot_length: float = 1.0,
    slack: float = 1.1,
) -> int:
    """A safe number of uniform slots ``T`` for the time-indexed LP.

    The LP needs a horizon large enough that *some* feasible schedule exists.
    Serialising all flows is always feasible, so we bound the horizon by the
    latest release time plus the serial transmission time, where each flow's
    serial time uses the bottleneck bandwidth of its pinned path (single
    path) or its maximum ``s -> t`` flow value (free path).

    Parameters
    ----------
    instance:
        The instance to bound.
    slot_length:
        Length of the uniform slots the LP will use.
    slack:
        Multiplier (> 1) applied to the serial time; a little slack keeps the
        LP comfortably feasible and leaves room for the completion-time
        variables to do their job.

    Returns
    -------
    int
        Number of slots (at least 1).
    """
    check_positive(slot_length, "slot_length")
    check_positive(slack, "slack")
    serial_time = 0.0
    graph = instance.graph
    rate_cache: Dict[tuple, float] = {}
    for ref in instance.flow_refs():
        flow = ref.flow
        if instance.model is TransmissionModel.SINGLE_PATH and flow.has_path:
            rate = graph.path_bottleneck(flow.path)  # type: ignore[arg-type]
        else:
            key = (flow.source, flow.sink)
            if key not in rate_cache:
                rate_cache[key] = graph.max_flow_value(flow.source, flow.sink)
            rate = rate_cache[key]
        if rate <= 0:
            raise ValueError(
                f"flow {ref.label} has no positive-rate route; instance infeasible"
            )
        serial_time += flow.demand / rate
    horizon_time = instance.max_release_time() + serial_time * slack
    return max(int(np.ceil(horizon_time / slot_length)) + 1, 1)


def resolve_grid(
    instance: CoflowInstance,
    *,
    grid: Optional[TimeGrid] = None,
    num_slots: Optional[int] = None,
    slot_length: float = 1.0,
    epsilon: Optional[float] = None,
    horizon_slack: float = 1.1,
) -> TimeGrid:
    """Resolve a grid specification to a concrete :class:`TimeGrid`.

    Exactly one specification is used, in this order of precedence:

    1. an explicit *grid*;
    2. *epsilon* — a geometric grid ``0, 1, (1+eps), ...`` covering the
       suggested horizon (Appendix A);
    3. *num_slots* uniform slots of *slot_length*;
    4. otherwise, a uniform grid sized by :func:`suggest_horizon`.

    This is the single source of truth shared by
    :func:`solve_time_indexed_lp` and the grid-keyed LP cache of
    :class:`~repro.core.scheduler.CoflowScheduler` — both must resolve the
    same parameters to the same grid or shared-LP reuse silently degrades.
    """
    if grid is not None:
        return grid
    if epsilon is not None:
        horizon_slots = suggest_horizon(
            instance, slot_length=slot_length, slack=horizon_slack
        )
        return TimeGrid.geometric(horizon_slots * slot_length, epsilon)
    if num_slots is None:
        num_slots = suggest_horizon(
            instance, slot_length=slot_length, slack=horizon_slack
        )
    return TimeGrid.uniform(num_slots, slot_length)


# --------------------------------------------------------------------------- #
# LP solution container
# --------------------------------------------------------------------------- #
@dataclass
class CoflowLPSolution:
    """An optimal solution of the time-indexed (or interval-indexed) LP.

    Attributes
    ----------
    instance, grid:
        The problem and time grid the LP was built on.
    objective:
        The LP objective ``sum_j w_j C_j*`` — a valid lower bound on the
        optimal weighted completion time (paper Eq. 11).
    completion_times:
        The LP completion-time variables ``C_j*`` per coflow.
    fractions:
        Optimal ``x[f, t]`` values, shape ``(num_flows, num_slots)``.
    edge_fractions:
        Optimal ``y[f, t, e]`` values for the free path model, otherwise
        ``None``.
    lp_result:
        The raw solver result (status, timings, sizes).
    """

    instance: CoflowInstance
    grid: TimeGrid
    objective: float
    completion_times: np.ndarray
    fractions: np.ndarray
    edge_fractions: Optional[np.ndarray]
    lp_result: LPResult
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def lower_bound(self) -> float:
        """Alias for :attr:`objective`, emphasising its role as a bound."""
        return self.objective

    def to_schedule(self) -> Schedule:
        """The LP solution interpreted directly as a schedule.

        This is exactly the "LP-based heuristic" raw material of the paper's
        Section 6.2: the LP fractions form a feasible transmission schedule,
        whose *true* completion times (Eq. 12) can exceed the LP
        completion-time variables.
        """
        return Schedule(
            self.instance,
            self.grid,
            self.fractions.copy(),
            None if self.edge_fractions is None else self.edge_fractions.copy(),
            metadata={"source": "lp", **self.metadata},
        )

    def fractional_completion_times(self) -> np.ndarray:
        """Continuous-time fractional completion times implied by the fractions.

        Computed as ``sum_t midpoint-weighted x`` — only used for diagnostics
        and tests; the LP's own ``C_j`` variables are the quantity the
        analysis works with.
        """
        coflow_idx = self.instance.coflow_of_flow()
        cumulative = np.cumsum(self.fractions, axis=1)
        ends = self.grid.boundaries[1:]
        # Fractional completion of a flow: integral of (1 - cumulative) + first slot end.
        durations = self.grid.durations
        remaining = np.clip(1.0 - cumulative, 0.0, None)
        flow_frac = durations[0] + remaining @ durations
        times = np.zeros(self.instance.num_coflows, dtype=float)
        np.maximum.at(times, coflow_idx, flow_frac)
        return times


@dataclass
class _LPIndexBundle:
    """Variable-index arrays for one assembled coflow LP.

    ``capacity_ub_offset`` / ``capacity_row_slots`` locate the per-edge
    bandwidth rows (Eq. 6 / Eq. 10) inside the inequality block:
    ``ub_duals[capacity_ub_offset + k]`` is the dual of a capacity row whose
    slot is ``capacity_row_slots[k]``.  Dual-guided coarsening reads these
    to decide which slots are binding.
    """

    x: np.ndarray  # (num_flows, T)
    big_x: np.ndarray  # (num_coflows, T)
    c: np.ndarray  # (num_coflows,)
    y: Optional[np.ndarray]  # (num_flows, T, E) or None
    capacity_ub_offset: int = 0
    capacity_row_slots: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


# --------------------------------------------------------------------------- #
# LP construction
# --------------------------------------------------------------------------- #
def build_time_indexed_lp(
    instance: CoflowInstance,
    grid: TimeGrid,
) -> tuple[LinearProgram, _LPIndexBundle]:
    """Assemble the LP of Section 3 / Appendix A for *instance* on *grid*.

    Returns the :class:`~repro.lp.model.LinearProgram` plus the index bundle
    needed to read the solution back.  Use :func:`solve_time_indexed_lp` for
    the common build-and-solve path.

    The assembly is fully vectorized: every constraint family is emitted as
    one batched COO triplet built from precomputed incidence arrays (the
    flow→edge incidence and release masks cached on
    :class:`~repro.coflow.instance.CoflowInstance` and
    :class:`~repro.network.graph.NetworkGraph`), with no per-slot or
    per-flow Python loops on the hot path.  The produced program is
    bit-identical to the loop-based reference in
    :mod:`repro.core.timeindexed_reference`, which the equivalence tests
    assert and ``repro bench`` measures against.
    """
    num_flows = instance.num_flows
    num_coflows = instance.num_coflows
    num_slots = grid.num_slots
    durations = grid.durations
    graph = instance.graph
    num_edges = graph.num_edges
    free_path = instance.model is TransmissionModel.FREE_PATH

    lp = LinearProgram(name=f"coflow-{instance.model.value}-{instance.name}")

    # ----------------------------- variables --------------------------- #
    x_block = lp.add_variables("x", num_flows * num_slots, lower=0.0, upper=1.0)
    x_idx = x_block.reshape(num_flows, num_slots)
    big_x_block = lp.add_variables("X", num_coflows * num_slots, lower=0.0, upper=1.0)
    big_x_idx = big_x_block.reshape(num_coflows, num_slots)
    c_block = lp.add_variables("C", num_coflows, lower=0.0)
    c_idx = c_block.indices()
    y_idx: Optional[np.ndarray] = None
    if free_path:
        y_block = lp.add_variables(
            "y", num_flows * num_slots * num_edges, lower=0.0, upper=1.0
        )
        y_idx = y_block.reshape(num_flows, num_slots, num_edges)

    # ----------------------------- objective --------------------------- #
    lp.set_objective(c_idx, instance.weights)

    # ------------------------- release times (Eq. 4) ------------------- #
    release = instance.flow_release_times()
    allowed = grid.release_mask(release)  # (num_flows, num_slots)
    forbidden = ~allowed
    lp.fix_variables(x_idx[forbidden], 0.0)
    if y_idx is not None:
        lp.fix_variables(y_idx[forbidden, :], 0.0)

    # -------------------- demand satisfaction (Eq. 1) ------------------ #
    rows = np.repeat(np.arange(num_flows), num_slots)
    cols = x_idx.reshape(-1)
    vals = np.ones(num_flows * num_slots)
    lp.add_constraints_batch(
        rows, cols, vals, np.ones(num_flows), ConstraintSense.EQUAL
    )

    # ------------------- coflow completion indicators (Eq. 2) ---------- #
    # X_j(t) <= sum_{l <= t} x_f(l)   for every flow f of coflow j, every t.
    # Row (f, t) has the X_j(t) entry plus a lower-triangular block of x
    # entries; both parts are emitted by pure index arithmetic.
    coflow_of_flow = instance.coflow_of_flow()
    rows_big_x = np.arange(num_flows * num_slots, dtype=np.int64)
    cols_big_x = big_x_idx[coflow_of_flow, :].reshape(-1)
    tri_t, tri_l = np.tril_indices(num_slots)
    rows_x = (
        np.arange(num_flows, dtype=np.int64)[:, None] * num_slots + tri_t[None, :]
    ).reshape(-1)
    cols_x = x_idx[:, tri_l].reshape(-1)
    lp.add_constraints_batch(
        np.concatenate([rows_big_x, rows_x]),
        np.concatenate([cols_big_x, cols_x]),
        np.concatenate([np.ones(rows_big_x.size), -np.ones(rows_x.size)]),
        np.zeros(num_flows * num_slots),
        ConstraintSense.LESS_EQUAL,
    )

    # ------------------- completion-time lower bound (Eq. 3 / 16) ------ #
    # C_j >= d_0 + sum_t d_t (1 - X_j(t))
    #   <=>  -C_j - sum_t d_t X_j(t) <= -(d_0 + sum_t d_t)
    first_duration = float(durations[0])
    total_duration = float(durations.sum())
    lp.add_constraints_batch(
        np.concatenate(
            [np.arange(num_coflows), np.repeat(np.arange(num_coflows), num_slots)]
        ),
        np.concatenate([c_idx, big_x_idx.reshape(-1)]),
        np.concatenate(
            [-np.ones(num_coflows), -np.tile(durations, num_coflows)]
        ),
        np.full(num_coflows, -(first_duration + total_duration)),
        ConstraintSense.LESS_EQUAL,
    )

    # ------------------------ model-specific part ----------------------- #
    if free_path:
        assert y_idx is not None
        cap_offset, cap_slots = _add_free_path_constraints(
            lp, instance, grid, x_idx, y_idx
        )
    else:
        cap_offset, cap_slots = _add_single_path_constraints(lp, instance, grid, x_idx)

    bundle = _LPIndexBundle(
        x=x_idx,
        big_x=big_x_idx,
        c=c_idx,
        y=y_idx,
        capacity_ub_offset=cap_offset,
        capacity_row_slots=cap_slots,
    )
    return lp, bundle


def _add_single_path_constraints(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: TimeGrid,
    x_idx: np.ndarray,
) -> tuple[int, np.ndarray]:
    """Edge bandwidth constraints along pinned paths (paper Eq. 6 / 19).

    Built from the cached flow→edge incidence of the instance: entry *k* of
    the incidence contributes one coefficient per slot, giving row
    ``rank(edge_k) * T + t`` directly by arithmetic.  Returns the capacity
    block's offset within the inequality rows plus each row's slot index
    (for dual-guided coarsening).
    """
    graph = instance.graph
    capacities = graph.capacity_vector()
    durations = grid.durations
    num_slots = grid.num_slots
    offset = lp.num_inequality_constraints

    try:
        inc_flows, inc_edges = instance.path_edge_incidence()
    except ValueError as exc:
        raise ValueError(str(exc).replace("path incidence", "single path LP")) from exc
    if inc_flows.size == 0:
        return offset, np.empty(0, dtype=np.int64)

    # Stable sort groups incidence entries by edge while preserving the
    # flow-insertion order within each edge (matching the loop reference).
    order = np.argsort(inc_edges, kind="stable")
    inc_flows = inc_flows[order]
    inc_edges = inc_edges[order]
    used_edges, edge_rank = np.unique(inc_edges, return_inverse=True)

    slot_range = np.arange(num_slots, dtype=np.int64)
    rows = (edge_rank[:, None] * num_slots + slot_range[None, :]).reshape(-1)
    cols = x_idx[inc_flows, :].reshape(-1)
    vals = np.repeat(instance.demands()[inc_flows], num_slots)
    rhs = (capacities[used_edges][:, None] * durations[None, :]).reshape(-1)
    lp.add_constraints_batch(rows, cols, vals, rhs, ConstraintSense.LESS_EQUAL)
    # Row layout is edge-major: local row k covers slot k % num_slots.
    return offset, np.tile(slot_range, used_edges.size)


def _add_free_path_constraints(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: TimeGrid,
    x_idx: np.ndarray,
    y_idx: np.ndarray,
) -> tuple[int, np.ndarray]:
    """Multicommodity-flow constraints of the free path model (Eqs. 7–10 / 20–23).

    In addition to the paper's constraints we fix ``y = 0`` on edges entering
    a flow's source and leaving its sink.  Any feasible transmission with such
    circulation can be pruned to one without (remove flow cycles), so this
    does not change the LP optimum; it removes useless variables and makes
    solutions directly verifiable as net-flow decompositions.

    Vectorization: the conservation block of one flow is identical for every
    slot up to a constant column shift (``E`` per slot for ``y`` entries, 1
    per slot for the ``x`` entry), so a per-(source, sink) coefficient
    pattern is built once and broadcast over all slots with index
    arithmetic.  The per-edge bandwidth rows (Eq. 10) are emitted as a
    single dense-index computation.
    """
    graph = instance.graph
    capacities = graph.capacity_vector()
    durations = grid.durations
    num_slots = grid.num_slots
    num_edges = graph.num_edges
    num_flows = instance.num_flows
    nodes = graph.nodes

    x_start = int(x_idx[0, 0])
    y_start = int(y_idx[0, 0, 0])
    slot_range = np.arange(num_slots, dtype=np.int64)

    # Per-(src, dst) conservation pattern: (local_row, relative column at
    # t=0, per-slot column step, coefficient) per nonzero.  rows_per_slot is
    # the number of conservation rows one slot contributes for the flow.
    pattern_cache: Dict[
        tuple, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]
    ] = {}

    def _pattern(src: str, dst: str):
        cached = pattern_cache.get((src, dst))
        if cached is not None:
            return cached
        local_rows: list[int] = []
        rel_cols: list[int] = []
        steps: list[int] = []
        coefs: list[float] = []

        def _emit(row: int, edge_ids: np.ndarray, coef: float) -> None:
            local_rows.extend([row] * edge_ids.size)
            rel_cols.extend(edge_ids.tolist())
            steps.extend([num_edges] * edge_ids.size)
            coefs.extend([coef] * edge_ids.size)

        # Eq. (7): sum_out(src) y - x = 0, then Eq. (8): sum_in(dst) y - x = 0.
        _emit(0, graph.out_edge_indices(src), 1.0)
        local_rows.append(0)
        rel_cols.append(-1)  # placeholder: x column, filled via step/base
        steps.append(1)
        coefs.append(-1.0)
        _emit(1, graph.in_edge_indices(dst), 1.0)
        local_rows.append(1)
        rel_cols.append(-1)
        steps.append(1)
        coefs.append(-1.0)
        # Eq. (9): conservation at every other (non-isolated) node.
        row = 2
        for node in nodes:
            if node == src or node == dst:
                continue
            node_in = graph.in_edge_indices(node)
            node_out = graph.out_edge_indices(node)
            if node_in.size == 0 and node_out.size == 0:
                continue
            _emit(row, node_in, 1.0)
            _emit(row, node_out, -1.0)
            row += 1
        pattern = (
            np.array(local_rows, dtype=np.int64),
            np.array(rel_cols, dtype=np.int64),
            np.array(steps, dtype=np.int64),
            np.array(coefs, dtype=float),
            row,
        )
        pattern_cache[(src, dst)] = pattern
        return pattern

    eq_rows: list[np.ndarray] = []
    eq_cols: list[np.ndarray] = []
    eq_vals: list[np.ndarray] = []
    eq_row_offset = 0

    for ref in instance.flow_refs():
        f = ref.global_index
        src, dst = ref.flow.source, ref.flow.sink
        # Disallow circulation through the endpoints (see docstring).
        lp.fix_variables(y_idx[f][:, graph.in_edge_indices(src)], 0.0)
        lp.fix_variables(y_idx[f][:, graph.out_edge_indices(dst)], 0.0)

        local_rows, rel_cols, steps, coefs, rows_per_slot = _pattern(src, dst)
        # Column at t=0: y entries live at y_start + f*T*E + e, the x entry
        # (rel_col == -1) at x_start + f*T.
        col0 = np.where(
            rel_cols >= 0,
            y_start + f * num_slots * num_edges + rel_cols,
            x_start + f * num_slots,
        )
        eq_rows.append(
            (
                eq_row_offset
                + slot_range[:, None] * rows_per_slot
                + local_rows[None, :]
            ).reshape(-1)
        )
        eq_cols.append(
            (col0[None, :] + slot_range[:, None] * steps[None, :]).reshape(-1)
        )
        eq_vals.append(np.tile(coefs, num_slots))
        eq_row_offset += num_slots * rows_per_slot

    if eq_row_offset:
        lp.add_constraints_batch(
            np.concatenate(eq_rows),
            np.concatenate(eq_cols),
            np.concatenate(eq_vals),
            np.zeros(eq_row_offset),
            ConstraintSense.EQUAL,
        )

    # Eq. (10): edge bandwidths.  Row (t, e) sums y over all flows.
    offset = lp.num_inequality_constraints
    demands = instance.demands()
    te_range = np.arange(num_slots * num_edges, dtype=np.int64)
    rows = np.repeat(te_range, num_flows)
    # y_idx[f, t, e] = y_start + f*T*E + (t*E + e); enumerate flows minor.
    cols = (
        te_range[:, None]
        + np.arange(num_flows, dtype=np.int64)[None, :] * (num_slots * num_edges)
    ).reshape(-1) + y_start
    vals = np.tile(demands, num_slots * num_edges)
    rhs = (durations[:, None] * capacities[None, :]).reshape(-1)
    lp.add_constraints_batch(rows, cols, vals, rhs, ConstraintSense.LESS_EQUAL)
    # Row layout is slot-major: local row k covers slot k // num_edges.
    return offset, np.repeat(slot_range, num_edges)


# --------------------------------------------------------------------------- #
# staged solve pipeline
# --------------------------------------------------------------------------- #
#: Recognised values of the ``strategy`` knob of :func:`solve_time_indexed_lp`.
SOLVE_STRATEGIES = ("direct", "refine", "coarsen")

#: Epsilon of the cheap geometric stage the "refine"/"coarsen" strategies
#: solve first.  0.2 keeps the coarse LP an order of magnitude smaller than
#: typical fine uniform grids while staying close enough that the mapped
#: primal point seeds the fine solve well.
DEFAULT_STAGE_EPSILON = 0.2

#: A coarse slot counts as *binding* for dual-guided coarsening when its
#: largest capacity-row dual magnitude exceeds this fraction of the largest
#: capacity dual anywhere; slots below it stay merged.
DEFAULT_COARSEN_THRESHOLD = 1e-6


def map_solution_to_grid(
    coarse: CoflowLPSolution,
    grid: TimeGrid,
    bundle: _LPIndexBundle,
    num_variables: int,
) -> np.ndarray:
    """A coarse-grid LP solution spread onto *grid* as a full primal vector.

    Every fine slot receives the time-proportional share of its containing
    coarse slot's allocation (via :meth:`TimeGrid.refine_map`), cumulative
    completion indicators are rebuilt from the mapped fractions, and the
    coarse completion-time variables carry over unchanged.  The point is a
    warm-start *seed* — it need not satisfy the fine LP exactly (release
    boundaries may cut through coarse slots); HiGHS repairs it in crossover.
    """
    owner = grid.refine_map(coarse.grid)
    frac_share = grid.durations / coarse.grid.durations[owner]
    x = coarse.fractions[:, owner] * frac_share[None, :]

    column = np.zeros(num_variables, dtype=float)
    column[bundle.x] = x

    # X_j(t) = min over the coflow's flows of the cumulative sent fraction.
    cumulative = np.cumsum(x, axis=1)
    coflow_of_flow = coarse.instance.coflow_of_flow()
    big_x = np.full((coarse.instance.num_coflows, grid.num_slots), np.inf)
    np.minimum.at(big_x, coflow_of_flow, cumulative)
    column[bundle.big_x] = np.clip(big_x, 0.0, 1.0)

    column[bundle.c] = coarse.completion_times
    if bundle.y is not None and coarse.edge_fractions is not None:
        column[bundle.y] = coarse.edge_fractions[:, owner, :] * frac_share[None, :, None]
    return column


def _stage_entry(
    name: str, grid: TimeGrid, result: LPResult, warm_start: bool
) -> Dict[str, object]:
    """One JSON-safe per-stage record for ``metadata["solve_path"]``."""
    return {
        "stage": name,
        "slots": grid.num_slots,
        "grid": "uniform" if grid.is_uniform else "nonuniform",
        "solve_seconds": float(result.solve_seconds),
        "simplex_iterations": result.simplex_iterations,
        "warm_start": warm_start,
    }


def _backend_lp_result(lp: LinearProgram, solution) -> LPResult:
    """Shape a :class:`~repro.lp.backends.base.BackendSolution` as an LPResult."""
    return LPResult(
        status=solution.status,
        objective=solution.objective,
        x=solution.x,
        solve_seconds=solution.solve_seconds,
        message=solution.message,
        metadata={**lp.size_summary(), "warm_start": "primal-seeded"},
        simplex_iterations=solution.simplex_iterations,
        ub_duals=solution.ub_duals,
        eq_duals=solution.eq_duals,
    )


def _warm_solve(
    lp: LinearProgram,
    warm_primal: np.ndarray,
    *,
    backend: str,
    solver_method: str,
    time_limit: Optional[float],
) -> tuple[LPResult, bool]:
    """Solve *lp* seeded with *warm_primal*, falling back to a cold solve.

    Returns ``(result, warm_used)``.  The fallback (backend without
    warm-start support, or a seeded solve that did not reach optimality)
    goes through :func:`solve_lp`, i.e. exactly the "direct" path — the
    staged pipeline can only ever change *how fast* the optimum is found.
    """
    backend_obj = get_backend(backend, method=solver_method)
    if backend_obj.supports_warm_start:
        solution = backend_obj.solve(
            LPSpec.from_program(lp), time_limit=time_limit, warm_primal=warm_primal
        )
        if solution.is_optimal:
            return _backend_lp_result(lp, solution), True
    result = solve_lp(
        lp, method=solver_method, time_limit=time_limit, require_optimal=True
    )
    return result, False


def _coarsen_boundaries(
    fine: TimeGrid,
    coarse: TimeGrid,
    binding: np.ndarray,
) -> np.ndarray:
    """Boundaries of the dual-guided adaptive grid.

    Keeps every coarse boundary and splits only the *binding* coarse slots
    by re-inserting the fine boundaries they contain.  Because the result
    refines the coarse geometric grid slot-by-slot, the coarse grid's
    (1+ε) interval-indexed guarantee (Appendix A) carries over: splitting
    a slot only tightens the LP relaxation.
    """
    interior = fine.boundaries[1:-1]
    # Coarse slot containing each interior fine boundary b: (b_{j} < b <= b_{j+1}).
    tol = 1e-12 * np.maximum(1.0, interior)
    owner = np.searchsorted(coarse.boundaries, interior - tol, side="left") - 1
    owner = np.clip(owner, 0, coarse.num_slots - 1)
    keep = interior[binding[owner]]
    merged = np.concatenate([coarse.boundaries, keep])
    merged = np.unique(np.round(merged, 9))
    # Drop near-duplicate boundaries the rounding left distinct.
    deltas = np.diff(merged)
    mask = np.concatenate([[True], deltas > 1e-9 * np.maximum(1.0, merged[1:])])
    return merged[mask]


def _solve_direct(
    instance: CoflowInstance,
    grid: TimeGrid,
    *,
    solver_method: str,
    time_limit: Optional[float],
) -> tuple[LinearProgram, _LPIndexBundle, LPResult]:
    lp, bundle = build_time_indexed_lp(instance, grid)
    result = solve_lp(
        lp, method=solver_method, time_limit=time_limit, require_optimal=True
    )
    return lp, bundle, result


def _package_solution(
    instance: CoflowInstance,
    grid: TimeGrid,
    lp: LinearProgram,
    bundle: _LPIndexBundle,
    result: LPResult,
    solver_method: str,
    solve_path: Dict[str, object],
) -> CoflowLPSolution:
    fractions = result.values(bundle.x)
    completion_times = result.values(bundle.c)
    edge_fractions = None
    if bundle.y is not None:
        edge_fractions = result.values(bundle.y)
    objective = float(np.dot(instance.weights, completion_times))
    return CoflowLPSolution(
        instance=instance,
        grid=grid,
        objective=objective,
        completion_times=completion_times,
        fractions=fractions,
        edge_fractions=edge_fractions,
        lp_result=result,
        metadata={
            "solver_method": solver_method,
            "lp_size": lp.size_summary(),
            "solve_path": solve_path,
        },
    )


def solve_time_indexed_lp(
    instance: CoflowInstance,
    *,
    grid: Optional[TimeGrid] = None,
    num_slots: Optional[int] = None,
    slot_length: float = 1.0,
    epsilon: Optional[float] = None,
    horizon_slack: float = 1.1,
    solver_method: str = "highs",
    time_limit: Optional[float] = None,
    strategy: str = "direct",
    backend: str = "auto",
    stage_epsilon: float = DEFAULT_STAGE_EPSILON,
    coarsen_threshold: float = DEFAULT_COARSEN_THRESHOLD,
) -> CoflowLPSolution:
    """Build and solve the coflow LP for *instance*.

    Exactly one time-grid specification is used, in this order of precedence:

    1. an explicit *grid*;
    2. *epsilon* — a geometric grid ``0, 1, (1+eps), ...`` covering the
       suggested horizon (Appendix A);
    3. *num_slots* uniform slots of *slot_length*;
    4. otherwise, a uniform grid sized by :func:`suggest_horizon`.

    Solve strategies
    ----------------
    ``"direct"``
        One cold solve on the resolved grid (historical behaviour).
    ``"refine"``
        Progressive grid refinement: solve a cheap geometric grid
        (*stage_epsilon*) first, spread its optimum onto the resolved grid
        (:func:`map_solution_to_grid`) and warm-start the fine solve from
        that primal seed.  Identical optimum, typically far fewer simplex
        iterations.  Degrades to "direct" when the resolved grid is not
        meaningfully finer than the geometric stage, or when the selected
        *backend* cannot warm-start.
    ``"coarsen"``
        Dual-guided slot coarsening: solve the geometric stage, inspect its
        capacity-row duals and re-solve on an adaptive grid that re-splits
        only the binding slots.  The result lives on the adaptive grid
        (``solution.grid``) and retains the geometric stage's explicit
        (1 + *stage_epsilon*) guarantee, recorded in
        ``metadata["solve_path"]["coarsen"]``.

    Per-stage wall time, iteration counts and warm-start provenance are
    recorded under ``metadata["solve_path"]`` for every strategy.

    Returns
    -------
    CoflowLPSolution
        The optimal LP solution; raises :class:`~repro.lp.solver.LPSolverError`
        if the LP cannot be solved to optimality.
    """
    if strategy not in SOLVE_STRATEGIES:
        raise ValueError(
            f"unknown solve strategy {strategy!r}; expected one of {SOLVE_STRATEGIES}"
        )
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown solver backend {backend!r}; expected one of {BACKEND_NAMES}"
        )
    grid = resolve_grid(
        instance,
        grid=grid,
        num_slots=num_slots,
        slot_length=slot_length,
        epsilon=epsilon,
        horizon_slack=horizon_slack,
    )

    if strategy == "direct":
        lp, bundle, result = _solve_direct(
            instance, grid, solver_method=solver_method, time_limit=time_limit
        )
        solve_path: Dict[str, object] = {
            "strategy": "direct",
            "stages": [_stage_entry("direct", grid, result, warm_start=False)],
        }
        return _package_solution(
            instance, grid, lp, bundle, result, solver_method, solve_path
        )

    # Both staged strategies start from the cheap geometric grid.
    check_positive(stage_epsilon, "stage_epsilon")
    coarse_grid = TimeGrid.geometric(grid.horizon, stage_epsilon)
    if coarse_grid.num_slots >= grid.num_slots:
        # The target grid is already as coarse as the stage — staging would
        # only add overhead.  Solve directly but record why.
        lp, bundle, result = _solve_direct(
            instance, grid, solver_method=solver_method, time_limit=time_limit
        )
        solve_path = {
            "strategy": strategy,
            "degraded_to": "direct",
            "reason": (
                f"coarse stage ({coarse_grid.num_slots} slots) not cheaper than "
                f"target grid ({grid.num_slots} slots)"
            ),
            "stages": [_stage_entry("direct", grid, result, warm_start=False)],
        }
        return _package_solution(
            instance, grid, lp, bundle, result, solver_method, solve_path
        )

    coarse_lp, coarse_bundle, coarse_result = _solve_direct(
        instance, coarse_grid, solver_method=solver_method, time_limit=time_limit
    )
    coarse_solution = _package_solution(
        instance,
        coarse_grid,
        coarse_lp,
        coarse_bundle,
        coarse_result,
        solver_method,
        {"strategy": "direct", "stages": []},
    )
    stages = [_stage_entry("coarse", coarse_grid, coarse_result, warm_start=False)]

    if strategy == "refine":
        fine_lp, fine_bundle = build_time_indexed_lp(instance, grid)
        seed = map_solution_to_grid(
            coarse_solution, grid, fine_bundle, fine_lp.num_variables
        )
        fine_result, warm_used = _warm_solve(
            fine_lp,
            seed,
            backend=backend,
            solver_method=solver_method,
            time_limit=time_limit,
        )
        stages.append(_stage_entry("fine", grid, fine_result, warm_start=warm_used))
        solve_path = {"strategy": "refine", "stages": stages}
        return _package_solution(
            instance, grid, fine_lp, fine_bundle, fine_result, solver_method, solve_path
        )

    # strategy == "coarsen": adaptive grid from the stage's capacity duals.
    cap_slots = coarse_bundle.capacity_row_slots
    ub_duals = coarse_result.ub_duals
    if ub_duals is None or cap_slots.size == 0:
        binding = np.ones(coarse_grid.num_slots, dtype=bool)
    else:
        cap_duals = np.abs(
            ub_duals[
                coarse_bundle.capacity_ub_offset : coarse_bundle.capacity_ub_offset
                + cap_slots.size
            ]
        )
        slot_score = np.zeros(coarse_grid.num_slots)
        np.maximum.at(slot_score, cap_slots, cap_duals)
        peak = float(slot_score.max())
        binding = (
            slot_score > coarsen_threshold * peak
            if peak > 0.0
            else np.zeros(coarse_grid.num_slots, dtype=bool)
        )

    boundaries = _coarsen_boundaries(grid, coarse_grid, binding)
    final_grid = TimeGrid.from_boundaries(boundaries)
    if final_grid == coarse_grid:
        final_lp, final_bundle, final_result = (
            coarse_lp,
            coarse_bundle,
            coarse_result,
        )
        warm_used = False
    else:
        final_lp, final_bundle = build_time_indexed_lp(instance, final_grid)
        seed = map_solution_to_grid(
            coarse_solution, final_grid, final_bundle, final_lp.num_variables
        )
        final_result, warm_used = _warm_solve(
            final_lp,
            seed,
            backend=backend,
            solver_method=solver_method,
            time_limit=time_limit,
        )
        stages.append(
            _stage_entry("adaptive", final_grid, final_result, warm_start=warm_used)
        )
    solve_path = {
        "strategy": "coarsen",
        "stages": stages,
        "coarsen": {
            "epsilon": float(stage_epsilon),
            "guarantee_factor": 1.0 + float(stage_epsilon),
            "dual_threshold": float(coarsen_threshold),
            "slots_fine": int(grid.num_slots),
            "slots_coarse": int(coarse_grid.num_slots),
            "slots_final": int(final_grid.num_slots),
            "binding_slots": int(np.count_nonzero(binding)),
        },
    }
    return _package_solution(
        instance, final_grid, final_lp, final_bundle, final_result, solver_method, solve_path
    )
