"""The intermediate "k given paths" transmission model.

The paper's Section 2 notes that the LP framework "is also possible to
handle other kinds of transmissions, like an intermediate case between
single path and free path: several paths are given, and we can use them
together and decide at what rate we are transmitting along each path."
This module implements exactly that case:

* every flow gets a set of *candidate paths* (by default its ``k`` shortest
  paths, computed with Yen's algorithm);
* the time-indexed LP carries one rate variable per (flow, slot, candidate
  path); the per-slot transmission is the sum over candidate paths, and edge
  bandwidths bound the total traffic of all paths crossing them;
* the optimal solution is returned as a standard
  :class:`~repro.core.timeindexed.CoflowLPSolution` whose per-edge fractions
  are the path rates aggregated per edge, so the LP heuristic, the Stretch
  algorithm, compaction and the feasibility checker all apply unchanged.

Because every multipath schedule is a feasible free path schedule, and every
single (shortest) path schedule is a feasible multipath schedule with
``k >= 1`` candidates, the LP objective interpolates monotonically between
the two models as ``k`` grows — the ablation benchmark
``benchmarks/bench_ablation_multipath.py`` measures exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.core.timeindexed import CoflowLPSolution, suggest_horizon
from repro.lp.model import ConstraintSense, LinearProgram
from repro.lp.solver import solve_lp
from repro.network.paths import k_shortest_paths
from repro.schedule.timegrid import TimeGrid

#: Candidate paths per flow, keyed by global flow index.
CandidatePaths = Dict[int, List[Tuple[str, ...]]]


def assign_candidate_paths(
    instance: CoflowInstance,
    k: int,
    *,
    include_pinned: bool = True,
) -> CandidatePaths:
    """Compute ``k`` shortest candidate paths for every flow of *instance*.

    Parameters
    ----------
    instance:
        Any coflow instance on a connected graph.
    k:
        Number of candidate paths per flow (>= 1).  Fewer are returned when
        the graph does not contain that many simple paths.
    include_pinned:
        When a flow already carries a pinned path, keep it as a candidate
        (in addition to the shortest paths) so the multipath model is always
        at least as good as the single path model on the same instance.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    candidates: CandidatePaths = {}
    cache: Dict[Tuple[str, str], List[Tuple[str, ...]]] = {}
    for ref in instance.flow_refs():
        flow = ref.flow
        key = (flow.source, flow.sink)
        if key not in cache:
            cache[key] = k_shortest_paths(instance.graph, flow.source, flow.sink, k)
        paths = list(cache[key])
        if include_pinned and flow.has_path and tuple(flow.path) not in paths:
            paths = [tuple(flow.path)] + paths
        candidates[ref.global_index] = paths
    return candidates


def solve_multipath_lp(
    instance: CoflowInstance,
    *,
    candidate_paths: Optional[CandidatePaths] = None,
    k: int = 2,
    grid: Optional[TimeGrid] = None,
    num_slots: Optional[int] = None,
    slot_length: float = 1.0,
    solver_method: str = "highs",
) -> CoflowLPSolution:
    """Solve the time-indexed LP for the "k given paths" model.

    Either pass explicit *candidate_paths* (mapping global flow index to a
    list of node-tuple paths) or let the function compute the ``k`` shortest
    paths per flow.  Returns a :class:`CoflowLPSolution` expressed on the
    free path representation (per-edge fractions), so all downstream tooling
    (heuristic, Stretch, feasibility checking) works unchanged.
    """
    if candidate_paths is None:
        candidate_paths = assign_candidate_paths(instance, k)
    else:
        for ref in instance.flow_refs():
            if ref.global_index not in candidate_paths:
                raise ValueError(
                    f"candidate_paths is missing flow {ref.label} "
                    f"(global index {ref.global_index})"
                )
            if not candidate_paths[ref.global_index]:
                raise ValueError(f"flow {ref.label} has an empty candidate path set")
            for path in candidate_paths[ref.global_index]:
                instance.graph.validate_path(path)
                if path[0] != ref.flow.source or path[-1] != ref.flow.sink:
                    raise ValueError(
                        f"candidate path {path} does not connect the endpoints of "
                        f"flow {ref.label}"
                    )

    if grid is None:
        if num_slots is None:
            num_slots = suggest_horizon(instance, slot_length=slot_length)
        grid = TimeGrid.uniform(num_slots, slot_length)

    num_flows = instance.num_flows
    num_coflows = instance.num_coflows
    num_slots = grid.num_slots
    durations = grid.durations
    graph = instance.graph
    edge_index = graph.edge_index()
    num_edges = graph.num_edges

    # Flatten the (flow, path) pairs into one index space.
    pair_flow: List[int] = []
    pair_edges: List[np.ndarray] = []
    pairs_of_flow: Dict[int, List[int]] = {}
    for ref in instance.flow_refs():
        f = ref.global_index
        pairs_of_flow[f] = []
        for path in candidate_paths[f]:
            edges = np.array(
                [edge_index[e] for e in zip(path[:-1], path[1:])], dtype=np.int64
            )
            pairs_of_flow[f].append(len(pair_flow))
            pair_flow.append(f)
            pair_edges.append(edges)
    num_pairs = len(pair_flow)

    lp = LinearProgram(name=f"coflow-multipath-{instance.name}")
    x_idx = lp.add_variables("x", num_flows * num_slots, upper=1.0).reshape(
        num_flows, num_slots
    )
    big_x_idx = lp.add_variables("X", num_coflows * num_slots, upper=1.0).reshape(
        num_coflows, num_slots
    )
    c_idx = lp.add_variables("C", num_coflows).indices()
    z_idx = lp.add_variables("z", num_pairs * num_slots, upper=1.0).reshape(
        num_pairs, num_slots
    )

    lp.set_objective(c_idx, instance.weights)

    # Release times (Eq. 4): forbid early slots for x and all its path rates.
    release = instance.flow_release_times()
    allowed = grid.release_mask(release)
    for f, t in zip(*np.nonzero(~allowed)):
        lp.fix_variable(int(x_idx[f, t]), 0.0)
        for p in pairs_of_flow[int(f)]:
            lp.fix_variable(int(z_idx[p, t]), 0.0)

    # Demand satisfaction (Eq. 1).
    rows = np.repeat(np.arange(num_flows), num_slots)
    lp.add_constraints_batch(
        rows, x_idx.reshape(-1), np.ones(num_flows * num_slots),
        np.ones(num_flows), ConstraintSense.EQUAL,
    )

    # Path split: sum over candidate paths equals the per-slot fraction.
    split_rows: List[np.ndarray] = []
    split_cols: List[np.ndarray] = []
    split_vals: List[np.ndarray] = []
    row_counter = 0
    for f in range(num_flows):
        pair_ids = np.array(pairs_of_flow[f], dtype=np.int64)
        for t in range(num_slots):
            size = pair_ids.size + 1
            split_rows.append(np.full(size, row_counter, dtype=np.int64))
            split_cols.append(np.concatenate([z_idx[pair_ids, t], [x_idx[f, t]]]))
            split_vals.append(np.concatenate([np.ones(pair_ids.size), [-1.0]]))
            row_counter += 1
    lp.add_constraints_batch(
        np.concatenate(split_rows),
        np.concatenate(split_cols),
        np.concatenate(split_vals),
        np.zeros(row_counter),
        ConstraintSense.EQUAL,
    )

    # Coflow completion indicators (Eq. 2).
    coflow_of_flow = instance.coflow_of_flow()
    rows2: List[np.ndarray] = []
    cols2: List[np.ndarray] = []
    vals2: List[np.ndarray] = []
    row_counter = 0
    for f in range(num_flows):
        j = int(coflow_of_flow[f])
        for t in range(num_slots):
            size = t + 2
            rows2.append(np.full(size, row_counter, dtype=np.int64))
            cols2.append(np.concatenate([[big_x_idx[j, t]], x_idx[f, : t + 1]]))
            vals2.append(np.concatenate([[1.0], -np.ones(t + 1)]))
            row_counter += 1
    lp.add_constraints_batch(
        np.concatenate(rows2),
        np.concatenate(cols2),
        np.concatenate(vals2),
        np.zeros(row_counter),
        ConstraintSense.LESS_EQUAL,
    )

    # Completion-time lower bound (Eq. 3).
    first_duration = float(durations[0])
    total_duration = float(durations.sum())
    rows3: List[np.ndarray] = []
    cols3: List[np.ndarray] = []
    vals3: List[np.ndarray] = []
    for j in range(num_coflows):
        size = 1 + num_slots
        rows3.append(np.full(size, j, dtype=np.int64))
        cols3.append(np.concatenate([[c_idx[j]], big_x_idx[j]]))
        vals3.append(np.concatenate([[-1.0], -durations]))
    lp.add_constraints_batch(
        np.concatenate(rows3),
        np.concatenate(cols3),
        np.concatenate(vals3),
        np.full(num_coflows, -(first_duration + total_duration)),
        ConstraintSense.LESS_EQUAL,
    )

    # Edge bandwidths: total demand-weighted traffic of all candidate paths
    # crossing an edge is bounded by capacity x slot duration.
    demands = instance.demands()
    pairs_on_edge: Dict[int, List[int]] = {}
    for p, edges in enumerate(pair_edges):
        for e in edges:
            pairs_on_edge.setdefault(int(e), []).append(p)
    cap_rows: List[np.ndarray] = []
    cap_cols: List[np.ndarray] = []
    cap_vals: List[np.ndarray] = []
    cap_rhs: List[float] = []
    capacities = graph.capacity_vector()
    row_counter = 0
    for e, pair_list in sorted(pairs_on_edge.items()):
        pair_ids = np.array(pair_list, dtype=np.int64)
        pair_demands = demands[np.array([pair_flow[p] for p in pair_list])]
        for t in range(num_slots):
            cap_rows.append(np.full(pair_ids.size, row_counter, dtype=np.int64))
            cap_cols.append(z_idx[pair_ids, t])
            cap_vals.append(pair_demands)
            cap_rhs.append(capacities[e] * durations[t])
            row_counter += 1
    if row_counter:
        lp.add_constraints_batch(
            np.concatenate(cap_rows),
            np.concatenate(cap_cols),
            np.concatenate(cap_vals),
            np.array(cap_rhs),
            ConstraintSense.LESS_EQUAL,
        )

    result = solve_lp(lp, method=solver_method, require_optimal=True)

    fractions = result.values(x_idx)
    completion_times = result.values(c_idx)
    z_values = result.values(z_idx)
    # Aggregate path rates into per-edge fractions (free path representation).
    edge_fractions = np.zeros((num_flows, num_slots, num_edges), dtype=float)
    for p, edges in enumerate(pair_edges):
        f = pair_flow[p]
        for e in edges:
            edge_fractions[f, :, int(e)] += z_values[p]

    objective = float(np.dot(instance.weights, completion_times))
    # The downstream tooling (Schedule, feasibility) expects a free path
    # instance when per-edge fractions are present.
    free_instance = (
        instance
        if instance.model is TransmissionModel.FREE_PATH
        else instance.with_model(TransmissionModel.FREE_PATH)
    )
    return CoflowLPSolution(
        instance=free_instance,
        grid=grid,
        objective=objective,
        completion_times=completion_times,
        fractions=fractions,
        edge_fractions=edge_fractions,
        lp_result=result,
        metadata={
            "model": "multipath",
            "num_candidate_paths": {
                f: len(paths) for f, paths in candidate_paths.items()
            },
            "lp_size": lp.size_summary(),
        },
    )
