"""The LP-based heuristic of the paper's Section 6.2.

The optimal LP solution is itself a feasible transmission schedule; its true
completion times (paper Eq. 12 — the last slot in which any flow of the
coflow transmits) can in principle be arbitrarily worse than the LP
completion-time variables, but in every experiment of the paper taking the
LP schedule directly ("heuristic, λ = 1.0") turns out to be the strongest
practical algorithm.  This module packages that heuristic, optionally
followed by the Section 6.1 idle-slot compaction.
"""

from __future__ import annotations

from typing import Optional

from repro.core.timeindexed import CoflowLPSolution
from repro.schedule.compaction import compact_schedule
from repro.schedule.schedule import Schedule


def lp_heuristic_schedule(
    lp_solution: CoflowLPSolution,
    *,
    compact: bool = True,
) -> Schedule:
    """Interpret the LP solution directly as a schedule (λ = 1).

    Parameters
    ----------
    lp_solution:
        An optimal solution of the time-indexed (or interval-indexed) LP.
    compact:
        Apply idle-slot compaction (Section 6.1) before returning.  The
        paper's experiments use the compacted variant.

    Returns
    -------
    Schedule
        A feasible schedule whose weighted completion time is reported as
        "Heuristic (λ = 1.0)" in the paper's figures.
    """
    schedule = lp_solution.to_schedule()
    schedule.metadata["algorithm"] = "lp-heuristic"
    schedule.metadata["lambda"] = 1.0
    if compact:
        schedule = compact_schedule(schedule)
    return schedule


def heuristic_objective(
    lp_solution: CoflowLPSolution, *, compact: bool = True
) -> float:
    """Weighted completion time of the LP-based heuristic."""
    return lp_heuristic_schedule(lp_solution, compact=compact).weighted_completion_time()


def heuristic_gap(lp_solution: CoflowLPSolution, *, compact: bool = True) -> float:
    """Ratio of the heuristic objective to the LP lower bound.

    The paper observes this gap to be small (close to 1) across all
    workloads even though no worst-case guarantee exists for λ = 1.
    """
    bound = lp_solution.objective
    if bound <= 0:
        return float("inf")
    return heuristic_objective(lp_solution, compact=compact) / bound
