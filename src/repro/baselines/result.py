"""Common result container for baseline algorithms.

Baselines operate in continuous time (Terra, greedy heuristics) or produce
their own slotted schedules (Jahanjou et al.); either way the experiment
harness only needs completion times and the objective, so they all return a
:class:`BaselineResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.coflow.instance import CoflowInstance
from repro.schedule.schedule import Schedule


@dataclass
class BaselineResult:
    """Outcome of running a baseline algorithm on an instance."""

    algorithm: str
    instance: CoflowInstance
    coflow_completion_times: np.ndarray
    schedule: Optional[Schedule] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = np.asarray(self.coflow_completion_times, dtype=float)
        if times.shape != (self.instance.num_coflows,):
            raise ValueError(
                "coflow_completion_times must have one entry per coflow "
                f"({self.instance.num_coflows}), got shape {times.shape}"
            )
        self.coflow_completion_times = times

    @property
    def weighted_completion_time(self) -> float:
        """The paper's objective ``sum_j w_j C_j``."""
        return float(
            np.dot(self.instance.weights, self.coflow_completion_times)
        )

    @property
    def total_completion_time(self) -> float:
        """Unweighted sum of completion times (Figs. 11–12 metric)."""
        return float(self.coflow_completion_times.sum())

    @property
    def makespan(self) -> float:
        return float(self.coflow_completion_times.max(initial=0.0))

    def gap_to(self, lower_bound: float) -> float:
        """Ratio of the objective to an LP lower bound."""
        if lower_bound <= 0:
            return float("inf")
        return self.weighted_completion_time / lower_bound
