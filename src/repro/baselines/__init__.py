"""Baseline algorithms the paper compares against.

* :mod:`repro.baselines.terra` — the offline algorithm of Terra
  (You & Chowdhury 2019) for the free path model: per-coflow standalone
  completion times followed by shortest-remaining-time-first scheduling.
  Used in the paper's Figures 11–12 (unweighted).
* :mod:`repro.baselines.jahanjou` — the interval-indexed LP + α-point
  rounding of Jahanjou, Kantor & Rajaraman (SPAA 2017) for the single path
  model.  Used in the paper's Figures 9–10.
* :mod:`repro.baselines.greedy` — simple priority heuristics (FIFO,
  weighted shortest job first, smallest effective bottleneck first) used as
  additional sanity baselines in the examples and ablations.
"""

from repro.baselines.result import BaselineResult
from repro.baselines.terra import terra_offline_schedule
from repro.baselines.jahanjou import jahanjou_schedule
from repro.baselines.greedy import (
    fifo_schedule,
    sebf_schedule,
    weighted_sjf_schedule,
)
from repro.baselines.sincronia import bssi_order, sincronia_schedule

__all__ = [
    "BaselineResult",
    "terra_offline_schedule",
    "jahanjou_schedule",
    "fifo_schedule",
    "weighted_sjf_schedule",
    "sebf_schedule",
    "bssi_order",
    "sincronia_schedule",
]
