"""Terra's offline coflow scheduler (You & Chowdhury 2019), free path model.

The paper's Section 6.2 describes the baseline: "It calculates the time for
each single coflow to finish individually, and then schedules with SRTF
(shortest remaining time first).  Instead of one large LP like all other
algorithms compared here, this algorithm solves a large number of LPs, twice
the number of coflow jobs.  Terra can work with very fine grained time, to
the order of milliseconds (and does not need time to be slotted)."

Implementation here:

1. For every coflow, compute its *standalone completion time* — the minimum
   time to ship all of its flows when it owns the whole network — by solving
   a max-concurrent-flow LP (one LP per coflow).
2. Run the continuous-time simulator with SRTF priorities: at every event the
   released, unfinished coflow with the smallest *remaining* standalone time
   gets the highest priority (its remaining time is re-estimated from its
   remaining demands — the second family of LPs), the next smallest gets the
   capacity left over, and so on.  The allocation is work conserving and
   preemptive, matching Terra's fine-grained rate control.

Terra's published algorithm targets the unweighted objective (total
completion time); the paper's Figures 11–12 therefore compare on unweighted
instances.  This implementation accepts weighted instances too and simply
ignores the weights when ordering, as Terra would.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.result import BaselineResult
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.sim.rate_allocation import RATE_TOL, coflow_standalone_time
from repro.sim.simulator import (
    remaining_fraction_priority,
    simulate_priority_schedule,
)


def standalone_completion_times(instance: CoflowInstance) -> np.ndarray:
    """Terra's first LP family: each coflow's completion time run in isolation."""
    return np.array(
        [
            coflow_standalone_time(instance, j)
            for j in range(instance.num_coflows)
        ],
        dtype=float,
    )


def srtf_priority_fn(instance: CoflowInstance, standalone: np.ndarray):
    """Terra's SRTF priority as an array-based function (simulator hot path).

    Remaining standalone time scales with the remaining demand fraction:
    the max-concurrent-flow structure of a coflow does not change as it
    shrinks uniformly, so ``remaining_time = fraction * standalone_time``.
    (Non-uniform progress makes this an estimate — exactly the estimate
    Terra's SRTF step uses between its re-optimisation rounds.)
    """
    return remaining_fraction_priority(
        instance, standalone, standalone_tiebreak=True
    )


def terra_offline_schedule(
    instance: CoflowInstance,
    *,
    record_timeline: bool = False,
) -> BaselineResult:
    """Run Terra's offline SRTF algorithm on a free path instance.

    Raises
    ------
    ValueError
        If the instance is not a free path instance (Terra jointly routes and
        schedules; it has no notion of pinned paths).
    """
    if instance.model is not TransmissionModel.FREE_PATH:
        raise ValueError(
            "Terra's offline algorithm applies to the free path model; convert "
            "the instance with instance.with_model('free_path')"
        )
    standalone = standalone_completion_times(instance)
    sim = simulate_priority_schedule(
        instance, srtf_priority_fn(instance, standalone), record_timeline=record_timeline
    )
    return BaselineResult(
        algorithm="terra",
        instance=instance,
        coflow_completion_times=sim.coflow_completion_times,
        metadata={
            "standalone_times": standalone,
            "events": sim.metadata.get("events"),
        },
    )


def terra_lower_bound(instance: CoflowInstance) -> float:
    """A simple lower bound Terra reports: sum of standalone completion times.

    Every coflow needs at least its standalone time after release, so
    ``sum_j w_j (r_j + standalone_j)`` lower-bounds the optimum.  Used in
    tests as an additional sanity check alongside the LP bound.
    """
    standalone = standalone_completion_times(instance)
    release = instance.release_times
    return float(np.dot(instance.weights, release + standalone))
