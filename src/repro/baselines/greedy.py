"""Simple greedy priority baselines.

These are not from the paper's evaluation; they serve three purposes in this
repository: (a) sanity baselines for examples ("what does an uncoordinated /
naive scheduler cost?"), (b) additional comparison points in the ablation
benchmarks, and (c) exercise for the continuous-time simulator substrate.

* **FIFO** — coflows ordered by release time (an "uncoordinated" cluster).
* **Weighted SJF** — coflows ordered by standalone completion time divided by
  weight (the natural weighted shortest-job-first rule; with unit weights it
  degenerates to SJF, the rule RAPIER-style heuristics build on).
* **SEBF** — smallest effective bottleneck first: order by standalone
  completion time, ignoring weights (the Varys rule transplanted to general
  graphs).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.result import BaselineResult
from repro.coflow.instance import CoflowInstance
from repro.sim.rate_allocation import coflow_standalone_time
from repro.sim.simulator import (
    fifo_priority,
    remaining_fraction_priority,
    simulate_priority_schedule,
    static_order_priority,
)


def _standalone_times(instance: CoflowInstance) -> np.ndarray:
    return np.array(
        [coflow_standalone_time(instance, j) for j in range(instance.num_coflows)],
        dtype=float,
    )


def fifo_schedule(instance: CoflowInstance) -> BaselineResult:
    """First-come-first-served by release time (uncoordinated baseline)."""
    sim = simulate_priority_schedule(instance, fifo_priority)
    return BaselineResult(
        algorithm="fifo",
        instance=instance,
        coflow_completion_times=sim.coflow_completion_times,
    )


def weighted_sjf_schedule(instance: CoflowInstance) -> BaselineResult:
    """Weighted shortest job first: order by standalone time / weight.

    With unit weights this is plain shortest job first.  The ordering is
    static (computed once from the full demands), which matches how such
    heuristics are typically deployed.
    """
    standalone = _standalone_times(instance)
    ratio = standalone / instance.weights
    order = sorted(range(instance.num_coflows), key=lambda j: (ratio[j], j))
    sim = simulate_priority_schedule(instance, static_order_priority(order))
    return BaselineResult(
        algorithm="weighted-sjf",
        instance=instance,
        coflow_completion_times=sim.coflow_completion_times,
        metadata={"standalone_times": standalone},
    )


def sebf_priority_fn(instance: CoflowInstance, standalone: np.ndarray):
    """SEBF's dynamic priority as an array-based function (simulator hot path)."""
    return remaining_fraction_priority(
        instance, standalone, standalone_tiebreak=False
    )


def sebf_schedule(instance: CoflowInstance) -> BaselineResult:
    """Smallest effective bottleneck first (Varys-style, weight-agnostic).

    The priority is dynamic: a coflow's remaining standalone time is
    estimated as its standalone time scaled by the fraction of demand still
    outstanding, so the rule behaves like shortest *remaining* bottleneck
    first as coflows drain.
    """
    standalone = _standalone_times(instance)
    sim = simulate_priority_schedule(instance, sebf_priority_fn(instance, standalone))
    return BaselineResult(
        algorithm="sebf",
        instance=instance,
        coflow_completion_times=sim.coflow_completion_times,
        metadata={"standalone_times": standalone},
    )
