"""A Sincronia-style combinatorial (LP-free) ordering baseline.

Sincronia (Agarwal et al., SIGCOMM 2018 — reference [1] of the paper) showed
that, in the switch model, ordering coflows with a primal-dual rule
("Bottleneck-Select-Scale-Iterate", BSSI) and then rate-allocating greedily
by that order is within 4x of optimal and extremely practical.  The paper's
related-work section highlights this line of work as the LP-free
alternative; this module adapts the ordering rule to general graphs so the
repository has a combinatorial baseline alongside the LP-based algorithms.

Adaptation to graphs:

* the "ports" of the switch model become the directed edges of the network;
* a coflow's demand on an edge is the total demand of its flows whose
  representative path uses that edge (the pinned path in the single path
  model; the first shortest path in the free path model — only the
  *ordering* uses this approximation, the actual transmission is handled by
  the exact rate-allocation simulator);
* BSSI then runs unchanged: repeatedly find the most loaded edge, pick the
  coflow with the largest scaled-weight-per-unit-demand on it to finish
  *last*, scale the remaining weights, and recurse.

The final schedule is produced by the continuous-time simulator with the
BSSI order as a static priority list (work conserving, preemptive), exactly
like the greedy baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.result import BaselineResult
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.network.paths import shortest_path
from repro.sim.simulator import simulate_priority_schedule, static_order_priority

#: Numerical floor when dividing by per-edge demands.
_DEMAND_EPS = 1e-12


def coflow_edge_demands(instance: CoflowInstance) -> np.ndarray:
    """Per-coflow, per-edge demand matrix used by the ordering rule.

    Shape ``(num_coflows, num_edges)``.  Flows contribute their demand to
    every edge of their representative path (pinned path when available,
    first shortest path otherwise).
    """
    graph = instance.graph
    edge_index = graph.edge_index()
    demands = np.zeros((instance.num_coflows, graph.num_edges), dtype=float)
    path_cache: Dict[tuple, tuple] = {}
    for ref in instance.flow_refs():
        flow = ref.flow
        if flow.has_path:
            path = tuple(flow.path)
        else:
            key = (flow.source, flow.sink)
            if key not in path_cache:
                path_cache[key] = shortest_path(graph, flow.source, flow.sink)
            path = path_cache[key]
        for edge in zip(path[:-1], path[1:]):
            demands[ref.coflow_index, edge_index[edge]] += flow.demand
    return demands


def bssi_order(instance: CoflowInstance) -> List[int]:
    """The Bottleneck-Select-Scale-Iterate ordering (first = highest priority).

    Builds the permutation back to front: at each step the most loaded edge
    (relative to its capacity) is the bottleneck, the unscheduled coflow with
    the smallest ``scaled weight / demand on the bottleneck`` is placed last,
    and the remaining coflows' weights are reduced in proportion to their own
    demand on that bottleneck — the classic primal-dual weight-splitting.
    """
    num_coflows = instance.num_coflows
    demands = coflow_edge_demands(instance)
    capacities = instance.graph.capacity_vector()
    scaled_weights = instance.weights.astype(float).copy()
    unscheduled = set(range(num_coflows))
    reverse_order: List[int] = []

    while unscheduled:
        active = sorted(unscheduled)
        load = demands[active].sum(axis=0) / capacities
        bottleneck = int(np.argmax(load))
        on_bottleneck = [j for j in active if demands[j, bottleneck] > _DEMAND_EPS]
        if not on_bottleneck:
            # Remaining coflows have no demand anywhere relevant (isolated
            # representative paths); close them out by weight, lightest last.
            last = min(active, key=lambda j: (scaled_weights[j], -j))
        else:
            last = min(
                on_bottleneck,
                key=lambda j: (
                    scaled_weights[j] / max(demands[j, bottleneck], _DEMAND_EPS),
                    -j,
                ),
            )
            ratio = scaled_weights[last] / max(demands[last, bottleneck], _DEMAND_EPS)
            for j in on_bottleneck:
                if j == last:
                    continue
                scaled_weights[j] = max(
                    scaled_weights[j] - ratio * demands[j, bottleneck], 0.0
                )
        reverse_order.append(last)
        unscheduled.remove(last)

    reverse_order.reverse()
    return reverse_order


def sincronia_schedule(
    instance: CoflowInstance, *, order: Optional[List[int]] = None
) -> BaselineResult:
    """Schedule *instance* with the BSSI order and greedy rate allocation.

    Works for both transmission models: the ordering uses representative
    paths, the transmission uses the exact per-model rate allocation of the
    simulator (pinned paths for the single path model, max-concurrent-flow
    LPs for the free path model).
    """
    if order is None:
        order = bssi_order(instance)
    else:
        if sorted(order) != list(range(instance.num_coflows)):
            raise ValueError("order must be a permutation of the coflow indices")
    sim = simulate_priority_schedule(instance, static_order_priority(order))
    return BaselineResult(
        algorithm="sincronia-bssi",
        instance=instance,
        coflow_completion_times=sim.coflow_completion_times,
        metadata={"order": list(order)},
    )
