"""The Jahanjou–Kantor–Rajaraman baseline for the single path model.

Jahanjou et al. (SPAA 2017) gave the first constant-factor approximation
(ratio 17.6) for "circuit-based coflows with paths given".  The paper's
Section 6.2 summarises their approach: "First write an LP using geometric
time intervals, then schedule each job according to the interval its α-point
(the time when α fraction of this job is finished) belongs to. ... To
optimize the approximation ratio, ε is set to 0.5436."

This module reproduces that structure:

1. Solve the interval-indexed LP (the Appendix A LP with a geometric
   :class:`~repro.schedule.timegrid.TimeGrid` of parameter ε).
2. Compute every coflow's α-point — the earliest continuous time by which an
   α fraction of *every* one of its flows has been scheduled by the LP.
3. Group coflows by the geometric interval containing their α-point and lay
   the groups out sequentially: the batch for interval *k* replays the LP's
   prefix schedule (time 0 .. its α-points) restricted to the batch's
   coflows at the LP's original rates until every batch flow has shipped its
   full demand — which, because each flow had already shipped an α fraction
   by its α-point, takes exactly ``alpha_point / alpha`` time.  The next
   batch starts once the current one finishes and its own interval has
   opened.

Within a batch the replayed prefix is feasible (it is the LP schedule
restricted to fewer flows, at unchanged rates), so the resulting completion
times are achievable.  The exact padding constants of the published rounding
differ in minor ways, but the interval-aligned batching — which is what
prevents the fine-grained cross-coflow interleaving the time-indexed LP
heuristic exploits, and therefore what drives the large gap in the paper's
Figures 9–10 — is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.result import BaselineResult
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.core.timeindexed import CoflowLPSolution, solve_time_indexed_lp

#: The ε value optimising Jahanjou et al.'s approximation ratio (paper §6.2).
OPTIMAL_EPSILON = 0.5436

#: Default α used for the α-point (half of each flow scheduled).
DEFAULT_ALPHA = 0.5


def coflow_alpha_points(
    lp_solution: CoflowLPSolution, alpha: float = DEFAULT_ALPHA
) -> np.ndarray:
    """The α-point of every coflow under an LP solution.

    The α-point is the earliest (continuous) time by which the LP has
    scheduled at least an α fraction of **every** flow of the coflow,
    assuming uniform transmission within each slot.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
    instance = lp_solution.instance
    grid = lp_solution.grid
    fractions = lp_solution.fractions
    cumulative = np.cumsum(fractions, axis=1)
    bounds = grid.boundaries
    durations = grid.durations

    flow_alpha_times = np.empty(instance.num_flows, dtype=float)
    for f in range(instance.num_flows):
        cum = cumulative[f]
        # First slot where the cumulative fraction reaches alpha.
        reached = np.nonzero(cum >= alpha - 1e-12)[0]
        if reached.size == 0:
            # Incomplete LP row (should not happen for optimal solutions);
            # fall back to the horizon.
            flow_alpha_times[f] = grid.horizon
            continue
        t = int(reached[0])
        prev_cum = cum[t - 1] if t > 0 else 0.0
        slot_amount = cum[t] - prev_cum
        if slot_amount <= 1e-15:
            flow_alpha_times[f] = bounds[t]
        else:
            inside = (alpha - prev_cum) / slot_amount
            flow_alpha_times[f] = bounds[t] + inside * durations[t]
    coflow_points = np.zeros(instance.num_coflows, dtype=float)
    np.maximum.at(coflow_points, instance.coflow_of_flow(), flow_alpha_times)
    return coflow_points


def jahanjou_schedule(
    instance: CoflowInstance,
    *,
    epsilon: float = OPTIMAL_EPSILON,
    alpha: float = DEFAULT_ALPHA,
    slot_length: float = 1.0,
    lp_solution: Optional[CoflowLPSolution] = None,
) -> BaselineResult:
    """Run the Jahanjou et al. style interval LP + α-point rounding.

    Parameters
    ----------
    instance:
        A single path instance (every flow pinned to a path).
    epsilon:
        Geometric-interval growth factor of the LP (0.5436 optimises their
        ratio; the paper also reports ε = 0.2).
    alpha:
        α-point fraction.
    slot_length:
        Time unit of the LP horizon estimate.
    lp_solution:
        Re-use a previously solved interval LP (must be for this instance).
    """
    if instance.model is not TransmissionModel.SINGLE_PATH:
        raise ValueError(
            "the Jahanjou et al. baseline applies to the single path model"
        )
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if lp_solution is None:
        lp_solution = solve_time_indexed_lp(
            instance, epsilon=epsilon, slot_length=slot_length
        )
    elif lp_solution.instance is not instance:
        raise ValueError("lp_solution was computed for a different instance")

    grid = lp_solution.grid
    alpha_points = coflow_alpha_points(lp_solution, alpha)

    # Assign each coflow to the geometric interval containing its alpha point.
    interval_of_coflow = np.array(
        [grid.slot_containing(min(t, grid.horizon)) for t in alpha_points], dtype=int
    )
    groups: Dict[int, List[int]] = {}
    for j, k in enumerate(interval_of_coflow):
        groups.setdefault(int(k), []).append(j)

    release = instance.release_times
    completion = np.zeros(instance.num_coflows, dtype=float)
    current_time = 0.0
    batch_count = 0
    for k in sorted(groups):
        members = groups[k]
        batch_count += 1
        # The batch may not start before its interval opens (which also
        # guarantees every member has been released: the LP only schedules a
        # flow after its release time, so alpha_point >= release and the
        # interval containing the alpha point ends after the release).
        batch_start = max(current_time, grid.slot_start(k), float(release[members].max(initial=0.0)))
        # Replaying the LP prefix (0 .. alpha_point) at its original rates
        # ships the remaining (1 - alpha) fraction of every member flow by
        # time alpha_point / alpha after the batch start (see module docs).
        batch_completion = alpha_points[members] / alpha
        for j, c in zip(members, batch_completion):
            completion[j] = batch_start + float(c)
        current_time = batch_start + float(batch_completion.max(initial=0.0))

    return BaselineResult(
        algorithm="jahanjou",
        instance=instance,
        coflow_completion_times=completion,
        metadata={
            "epsilon": epsilon,
            "alpha": alpha,
            "lp_lower_bound": lp_solution.objective,
            "num_intervals": grid.num_slots,
            "num_batches": batch_count,
        },
    )


def interval_lp_lower_bound(
    instance: CoflowInstance, *, epsilon: float, slot_length: float = 1.0
) -> float:
    """Objective of the interval-indexed LP (the "Time interval LP" series
    of the paper's Figures 8–10)."""
    solution = solve_time_indexed_lp(
        instance, epsilon=epsilon, slot_length=slot_length
    )
    return solution.objective
