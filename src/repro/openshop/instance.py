"""The concurrent open shop problem.

There are ``m`` machines and ``n`` jobs; job ``j`` needs ``p[i][j]`` units of
processing on machine ``i``.  A job may be processed on several machines at
the same time (unlike the classic open shop), each machine processes one unit
of work per unit time, and a job completes when all of its machine demands
are done.  The objective is the weighted sum of job completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive


@dataclass
class OpenShopInstance:
    """A concurrent open shop instance.

    Parameters
    ----------
    processing:
        Matrix of shape ``(num_machines, num_jobs)``; entry ``[i, j]`` is the
        amount of work job *j* requires on machine *i* (0 allowed).
    weights:
        Job weights (default all 1).
    release_times:
        Job release times (default all 0).
    """

    processing: np.ndarray
    weights: Optional[np.ndarray] = None
    release_times: Optional[np.ndarray] = None
    name: str = field(default="openshop", compare=False)

    def __post_init__(self) -> None:
        self.processing = np.asarray(self.processing, dtype=float)
        if self.processing.ndim != 2:
            raise ValueError("processing must be a 2-D (machines x jobs) matrix")
        if np.any(self.processing < 0):
            raise ValueError("processing times must be non-negative")
        if np.any(self.processing.sum(axis=0) <= 0):
            raise ValueError("every job must require work on at least one machine")
        m, n = self.processing.shape
        if m < 1 or n < 1:
            raise ValueError("need at least one machine and one job")
        if self.weights is None:
            self.weights = np.ones(n, dtype=float)
        else:
            self.weights = np.asarray(self.weights, dtype=float)
            if self.weights.shape != (n,):
                raise ValueError(f"weights must have shape ({n},)")
            for w in self.weights:
                check_positive(float(w), "job weight")
        if self.release_times is None:
            self.release_times = np.zeros(n, dtype=float)
        else:
            self.release_times = np.asarray(self.release_times, dtype=float)
            if self.release_times.shape != (n,):
                raise ValueError(f"release_times must have shape ({n},)")
            for r in self.release_times:
                check_nonnegative(float(r), "job release time")

    @property
    def num_machines(self) -> int:
        return self.processing.shape[0]

    @property
    def num_jobs(self) -> int:
        return self.processing.shape[1]

    def machine_load(self) -> np.ndarray:
        """Total work on each machine (a trivial makespan lower bound)."""
        return self.processing.sum(axis=1)

    def completion_times_for_order(self, order: Sequence[int]) -> np.ndarray:
        """Job completion times when every machine processes jobs in *order*.

        For concurrent open shop (without release times) permutation schedules
        are dominant: processing jobs in the same order on every machine,
        each machine back to back, is optimal for *some* order.  With release
        times the machines idle until the job is released.
        """
        order = list(order)
        if sorted(order) != list(range(self.num_jobs)):
            raise ValueError("order must be a permutation of the job indices")
        completion = np.zeros(self.num_jobs, dtype=float)
        machine_time = np.zeros(self.num_machines, dtype=float)
        for j in order:
            start = np.maximum(machine_time, self.release_times[j])
            finish = start + self.processing[:, j]
            # Machines with zero processing for this job do not advance.
            active = self.processing[:, j] > 0
            machine_time = np.where(active, finish, machine_time)
            completion[j] = float(finish[active].max()) if active.any() else float(
                self.release_times[j]
            )
        return completion

    def weighted_completion_time(self, completion: np.ndarray) -> float:
        """Objective value for a vector of job completion times."""
        completion = np.asarray(completion, dtype=float)
        if completion.shape != (self.num_jobs,):
            raise ValueError("completion must have one entry per job")
        return float(np.dot(self.weights, completion))

    @classmethod
    def random(
        cls,
        num_machines: int,
        num_jobs: int,
        rng: np.random.Generator,
        *,
        max_processing: float = 10.0,
        density: float = 1.0,
        weighted: bool = True,
    ) -> "OpenShopInstance":
        """A random instance used by tests and the hardness example."""
        if not 0 < density <= 1:
            raise ValueError("density must lie in (0, 1]")
        processing = rng.uniform(1.0, max_processing, size=(num_machines, num_jobs))
        if density < 1.0:
            mask = rng.uniform(size=processing.shape) < density
            processing = processing * mask
        # Guarantee every job has some work.
        for j in range(num_jobs):
            if processing[:, j].sum() <= 0:
                processing[rng.integers(num_machines), j] = rng.uniform(
                    1.0, max_processing
                )
        weights = (
            rng.uniform(1.0, 10.0, size=num_jobs) if weighted else np.ones(num_jobs)
        )
        return cls(processing=processing, weights=weights)
