"""Concurrent open shop: the problem coflow scheduling generalises.

The paper's hardness result (Section 5, Theorem 5.1) reduces concurrent open
shop — NP-hard to approximate within ``2 - eps`` — to coflow scheduling on a
graph of disjoint unit-capacity edges.  This package implements:

* the concurrent open shop problem itself
  (:class:`~repro.openshop.instance.OpenShopInstance`);
* both directions of the paper's reduction
  (:mod:`repro.openshop.reduction`);
* reference schedulers for concurrent open shop
  (:mod:`repro.openshop.schedulers`): weighted-shortest-processing-time list
  scheduling, an LP-ordering scheduler, and brute-force optimum for tiny
  instances.

These are used by the test suite to validate the coflow algorithms against
independently computed optima, and by the hardness-gadget example.
"""

from repro.openshop.instance import OpenShopInstance
from repro.openshop.reduction import (
    coflow_schedule_to_openshop_times,
    openshop_to_coflow_instance,
)
from repro.openshop.schedulers import (
    brute_force_optimum,
    list_schedule,
    lp_order_schedule,
    wspt_order,
)

__all__ = [
    "OpenShopInstance",
    "openshop_to_coflow_instance",
    "coflow_schedule_to_openshop_times",
    "wspt_order",
    "list_schedule",
    "lp_order_schedule",
    "brute_force_optimum",
]
