"""The reduction of the paper's Section 5 between concurrent open shop and
coflow scheduling on disjoint unit edges.

Forward direction (used by tests and the hardness example): machine *i*
becomes a unit-capacity edge ``x_i -> y_i``; job *j* becomes a coflow with
one flow of demand ``p[i][j]`` on every machine edge it needs.  Completion
times (and therefore the objective) transfer exactly in both directions
(Theorem 5.1), so optima and LP lower bounds computed on one side validate
algorithms on the other.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.coflow.coflow import Coflow
from repro.coflow.flow import Flow
from repro.coflow.instance import CoflowInstance, TransmissionModel
from repro.network.topologies import parallel_edges_topology
from repro.openshop.instance import OpenShopInstance
from repro.schedule.schedule import Schedule


def openshop_to_coflow_instance(
    shop: OpenShopInstance,
    *,
    model: TransmissionModel | str = TransmissionModel.SINGLE_PATH,
) -> CoflowInstance:
    """Build the coflow instance of the Section 5 reduction.

    Machine *i* maps to the unit-capacity edge ``x{i+1} -> y{i+1}``; job *j*
    maps to a coflow whose flows carry the job's positive processing demands.
    Because each edge is an isolated component, the single path and free path
    models coincide on the constructed instance (as the proof notes); the
    *model* parameter only decides which constraint family the LP will use.
    """
    graph = parallel_edges_topology(shop.num_machines, capacity=1.0)
    coflows = []
    for j in range(shop.num_jobs):
        flows = []
        for i in range(shop.num_machines):
            demand = float(shop.processing[i, j])
            if demand <= 0:
                continue
            source, sink = f"x{i + 1}", f"y{i + 1}"
            flows.append(
                Flow(
                    source=source,
                    sink=sink,
                    demand=demand,
                    path=(source, sink),
                    release_time=float(shop.release_times[j]),
                    name=f"job{j}-machine{i}",
                )
            )
        coflows.append(
            Coflow(
                flows=tuple(flows),
                weight=float(shop.weights[j]),
                release_time=float(shop.release_times[j]),
                name=f"job{j}",
            )
        )
    return CoflowInstance(
        graph,
        coflows,
        model=model,
        name=f"{shop.name}-as-coflows",
    )


def coflow_schedule_to_openshop_times(
    shop: OpenShopInstance, schedule: Schedule
) -> np.ndarray:
    """Translate a coflow schedule of the reduced instance back to job completion times.

    The proof of Theorem 5.1 maps a (possibly fractional, preemptive) coflow
    schedule to a concurrent open shop schedule with the same completion
    times, then shows these can only improve when made non-preemptive.  For
    validation purposes the fractional completion times themselves are what
    we compare, so this simply returns the coflow completion times in job
    order.
    """
    instance = schedule.instance
    if instance.num_coflows != shop.num_jobs:
        raise ValueError(
            "schedule does not belong to the reduction of this open shop instance"
        )
    return schedule.coflow_completion_times()


def openshop_objective_bounds(
    shop: OpenShopInstance,
) -> Tuple[float, float]:
    """Cheap lower and upper bounds on the optimal weighted completion time.

    Lower bound: every job finishes no earlier than its largest single
    machine demand (plus release).  Upper bound: schedule jobs one after the
    other in weighted-shortest-processing-time order.  Used to sanity-check
    LP bounds in tests.
    """
    per_job_max = shop.processing.max(axis=0)
    lower = float(np.dot(shop.weights, shop.release_times + per_job_max))
    # Upper bound via an arbitrary permutation (WSPT by total work).
    total_work = shop.processing.sum(axis=0)
    order = sorted(
        range(shop.num_jobs), key=lambda j: total_work[j] / shop.weights[j]
    )
    completion = shop.completion_times_for_order(order)
    upper = shop.weighted_completion_time(completion)
    return lower, upper
