"""Reference schedulers for concurrent open shop.

Used by the test suite to obtain independent optima / strong feasible
solutions that the coflow algorithms are compared against through the
Section 5 reduction.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Sequence, Tuple

import numpy as np

from repro.lp.model import ConstraintSense, LinearProgram
from repro.lp.solver import solve_lp
from repro.openshop.instance import OpenShopInstance


def wspt_order(shop: OpenShopInstance) -> List[int]:
    """Weighted-shortest-processing-time order by *total* work.

    A classic 2-approximation ordering rule for concurrent open shop without
    release times (jobs sorted by total processing / weight).
    """
    total = shop.processing.sum(axis=0)
    return sorted(range(shop.num_jobs), key=lambda j: (total[j] / shop.weights[j], j))


def list_schedule(
    shop: OpenShopInstance, order: Sequence[int]
) -> Tuple[np.ndarray, float]:
    """Completion times and objective of the permutation schedule for *order*."""
    completion = shop.completion_times_for_order(order)
    return completion, shop.weighted_completion_time(completion)


def lp_order_schedule(shop: OpenShopInstance) -> Tuple[np.ndarray, float]:
    """Order jobs by the completion-time variables of a relaxation LP.

    Solves the standard completion-time LP with machine-load constraints
    over job subsets restricted to prefixes (a light-weight relaxation that
    is cheap and yields a good ordering), then list-schedules in
    non-decreasing LP completion time.  This mirrors the primal-dual /
    LP-ordering approach of Ahmadi et al. referenced in the paper's related
    work.
    """
    m, n = shop.num_machines, shop.num_jobs
    lp = LinearProgram(name="openshop-order")
    c_block = lp.add_variables("C", n, lower=0.0)
    c_idx = c_block.indices()
    lp.set_objective(c_idx, shop.weights)
    # C_j >= r_j + p_ij for every machine.
    for j in range(n):
        lower = float(shop.release_times[j] + shop.processing[:, j].max())
        lp.set_bounds(int(c_idx[j]), lower, None)
    # Parallel-inequalities on every machine for the full job set and for
    # every job individually (a tractable subset of the exponential family):
    # sum_j p_ij C_j >= 1/2 (sum_j p_ij^2 + (sum_j p_ij)^2).
    for i in range(m):
        p = shop.processing[i]
        active = np.nonzero(p > 0)[0]
        if active.size == 0:
            continue
        rhs = 0.5 * (float((p[active] ** 2).sum()) + float(p[active].sum()) ** 2)
        lp.add_constraint(
            c_idx[active], p[active], ConstraintSense.GREATER_EQUAL, rhs
        )
    result = solve_lp(lp, require_optimal=True)
    lp_completion = result.values(c_idx)
    order = sorted(range(n), key=lambda j: (lp_completion[j], j))
    return shop.completion_times_for_order(order), shop.weighted_completion_time(
        shop.completion_times_for_order(order)
    )


def brute_force_optimum(shop: OpenShopInstance) -> Tuple[np.ndarray, float]:
    """Exact optimum by enumerating all permutation schedules.

    Permutation schedules are optimal for concurrent open shop without
    release times; with release times they remain a very strong upper bound.
    Only usable for small instances (``n <= 9``).
    """
    if shop.num_jobs > 9:
        raise ValueError("brute force is limited to at most 9 jobs")
    best_value = float("inf")
    best_completion: np.ndarray | None = None
    for order in permutations(range(shop.num_jobs)):
        completion = shop.completion_times_for_order(order)
        value = shop.weighted_completion_time(completion)
        if value < best_value - 1e-12:
            best_value = value
            best_completion = completion
    assert best_completion is not None
    return best_completion, best_value
