"""Experiment configurations, one per figure of the paper's evaluation.

Each :class:`ExperimentConfig` records the topology, transmission model,
workloads, algorithm series and sizing knobs needed to regenerate one paper
figure (or one ablation).  Sizes are scaled down relative to the paper's
200-job traces so that every LP solves in seconds with scipy/HiGHS — see
DESIGN.md ("Substitutions") — and can be scaled back up through the
``scale`` argument of :func:`repro.experiments.runner.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.coflow.instance import TransmissionModel
from repro.workloads.profiles import BENCHMARK_NAMES

#: Algorithm series understood by the runner.
SERIES_LP_BOUND = "lp_bound"
SERIES_HEURISTIC = "heuristic"
SERIES_BEST_LAMBDA = "best_lambda"
SERIES_AVERAGE_LAMBDA = "average_lambda"
SERIES_INTERVAL_LP_BOUND = "interval_lp_bound"
SERIES_INTERVAL_HEURISTIC = "interval_heuristic"
SERIES_JAHANJOU = "jahanjou"
SERIES_TERRA = "terra"
SERIES_FIFO = "fifo"
SERIES_WSJF = "weighted_sjf"
SERIES_STRETCH_NO_COMPACTION = "stretch_no_compaction"
SERIES_SINCRONIA = "sincronia"

#: Series computed by dispatching one registered algorithm through
#: :func:`repro.api.solve` (the λ-sampling and interval-LP series have
#: bespoke handling in the runner because several series share one
#: evaluation / LP solve).
SERIES_TO_ALGORITHM: Dict[str, str] = {
    SERIES_HEURISTIC: "lp-heuristic",
    SERIES_TERRA: "terra",
    SERIES_JAHANJOU: "jahanjou",
    SERIES_FIFO: "fifo",
    SERIES_WSJF: "weighted-sjf",
    SERIES_SINCRONIA: "sincronia",
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to regenerate one figure / table.

    Attributes
    ----------
    experiment_id:
        Identifier matching the paper artefact (e.g. ``"fig06"``).
    title:
        Human-readable description (used as the table caption).
    topology:
        ``"swan"`` or ``"gscale"`` (or any name accepted by
        :func:`repro.network.topologies.named_topology`).
    model:
        Transmission model of the experiment.
    workloads:
        Benchmark names to run (columns of the figure).
    series:
        Algorithm series to compute (bars of the figure).
    weighted:
        Whether coflows carry U[1, 100] weights (Figs. 6–10) or unit weights
        (Figs. 11–12).
    num_coflows, demand_scale:
        Workload sizing (scaled-down stand-ins for the paper's 200 jobs).
    epsilon_values:
        Only for the ε-sweep experiment (Fig. 8).
    epsilon:
        Geometric-grid parameter used by interval-LP series (Figs. 9–10 use
        ε = 0.2 for the interval LP and 0.5436 inside the Jahanjou baseline).
    num_lambda_samples:
        Number of λ draws for the "Best λ" / "Average λ" series.
    seed:
        Workload generation seed (per-workload seeds are derived from it).
    """

    experiment_id: str
    title: str
    topology: str
    model: TransmissionModel
    workloads: Tuple[str, ...] = BENCHMARK_NAMES
    series: Tuple[str, ...] = (SERIES_LP_BOUND, SERIES_HEURISTIC)
    weighted: bool = True
    num_coflows: int = 12
    demand_scale: float = 1.5
    epsilon_values: Tuple[float, ...] = ()
    epsilon: float = 0.2
    num_lambda_samples: int = 10
    seed: int = 2019
    notes: str = ""

    @property
    def objective_name(self) -> str:
        """Label of the metric the figure reports."""
        return (
            "Weighted Completion Time" if self.weighted else "Total Completion Time"
        )


def _freepath_weighted(experiment_id: str, topology: str, title: str, num_coflows: int) -> ExperimentConfig:
    return ExperimentConfig(
        experiment_id=experiment_id,
        title=title,
        topology=topology,
        model=TransmissionModel.FREE_PATH,
        series=(
            SERIES_LP_BOUND,
            SERIES_HEURISTIC,
            SERIES_BEST_LAMBDA,
            SERIES_AVERAGE_LAMBDA,
        ),
        weighted=True,
        num_coflows=num_coflows,
        notes="LP lower bound vs heuristic (λ=1) vs best/average λ of Stretch.",
    )


def _singlepath_weighted(experiment_id: str, topology: str, title: str, num_coflows: int) -> ExperimentConfig:
    return ExperimentConfig(
        experiment_id=experiment_id,
        title=title,
        topology=topology,
        model=TransmissionModel.SINGLE_PATH,
        series=(
            SERIES_LP_BOUND,
            SERIES_HEURISTIC,
            SERIES_INTERVAL_LP_BOUND,
            SERIES_INTERVAL_HEURISTIC,
            SERIES_JAHANJOU,
        ),
        weighted=True,
        num_coflows=num_coflows,
        epsilon=0.2,
        notes="Time-indexed vs interval-indexed LP (ε=0.2) and the Jahanjou "
        "et al. baseline (ε=0.5436 inside the rounding).",
    )


def _freepath_unweighted(experiment_id: str, topology: str, title: str, num_coflows: int) -> ExperimentConfig:
    return ExperimentConfig(
        experiment_id=experiment_id,
        title=title,
        topology=topology,
        model=TransmissionModel.FREE_PATH,
        series=(
            SERIES_LP_BOUND,
            SERIES_HEURISTIC,
            SERIES_BEST_LAMBDA,
            SERIES_AVERAGE_LAMBDA,
            SERIES_TERRA,
        ),
        weighted=False,
        num_coflows=num_coflows,
        notes="Unweighted comparison against Terra's offline SRTF algorithm.",
    )


def _build_experiments() -> Dict[str, ExperimentConfig]:
    experiments: Dict[str, ExperimentConfig] = {}

    experiments["fig06"] = _freepath_weighted(
        "fig06", "swan", "Free path model on SWAN (weighted)", num_coflows=12
    )
    experiments["fig07"] = _freepath_weighted(
        "fig07", "gscale", "Free path model on G-Scale (weighted)", num_coflows=10
    )
    experiments["fig08"] = ExperimentConfig(
        experiment_id="fig08",
        title="Impact of the time-interval parameter ε (free path, SWAN, FB)",
        topology="swan",
        model=TransmissionModel.FREE_PATH,
        workloads=("FB",),
        series=(SERIES_INTERVAL_LP_BOUND, SERIES_INTERVAL_HEURISTIC),
        weighted=True,
        num_coflows=12,
        epsilon_values=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        notes="Larger ε shrinks the LP but degrades both the bound and the "
        "heuristic (paper Figure 8).",
    )
    experiments["fig09"] = _singlepath_weighted(
        "fig09", "swan", "Single path model on SWAN (weighted)", num_coflows=12
    )
    experiments["fig10"] = _singlepath_weighted(
        "fig10", "gscale", "Single path model on G-Scale (weighted)", num_coflows=10
    )
    experiments["fig11"] = _freepath_unweighted(
        "fig11", "swan", "Free path model on SWAN (unweighted, vs Terra)", num_coflows=12
    )
    experiments["fig12"] = _freepath_unweighted(
        "fig12", "gscale", "Free path model on G-Scale (unweighted, vs Terra)", num_coflows=10
    )

    # ----------------------------- ablations --------------------------- #
    experiments["ablation_approximation"] = ExperimentConfig(
        experiment_id="ablation_approximation",
        title="Empirical check of the 2-approximation (Theorem 4.4)",
        topology="swan",
        model=TransmissionModel.FREE_PATH,
        workloads=BENCHMARK_NAMES,
        series=(
            SERIES_LP_BOUND,
            SERIES_AVERAGE_LAMBDA,
            SERIES_BEST_LAMBDA,
            SERIES_HEURISTIC,
        ),
        weighted=True,
        num_coflows=8,
        num_lambda_samples=20,
        notes="Average-λ objective must stay below 2x the LP bound.",
    )
    experiments["ablation_compaction"] = ExperimentConfig(
        experiment_id="ablation_compaction",
        title="Effect of idle-slot compaction on Stretch (Section 6.1)",
        topology="swan",
        model=TransmissionModel.FREE_PATH,
        workloads=("TPC-DS", "FB"),
        series=(
            SERIES_LP_BOUND,
            SERIES_AVERAGE_LAMBDA,
            SERIES_STRETCH_NO_COMPACTION,
        ),
        weighted=True,
        num_coflows=10,
        num_lambda_samples=10,
        notes="Average-λ Stretch with and without moving slots into idle "
        "slots.",
    )
    experiments["ablation_baselines"] = ExperimentConfig(
        experiment_id="ablation_baselines",
        title="LP-based scheduling vs simple greedy heuristics",
        topology="swan",
        model=TransmissionModel.FREE_PATH,
        workloads=("BigBench", "FB"),
        series=(
            SERIES_LP_BOUND,
            SERIES_HEURISTIC,
            SERIES_SINCRONIA,
            SERIES_FIFO,
            SERIES_WSJF,
        ),
        weighted=True,
        num_coflows=10,
        notes="Extra baselines (Sincronia-style BSSI ordering, FIFO, weighted "
        "SJF) not present in the paper.",
    )
    return experiments


#: All experiment configurations keyed by experiment id.
ALL_EXPERIMENTS: Dict[str, ExperimentConfig] = _build_experiments()


def get_experiment(experiment_id: str) -> ExperimentConfig:
    """Look up an experiment configuration by id (e.g. ``"fig06"``)."""
    try:
        return ALL_EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{sorted(ALL_EXPERIMENTS)}"
        ) from exc


def list_experiments() -> Tuple[str, ...]:
    """All known experiment ids in a stable order."""
    return tuple(sorted(ALL_EXPERIMENTS))
