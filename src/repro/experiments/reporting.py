"""Text rendering of experiment results.

The paper's figures are bar charts; this module prints the same numbers as
aligned text tables (one row per algorithm series, one column per workload)
plus the qualitative "shape checks" the reproduction cares about (who wins,
by roughly what factor).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import figures as F
from repro.experiments.runner import ExperimentResult

#: Human-readable labels for the algorithm series (matching the paper's legends).
SERIES_LABELS: Dict[str, str] = {
    F.SERIES_LP_BOUND: "Time indexed LP (lower bound)",
    F.SERIES_HEURISTIC: "Heuristic (lambda = 1.0)",
    F.SERIES_BEST_LAMBDA: "Best lambda",
    F.SERIES_AVERAGE_LAMBDA: "Average lambda",
    F.SERIES_INTERVAL_LP_BOUND: "Time interval LP (lower bound)",
    F.SERIES_INTERVAL_HEURISTIC: "Interval heuristic (lambda = 1.0)",
    F.SERIES_JAHANJOU: "Jahanjou et al.",
    F.SERIES_TERRA: "Terra",
    F.SERIES_FIFO: "FIFO",
    F.SERIES_WSJF: "Weighted SJF",
    F.SERIES_STRETCH_NO_COMPACTION: "Average lambda (no compaction)",
    F.SERIES_SINCRONIA: "Sincronia-style BSSI",
    "lp_variables": "LP variables",
    "lp_solve_seconds": "LP solve seconds",
}


def _format_value(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def format_result_table(
    result: ExperimentResult,
    *,
    series: Optional[Sequence[str]] = None,
    include_ratios: bool = True,
) -> str:
    """Render an experiment result as an aligned text table.

    One column per workload (or sweep point), one row per series; optionally
    followed by ratio-to-LP-bound rows, which is how the reproduction is
    compared against the paper (absolute values depend on the synthetic
    trace scale, ratios do not).
    """
    config = result.config
    columns = list(result.values.keys())
    if series is None:
        requested: List[str] = []
        for s in config.series:
            if any(s in result.values[c] for c in columns):
                requested.append(s)
        # Include any extra series the runner recorded (e.g. LP sizes).
        for c in columns:
            for s in result.values[c]:
                if s not in requested:
                    requested.append(s)
    else:
        requested = list(series)

    label_width = max(
        [len(SERIES_LABELS.get(s, s)) for s in requested] + [len("series")]
    )
    col_width = max([len(c) for c in columns] + [12])

    lines = []
    lines.append(f"{config.experiment_id}: {config.title}")
    lines.append(f"objective: {config.objective_name} (less is better)")
    header = "series".ljust(label_width) + " | " + " | ".join(
        c.rjust(col_width) for c in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for s in requested:
        label = SERIES_LABELS.get(s, s)
        row = [label.ljust(label_width)]
        cells = []
        for c in columns:
            value = result.values[c].get(s)
            cells.append(
                _format_value(value).rjust(col_width) if value is not None else "-".rjust(col_width)
            )
        lines.append(row[0] + " | " + " | ".join(cells))

    if include_ratios and F.SERIES_LP_BOUND in requested:
        lines.append("")
        lines.append("ratio to the LP lower bound:")
        for s in requested:
            if s == F.SERIES_LP_BOUND or s not in SERIES_LABELS:
                continue
            ratios = result.ratio_to(s, F.SERIES_LP_BOUND)
            if not ratios:
                continue
            label = SERIES_LABELS.get(s, s)
            cells = [
                f"{ratios[c]:.2f}x".rjust(col_width) if c in ratios else "-".rjust(col_width)
                for c in columns
            ]
            lines.append(label.ljust(label_width) + " | " + " | ".join(cells))
    return "\n".join(lines)


def summarize_shape_checks(result: ExperimentResult) -> Dict[str, bool]:
    """Qualitative checks of the paper's findings for one experiment.

    Returns a dict of named boolean checks; the benchmark harness asserts on
    these (EXPERIMENTS.md records the outcomes):

    * ``lp_is_lower_bound`` — every algorithm series is at least the LP bound;
    * ``heuristic_close_to_bound`` — the λ=1 heuristic is within 2x of the
      bound (the paper observes it is typically very close);
    * ``average_lambda_within_2x`` — the expected Stretch objective respects
      the Theorem 4.4 guarantee (with slack for slotting effects, which the
      theorem's continuous analysis does not pay);
    * ``heuristic_beats_jahanjou`` — single path experiments: our heuristic
      improves significantly on the Jahanjou et al. baseline.
    """
    checks: Dict[str, bool] = {}
    values = result.values
    if not values:
        return checks

    def all_columns(predicate) -> bool:
        applicable = [c for c in values if predicate_applicable(c, predicate)]
        return all(predicate(values[c]) for c in applicable) if applicable else True

    def predicate_applicable(column: str, predicate) -> bool:
        try:
            predicate(values[column])
            return True
        except KeyError:
            return False

    # Only slotted schedules are bounded below by the slotted LP; the
    # continuous-time baselines (Terra, FIFO, weighted SJF) may dip slightly
    # below it because they are not restricted to slot boundaries.
    checks["lp_is_lower_bound"] = all_columns(
        lambda row: all(
            row[F.SERIES_LP_BOUND] <= row[s] * (1 + 1e-6)
            for s in row
            if s in (
                F.SERIES_HEURISTIC,
                F.SERIES_BEST_LAMBDA,
                F.SERIES_AVERAGE_LAMBDA,
                F.SERIES_JAHANJOU,
            )
        )
    )
    if any(F.SERIES_HEURISTIC in row for row in values.values()):
        checks["heuristic_close_to_bound"] = all_columns(
            lambda row: row[F.SERIES_HEURISTIC] <= 2.0 * row[F.SERIES_LP_BOUND]
        )
    if any(F.SERIES_AVERAGE_LAMBDA in row for row in values.values()):
        checks["average_lambda_within_2x"] = all_columns(
            lambda row: row[F.SERIES_AVERAGE_LAMBDA]
            <= 2.0 * row[F.SERIES_LP_BOUND] + _slotting_slack(row)
        )
    if any(F.SERIES_JAHANJOU in row for row in values.values()):
        checks["heuristic_beats_jahanjou"] = all_columns(
            lambda row: row[F.SERIES_HEURISTIC] < row[F.SERIES_JAHANJOU]
        )
    if any(F.SERIES_TERRA in row for row in values.values()):
        checks["terra_competitive"] = all_columns(
            lambda row: row[F.SERIES_TERRA] <= 1.5 * row[F.SERIES_HEURISTIC]
        )
    return checks


def _slotting_slack(row: Dict[str, float]) -> float:
    """Additive slack for the 2x check.

    Theorem 4.4's bound is on the continuous-time LP; the implementation pays
    up to one extra slot per coflow because completion times are rounded up
    to slot boundaries.  The slack term is small relative to the objectives
    of the benchmark workloads and only matters for tiny instances.
    """
    return 0.0
