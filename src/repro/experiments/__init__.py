"""Experiment harness: regenerate every figure of the paper's evaluation.

* :mod:`repro.experiments.figures` — one :class:`ExperimentConfig` per paper
  figure (Figs. 6–12) plus the ablation studies listed in DESIGN.md.
* :mod:`repro.experiments.runner` — runs a configuration and collects the
  per-workload series values (LP bound, heuristic, best λ, average λ,
  Terra, Jahanjou et al., ...).
* :mod:`repro.experiments.reporting` — renders results as aligned text
  tables of the same rows/series the paper plots.
* :mod:`repro.experiments.sweep` — resumable sharded sweeps over the
  persistent result store (:mod:`repro.store`), behind ``repro sweep``.
"""

from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    ExperimentConfig,
    get_experiment,
    list_experiments,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.reporting import format_result_table, summarize_shape_checks
from repro.experiments.sweep import (
    InstanceSpec,
    SweepResult,
    SweepSpec,
    run_sweep,
    sweep_status,
)

__all__ = [
    "InstanceSpec",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    "sweep_status",
    "ExperimentConfig",
    "ALL_EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "ExperimentResult",
    "run_experiment",
    "format_result_table",
    "summarize_shape_checks",
]
