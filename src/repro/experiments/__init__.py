"""Experiment harness: regenerate every figure of the paper's evaluation.

* :mod:`repro.experiments.figures` — one :class:`ExperimentConfig` per paper
  figure (Figs. 6–12) plus the ablation studies listed in DESIGN.md.
* :mod:`repro.experiments.runner` — runs a configuration and collects the
  per-workload series values (LP bound, heuristic, best λ, average λ,
  Terra, Jahanjou et al., ...).
* :mod:`repro.experiments.reporting` — renders results as aligned text
  tables of the same rows/series the paper plots.
"""

from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    ExperimentConfig,
    get_experiment,
    list_experiments,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.reporting import format_result_table, summarize_shape_checks

__all__ = [
    "ExperimentConfig",
    "ALL_EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "ExperimentResult",
    "run_experiment",
    "format_result_table",
    "summarize_shape_checks",
]
