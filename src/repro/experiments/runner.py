"""Experiment runner: from an :class:`ExperimentConfig` to result tables.

The runner generates one workload instance per (experiment, benchmark) pair
with a seed derived from the experiment seed, solves the time-indexed LP
once, and evaluates every requested algorithm series on top of it.
Single-algorithm series dispatch through the unified :mod:`repro.api`
registry (reusing the shared LP solution wherever it applies); the
λ-sampling series keep bespoke handling because "Best λ" and "Average λ"
share one evaluation, exactly as the paper's implementation does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import SolverConfig
from repro.coflow.instance import CoflowInstance
from repro.core.heuristic import lp_heuristic_schedule
from repro.core.stretch import evaluate_stretch
from repro.core.timeindexed import CoflowLPSolution, solve_time_indexed_lp
from repro.experiments import figures as F
from repro.experiments.figures import ExperimentConfig
from repro.lp.solver import solver_cache
from repro.network.topologies import named_topology
from repro.store import ResultStore, cached_solve
from repro.utils.rng import as_generator
from repro.utils.timing import Stopwatch
from repro.workloads.generator import WorkloadSpec, generate_instance


@dataclass
class ExperimentResult:
    """Result of one experiment run.

    ``values`` maps ``workload -> series -> objective`` (weighted or total
    completion time, per the configuration).  For the ε-sweep experiment the
    "workload" keys are ``"eps=<value>"`` strings, matching the x-axis of
    the paper's Figure 8.
    """

    config: ExperimentConfig
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def experiment_id(self) -> str:
        return self.config.experiment_id

    def series_values(self, series: str) -> Dict[str, float]:
        """The named series across all workloads / sweep points."""
        return {
            workload: entries[series]
            for workload, entries in self.values.items()
            if series in entries
        }

    def ratio_to(self, series: str, reference: str) -> Dict[str, float]:
        """Per-workload ratio of one series to another (e.g. vs the LP bound)."""
        ratios = {}
        for workload, entries in self.values.items():
            if series in entries and reference in entries and entries[reference] > 0:
                ratios[workload] = entries[series] / entries[reference]
        return ratios


def _objective(config: ExperimentConfig, weighted_value: float, total_value: float) -> float:
    return weighted_value if config.weighted else total_value


def _instance_for(
    config: ExperimentConfig, workload: str, scale: float, seed: int
) -> CoflowInstance:
    graph = named_topology(config.topology)
    num_coflows = max(2, int(round(config.num_coflows * scale)))
    spec = WorkloadSpec(
        profile=workload,
        num_coflows=num_coflows,
        weighted=config.weighted,
        demand_scale=config.demand_scale,
        seed=seed,
        name=f"{config.experiment_id}-{workload}",
    )
    return generate_instance(graph, spec, model=config.model, rng=seed)


def _evaluate_series(
    config: ExperimentConfig,
    instance: CoflowInstance,
    lp_solution: CoflowLPSolution,
    rng: np.random.Generator,
    watch: Stopwatch,
    store: Optional["ResultStore"] = None,
) -> Dict[str, float]:
    """Compute every requested series for one workload instance.

    With a *store*, the deterministic single-algorithm series go through
    :func:`repro.store.cached_solve`: a repeated experiment run reads them
    back instead of re-solving.  The λ-sampling series are *not* cached —
    they draw from the experiment's shared random stream, and skipping a
    draw would shift every later sample (breaking run-to-run equality).
    """
    out: Dict[str, float] = {}
    series = set(config.series)

    if F.SERIES_LP_BOUND in series:
        out[F.SERIES_LP_BOUND] = (
            lp_solution.objective
            if config.weighted
            else float(lp_solution.completion_times.sum())
        )
    # Single-algorithm series all dispatch through the unified solver API;
    # the shared uniform-grid LP solution is reused wherever it applies.
    solver_config = SolverConfig(verify=False)
    for series_name, algorithm in F.SERIES_TO_ALGORITHM.items():
        if series_name not in series:
            continue
        with watch.measure(series_name):
            report = cached_solve(
                instance,
                algorithm,
                store=store,
                config=solver_config,
                lp_solution=lp_solution,
            )
        out[series_name] = _objective(
            config, report.weighted_completion_time, report.total_completion_time
        )
    needs_sampling = series & {F.SERIES_BEST_LAMBDA, F.SERIES_AVERAGE_LAMBDA}
    if needs_sampling:
        with watch.measure("stretch_sampling"):
            evaluation = evaluate_stretch(
                lp_solution, num_samples=config.num_lambda_samples, rng=rng
            )
        if config.weighted:
            objectives = evaluation.objectives
        else:
            objectives = np.array(
                [r.schedule.total_completion_time() for r in evaluation.results]
            )
        if F.SERIES_BEST_LAMBDA in series:
            out[F.SERIES_BEST_LAMBDA] = float(objectives.min())
        if F.SERIES_AVERAGE_LAMBDA in series:
            out[F.SERIES_AVERAGE_LAMBDA] = float(objectives.mean())
    if F.SERIES_STRETCH_NO_COMPACTION in series:
        with watch.measure("stretch_no_compaction"):
            evaluation = evaluate_stretch(
                lp_solution,
                num_samples=config.num_lambda_samples,
                rng=rng,
                compact=False,
            )
        objectives = (
            evaluation.objectives
            if config.weighted
            else np.array(
                [r.schedule.total_completion_time() for r in evaluation.results]
            )
        )
        out[F.SERIES_STRETCH_NO_COMPACTION] = float(objectives.mean())
    needs_interval = series & {
        F.SERIES_INTERVAL_LP_BOUND,
        F.SERIES_INTERVAL_HEURISTIC,
    }
    if needs_interval and not config.epsilon_values:
        with watch.measure("interval_lp"):
            interval_solution = solve_time_indexed_lp(
                instance, epsilon=config.epsilon
            )
        if F.SERIES_INTERVAL_LP_BOUND in series:
            out[F.SERIES_INTERVAL_LP_BOUND] = (
                interval_solution.objective
                if config.weighted
                else float(interval_solution.completion_times.sum())
            )
        if F.SERIES_INTERVAL_HEURISTIC in series:
            schedule = lp_heuristic_schedule(interval_solution)
            out[F.SERIES_INTERVAL_HEURISTIC] = _objective(
                config,
                schedule.weighted_completion_time(),
                schedule.total_completion_time(),
            )
    return out


def run_experiment(
    config: ExperimentConfig,
    *,
    scale: float = 1.0,
    rng_seed: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> ExperimentResult:
    """Run one experiment configuration and collect all series.

    Parameters
    ----------
    config:
        The experiment to run (see
        :data:`repro.experiments.figures.ALL_EXPERIMENTS`).
    scale:
        Multiplier on the number of coflows per workload; ``1.0`` is the
        repository default, larger values approach the paper's original
        scale at the cost of much longer LP solves.
    rng_seed:
        Seed for the λ-sampling randomness (defaults to the config seed).
    store:
        Optional persistent :class:`~repro.store.ResultStore`; the
        deterministic per-algorithm series then read/write through it, so
        repeated experiment runs skip already-solved series (see
        :func:`_evaluate_series`).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    watch = Stopwatch()
    result = ExperimentResult(config=config)
    rng = as_generator(config.seed if rng_seed is None else rng_seed)
    start = time.perf_counter()

    # One warm-start cache per experiment: identical LPs requested twice
    # (coincident geometric grids in the ε sweep, interval series re-solving
    # the default-ε LP, ...) return the memoized solution.
    with solver_cache():
        _run_experiment_body(config, scale, watch, result, rng, store)

    result.timings = watch.as_dict()
    result.timings["total"] = time.perf_counter() - start
    return result


def _run_experiment_body(
    config: ExperimentConfig,
    scale: float,
    watch: Stopwatch,
    result: "ExperimentResult",
    rng,
    store: Optional[ResultStore] = None,
) -> None:
    if config.epsilon_values:
        # ε sweep (Fig. 8): one workload, one column per ε value.
        workload = config.workloads[0]
        instance = _instance_for(config, workload, scale, config.seed)
        for eps in config.epsilon_values:
            with watch.measure(f"lp[eps={eps:g}]"):
                solution = solve_time_indexed_lp(instance, epsilon=eps)
            entries: Dict[str, float] = {}
            if F.SERIES_INTERVAL_LP_BOUND in config.series:
                entries[F.SERIES_INTERVAL_LP_BOUND] = (
                    solution.objective
                    if config.weighted
                    else float(solution.completion_times.sum())
                )
            if F.SERIES_INTERVAL_HEURISTIC in config.series:
                schedule = lp_heuristic_schedule(solution)
                entries[F.SERIES_INTERVAL_HEURISTIC] = _objective(
                    config,
                    schedule.weighted_completion_time(),
                    schedule.total_completion_time(),
                )
            entries["lp_variables"] = float(
                solution.lp_result.metadata.get("variables", 0)
            )
            entries["lp_solve_seconds"] = float(solution.lp_result.solve_seconds)
            result.values[f"eps={eps:g}"] = entries
    else:
        for i, workload in enumerate(config.workloads):
            seed = config.seed + 1000 * i
            instance = _instance_for(config, workload, scale, seed)
            with watch.measure(f"lp[{workload}]"):
                lp_solution = solve_time_indexed_lp(instance)
            result.values[workload] = _evaluate_series(
                config, instance, lp_solution, rng, watch, store
            )
            result.metadata[workload] = {
                "num_coflows": instance.num_coflows,
                "num_flows": instance.num_flows,
                "lp_size": lp_solution.lp_result.metadata.get("lp_size"),
            }


def run_all_figures(
    *, scale: float = 1.0, experiment_ids: Optional[List[str]] = None
) -> Dict[str, ExperimentResult]:
    """Run every figure experiment (used by the ``examples/reproduce_figures.py`` script)."""
    from repro.experiments.figures import ALL_EXPERIMENTS

    ids = experiment_ids or [k for k in sorted(ALL_EXPERIMENTS) if k.startswith("fig")]
    return {eid: run_experiment(ALL_EXPERIMENTS[eid], scale=scale) for eid in ids}
