"""Export experiment results to CSV / JSON.

The reporting module renders human-readable tables; this module writes the
same data in machine-readable form so results can be archived, diffed
between runs, or plotted with external tooling.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List

from repro.experiments.runner import ExperimentResult
from repro.utils.io import atomic_write_json, atomic_writer


def result_to_records(result: ExperimentResult) -> List[Dict[str, object]]:
    """Flatten a result into one record per (workload, series) pair."""
    records: List[Dict[str, object]] = []
    for workload, row in result.values.items():
        for series, value in row.items():
            records.append(
                {
                    "experiment_id": result.config.experiment_id,
                    "topology": result.config.topology,
                    "model": result.config.model.value,
                    "objective": result.config.objective_name,
                    "workload": workload,
                    "series": series,
                    "value": float(value),
                }
            )
    return records


def write_csv(results: Iterable[ExperimentResult], path: str | Path) -> int:
    """Write one CSV row per (experiment, workload, series); returns row count."""
    path = Path(path)
    records: List[Dict[str, object]] = []
    for result in results:
        records.extend(result_to_records(result))
    fieldnames = [
        "experiment_id",
        "topology",
        "model",
        "objective",
        "workload",
        "series",
        "value",
    ]
    with atomic_writer(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(record)
    return len(records)


def write_json(results: Iterable[ExperimentResult], path: str | Path) -> None:
    """Write a JSON document with values, timings and configuration echoes."""
    payload = []
    for result in results:
        payload.append(
            {
                "experiment_id": result.config.experiment_id,
                "title": result.config.title,
                "topology": result.config.topology,
                "model": result.config.model.value,
                "weighted": result.config.weighted,
                "num_coflows": result.config.num_coflows,
                "seed": result.config.seed,
                "values": result.values,
                "timings": result.timings,
            }
        )
    atomic_write_json(path, payload, sort_keys=True)


def read_json(path: str | Path) -> List[dict]:
    """Read back a document written by :func:`write_json`."""
    return json.loads(Path(path).read_text())
