"""Resumable, sharded parameter sweeps over the result store.

The paper's evaluation is a large cross product — instances × algorithms ×
grid/ε settings.  :func:`run_sweep` executes such a cross product as a
sequence of deterministic *chunks* (in the spirit of Bobpp's deterministic
work partitioning for parallel solvers), checkpointing every completed
chunk into a :class:`~repro.store.ResultStore`:

* **kill-and-resume**: an interrupted sweep loses at most the chunk in
  flight; re-running it skips every stored unit and recomputes only the
  rest — to a result set *byte-identical* to an uninterrupted run;
* **warm re-run**: re-running a completed sweep performs **zero** new LP
  solves (every unit is a store hit — asserted by the test suite via the
  store's hit counters);
* **shard independence**: every unit's randomness is a statelessly derived
  child stream (:func:`repro.utils.rng.derive_seed` keyed on the unit's
  *address*, never on execution order), so the shard layout, the chunk
  size, the number of workers and the set of units skipped on resume can
  all change without changing a single result byte.  This is also why the
  orchestrator does not funnel whole chunks through
  :func:`repro.api.solve_many`: its per-batch RNG spawning keys streams on
  batch *composition*, which a resume, by construction, changes.  The
  per-instance execution pattern (one shared uniform-grid LP handed to
  every ``uses_shared_lp`` algorithm under one warm-start cache, worker
  processes over a pool) is the same.

A sweep is described by a :class:`SweepSpec` (JSON-serializable, so the
``repro sweep`` CLI takes a spec file) and addressed by a stable
``sweep_id`` fingerprint; progress is mirrored into a human-readable
manifest under ``<store>/sweeps/<sweep_id>/``.

Failure discipline: every solve attempt runs under the bounded,
deterministically jittered retry policy of :mod:`repro.utils.retry`
(retry delays derive from the unit's *address*, like its seed, so they
too are layout-independent).  A unit that still fails after the policy's
budget becomes a ``failed`` unit: the sweep records the exception under
``runs/failures/<key>.json`` (poison-unit quarantine) and keeps going —
one pathological LP can mark a sweep incomplete, but can never wedge it.
A later successful solve of the same unit clears its record.  The
multi-worker execution mode built on these same chunks lives in
:mod:`repro.fabric`.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import SolverConfig, solve
from repro.api.algorithms import BUILTIN_ALGORITHMS
from repro.api.batch import _effective_start_method
from repro.api.registry import get_algorithm
from repro.coflow.instance import CoflowInstance
from repro.core.timeindexed import solve_time_indexed_lp
from repro.lp.solver import solver_cache
from repro.network.topologies import named_topology
from repro.store import (
    ResultStore,
    canonical_json,
    instance_fingerprint,
    report_to_dict,
    result_key,
    text_key,
)
from repro.utils.io import atomic_write_json
from repro.utils.retry import SOLVER_FAILURES, Backoff, retry_call
from repro.utils.rng import derive_seed
from repro.utils.timing import report_stamp
from repro.workloads.generator import WorkloadSpec, generate_instance

logger = logging.getLogger(__name__)

SWEEP_SCHEMA = 1


# --------------------------------------------------------------------------- #
# sweep specification
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class InstanceSpec:
    """One workload of a sweep: either generated or replayed from a trace.

    Generated instances are addressed by their generation parameters (the
    usual :class:`~repro.workloads.generator.WorkloadSpec` knobs); trace
    instances by a JSON file written by ``repro generate`` /
    :meth:`CoflowInstance.save_json`.  Either way the *store key* is
    derived from the built instance's content, so provenance never splits
    cache entries.
    """

    topology: str = "swan"
    profile: str = "FB"
    num_coflows: int = 4
    model: str = "free_path"
    seed: int = 0
    demand_scale: float = 1.0
    weighted: bool = True
    name: Optional[str] = None
    trace: Optional[str] = None

    def build(self) -> CoflowInstance:
        if self.trace is not None:
            return CoflowInstance.load_json(self.trace)
        graph = named_topology(self.topology)
        spec = WorkloadSpec(
            profile=self.profile,
            num_coflows=self.num_coflows,
            weighted=self.weighted,
            demand_scale=self.demand_scale,
            seed=self.seed,
            name=self.name,
        )
        return generate_instance(graph, spec, model=self.model, rng=self.seed)

    def label(self) -> str:
        if self.trace is not None:
            return Path(self.trace).stem
        return self.name or (
            f"{self.profile}/{self.topology}/{self.model}"
            f"/n{self.num_coflows}/s{self.seed}"
        )

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "InstanceSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown InstanceSpec fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


#: SolverConfig fields a sweep spec may set (the ε axis and per-unit rng are
#: managed by the orchestrator itself).
_SPEC_CONFIG_FIELDS = (
    "num_slots",
    "slot_length",
    "num_samples",
    "solver_method",
    "compact",
    "verify",
)


@dataclass(frozen=True)
class SweepSpec:
    """The full description of one sweep (JSON-round-trippable).

    Attributes
    ----------
    name:
        Human label (also names the manifest).
    instances:
        The workload axis.
    algorithms:
        The algorithm axis (validated against the registry up front).
    epsilons:
        The grid axis: each entry is an ``epsilon`` for the geometric
        interval grid, or ``None`` for the default uniform grid.
    config:
        Base solver configuration.  Its ``rng`` must be ``None``: every
        unit receives its own statelessly derived seed (see module
        docstring), keyed on ``seed``.
    seed:
        Root seed of the per-unit stream derivation.
    num_shards:
        Number of deterministic chunks the unit list is split into — the
        checkpoint granularity.  More shards → finer-grained resume.
    """

    name: str
    instances: Tuple[InstanceSpec, ...]
    algorithms: Tuple[str, ...]
    epsilons: Tuple[Optional[float], ...] = (None,)
    config: SolverConfig = field(default_factory=SolverConfig)
    seed: int = 0
    num_shards: int = 4

    def __post_init__(self) -> None:
        if not self.instances:
            raise ValueError("a sweep needs at least one instance")
        if not self.algorithms:
            raise ValueError("a sweep needs at least one algorithm")
        if not self.epsilons:
            raise ValueError("epsilons must not be empty (use (None,))")
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if self.config.rng is not None:
            raise ValueError(
                "SweepSpec.config.rng must be None; per-unit seeds are "
                "derived from SweepSpec.seed so shard layout cannot change "
                "results"
            )

    def sweep_id(self) -> str:
        """Stable fingerprint addressing this sweep's manifest.

        ``num_shards`` is excluded: sharding is checkpoint granularity,
        never part of the sweep's identity — editing it in the spec file
        must keep resuming the same manifest.
        """
        identity = {
            key: value
            for key, value in self.to_dict().items()
            if key != "num_shards"
        }
        return text_key("sweep", canonical_json(identity))

    def to_dict(self) -> Dict:
        return {
            "schema": SWEEP_SCHEMA,
            "name": self.name,
            "instances": [spec.to_dict() for spec in self.instances],
            "algorithms": list(self.algorithms),
            "epsilons": list(self.epsilons),
            "config": {
                key: getattr(self.config, key) for key in _SPEC_CONFIG_FIELDS
            },
            "seed": self.seed,
            "num_shards": self.num_shards,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepSpec":
        config_data = dict(data.get("config") or {})
        unknown = set(config_data) - set(_SPEC_CONFIG_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown sweep config fields {sorted(unknown)}; "
                f"expected a subset of {sorted(_SPEC_CONFIG_FIELDS)}"
            )
        return cls(
            name=str(data.get("name", "sweep")),
            instances=tuple(
                InstanceSpec.from_dict(entry) for entry in data["instances"]
            ),
            algorithms=tuple(data["algorithms"]),
            epsilons=tuple(data.get("epsilons") or [None]),
            config=SolverConfig(**config_data),
            seed=int(data.get("seed", 0)),
            num_shards=int(data.get("num_shards", 4)),
        )

    @classmethod
    def load_json(cls, path: str | Path) -> "SweepSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save_json(self, path: str | Path) -> None:
        atomic_write_json(path, self.to_dict())


# --------------------------------------------------------------------------- #
# units and sharding
# --------------------------------------------------------------------------- #
@dataclass
class SweepUnit:
    """One cell of the cross product, with its derived seed and store key."""

    index: int
    instance_index: int
    algorithm: str
    epsilon: Optional[float]
    rng_seed: Optional[int]
    key: str
    status: str = "pending"  # pending | hit | solved | failed
    objective: Optional[float] = None

    def describe(self) -> Dict:
        return {
            "index": self.index,
            "instance_index": self.instance_index,
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "rng_seed": self.rng_seed,
            "key": self.key,
            "status": self.status,
            "objective": self.objective,
        }


def _unit_config(spec: SweepSpec, unit_seed: Optional[int], epsilon) -> SolverConfig:
    return spec.config.replace(epsilon=epsilon, rng=unit_seed)


def enumerate_units(
    spec: SweepSpec, instances: Sequence[CoflowInstance]
) -> List[SweepUnit]:
    """The sweep's unit list, in canonical (ε, instance, algorithm) order.

    Randomized algorithms get a seed derived statelessly from the unit's
    *address* ``(spec.seed, "sweep-unit", instance-content-fingerprint,
    algorithm, ε)`` — never from execution order, and never from the
    instance's position in the spec (inserting or reordering instances
    must not orphan previously solved randomized units).  Deterministic
    algorithms get ``None`` so that sweeps with different root seeds still
    share their cache entries.
    """
    units: List[SweepUnit] = []
    fingerprints = [instance_fingerprint(instance) for instance in instances]
    for epsilon in spec.epsilons:
        eps_label = "none" if epsilon is None else repr(float(epsilon))
        for i, (ispec, instance) in enumerate(zip(spec.instances, instances)):
            for algorithm in spec.algorithms:
                info = get_algorithm(algorithm)
                if not info.supports(instance.model):
                    continue
                unit_seed = (
                    derive_seed(
                        spec.seed,
                        "sweep-unit",
                        fingerprints[i],
                        algorithm,
                        eps_label,
                    )
                    if info.randomized
                    else None
                )
                cfg = _unit_config(spec, unit_seed, epsilon)
                units.append(
                    SweepUnit(
                        index=len(units),
                        instance_index=i,
                        algorithm=algorithm,
                        epsilon=epsilon,
                        rng_seed=unit_seed,
                        key=result_key(instance, algorithm, cfg),
                    )
                )
    if not units:
        raise ValueError(
            "the sweep cross product is empty: no requested algorithm "
            "supports any instance's transmission model"
        )
    return units


def shard_units(units: Sequence[SweepUnit], num_shards: int) -> List[List[SweepUnit]]:
    """Split *units* into at most *num_shards* contiguous, non-empty chunks.

    Deterministic in the unit order alone; because unit seeds are derived
    from unit addresses, *any* layout produces identical results — this one
    keeps the units of one instance adjacent so chunk workers share LP
    solutions as often as possible.
    """
    count = min(max(num_shards, 1), len(units))
    base, extra = divmod(len(units), count)
    chunks: List[List[SweepUnit]] = []
    start = 0
    for shard in range(count):
        size = base + (1 if shard < extra else 0)
        chunks.append(list(units[start : start + size]))
        start += size
    return chunks


# --------------------------------------------------------------------------- #
# chunk execution
# --------------------------------------------------------------------------- #
def _failure_record(key: str, algorithm: str, exc: BaseException, attempts: int) -> Dict:
    """The ``runs/failures/`` quarantine record for a poison unit.

    Stamps and tracebacks live here, outside the content-addressed object
    space, so recording a failure never perturbs the byte-identity of
    results.
    """
    return {
        "schema": SWEEP_SCHEMA,
        "key": key,
        "algorithm": algorithm,
        "error": type(exc).__name__,
        "message": str(exc),
        "attempts": attempts,
        "traceback": traceback.format_exc(),
        "created": report_stamp(),
    }


def _solve_unit_tasks(
    instance: CoflowInstance,
    unit_tasks: List[Tuple[str, str, SolverConfig]],
    share_lp: bool,
    backoff: Optional[Backoff],
    chaos=None,
    on_unit: Optional[Callable[[str], None]] = None,
) -> List[Tuple[str, Optional[Dict], Optional[Dict]]]:
    """Solve one instance's units, sharing one uniform-grid LP.

    Mirrors :func:`repro.api.batch._solve_instance_batch`: one shared LP
    for every ``uses_shared_lp`` algorithm, everything under one warm-start
    cache — but each unit carries its *own* config (its derived seed), and
    the shared solution is handed *only* to ``uses_shared_lp`` algorithms.
    Both choices serve the same invariant: a unit's inputs (and therefore
    its stored bytes) depend on its address alone, never on which other
    units happen to share its chunk or group.  This is also why
    ``online=True`` units never receive the shared clairvoyant LP here
    (their stored ``lower_bound`` is ``None``), although ``solve_many``
    attaches it: whether a group happens to contain a shared-LP consumer
    changes across resumes, and a bound that appears or disappears with
    group composition would break byte-identical resume.

    Every attempt runs under *backoff* (the default policy when ``None``);
    transient :data:`SOLVER_FAILURES` are retried with delays derived from
    the unit's address.  Each element of the returned list is
    ``(key, payload, failure)`` with exactly one of payload/failure set.
    If the shared LP itself fails terminally, its consumers fall back to
    solving their own LP (same grid, same deterministic solver, same
    bytes) rather than failing wholesale.  *chaos* is an optional
    :class:`repro.fabric.chaos.ChaosInjector` (duck-typed here to keep
    this module free of fabric imports); *on_unit* is called with each
    unit's key as it resolves — the fabric worker's heartbeat hook.
    """
    policy = backoff if backoff is not None else Backoff()
    results: List[Tuple[str, Optional[Dict], Optional[Dict]]] = []
    with solver_cache():
        shared = None
        if share_lp and any(
            get_algorithm(algorithm).uses_shared_lp
            for _, algorithm, _ in unit_tasks
        ):
            first_key, _, first_cfg = unit_tasks[0]

            def shared_attempt(attempt: int):
                return solve_time_indexed_lp(
                    instance,
                    grid=first_cfg.grid,
                    num_slots=first_cfg.num_slots,
                    slot_length=first_cfg.slot_length,
                    epsilon=first_cfg.epsilon,
                    solver_method=first_cfg.solver_method,
                )

            try:
                shared = retry_call(
                    shared_attempt,
                    backoff=policy,
                    path=("sweep-shared-lp", first_key),
                )
            except SOLVER_FAILURES:
                shared = None  # consumers fall back to their own LP below
        for key, algorithm, cfg in unit_tasks:

            def unit_attempt(
                attempt: int, key=key, algorithm=algorithm, cfg=cfg
            ) -> Dict:
                if chaos is not None:
                    chaos.before_solve(key, attempt)
                lp = shared if get_algorithm(algorithm).uses_shared_lp else None
                report = solve(instance, algorithm, config=cfg, lp_solution=lp)
                return report_to_dict(report)

            try:
                payload = retry_call(
                    unit_attempt, backoff=policy, path=("sweep-unit", key)
                )
                results.append((key, payload, None))
            except SOLVER_FAILURES as exc:
                results.append(
                    (key, None, _failure_record(key, algorithm, exc, policy.retries + 1))
                )
            if on_unit is not None:
                on_unit(key)
    return results


def _run_instance_group(
    task: Tuple[
        CoflowInstance, List[Tuple[str, str, SolverConfig]], bool, Optional[Backoff], object
    ],
) -> List[Tuple[str, Optional[Dict], Optional[Dict]]]:
    """Pool worker: unpack one task tuple for :func:`_solve_unit_tasks`.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can pickle
    it; the backoff policy and chaos injector ride along in the task tuple
    (both are plain dataclasses, so they pickle).
    """
    instance, unit_tasks, share_lp, backoff, chaos = task
    return _solve_unit_tasks(instance, unit_tasks, share_lp, backoff, chaos)


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` invocation."""

    spec: SweepSpec
    sweep_id: str
    units: List[SweepUnit]
    reports: Dict[str, Dict]  # key -> serialized report surface
    hits: int = 0
    solved: int = 0
    pending: int = 0
    failed: int = 0
    chunks_total: int = 0
    chunks_run: int = 0
    seconds: float = 0.0

    @property
    def complete(self) -> bool:
        return self.pending == 0 and self.failed == 0

    def summary(self) -> Dict:
        return {
            "schema": SWEEP_SCHEMA,
            "sweep": self.spec.name,
            "sweep_id": self.sweep_id,
            "units": len(self.units),
            "hits": self.hits,
            "solved": self.solved,
            "pending": self.pending,
            "failed": self.failed,
            "chunks_total": self.chunks_total,
            "chunks_run": self.chunks_run,
            "complete": self.complete,
            "seconds": self.seconds,
        }


def run_sweep(
    spec: SweepSpec,
    store: ResultStore,
    *,
    parallel: Optional[int] = None,
    max_chunks: Optional[int] = None,
    num_shards: Optional[int] = None,
    backoff: Optional[Backoff] = None,
    chaos=None,
) -> SweepResult:
    """Run (or resume) *spec* against *store*.

    Parameters
    ----------
    spec:
        The sweep description.
    store:
        The persistent result store; every completed unit is written here
        and every stored unit is skipped.
    parallel:
        Worker processes per chunk; ``None``/``1`` runs in-process.
    max_chunks:
        Stop after this many chunks have been *executed* (store hits do not
        count a chunk as executed work — a fully cached chunk is free).
        This is the hook the kill-and-resume tests and the CI smoke job use
        to interrupt a sweep at a chunk boundary.
    num_shards:
        Override ``spec.num_shards`` without changing the sweep identity
        (sharding never affects results, so it is not part of the spec
        fingerprint either way).
    backoff:
        Retry policy for transient solver failures (default
        :class:`~repro.utils.retry.Backoff`); units still failing after
        its budget are quarantined as failure records, not raised.
    chaos:
        Optional :class:`repro.fabric.chaos.ChaosInjector` threading fault
        injection through solve attempts and store writes (tests and the
        CI chaos smoke; ``None`` in production use).
    """
    started = time.perf_counter()
    for algorithm in spec.algorithms:
        get_algorithm(algorithm)  # fail fast on typos
    instances = [ispec.build() for ispec in spec.instances]
    units = enumerate_units(spec, instances)
    shards = num_shards if num_shards is not None else spec.num_shards
    chunks = shard_units(units, shards)
    sweep_id = spec.sweep_id()

    result = SweepResult(
        spec=spec,
        sweep_id=sweep_id,
        units=units,
        reports={},
        chunks_total=len(chunks),
    )

    use_processes = parallel is not None and parallel > 1
    if use_processes:
        custom = [a for a in spec.algorithms if a not in BUILTIN_ALGORITHMS]
        if custom and _effective_start_method() != "fork":
            warnings.warn(
                f"custom algorithms {custom} are not importable in "
                f"{_effective_start_method()!r}-started worker processes; "
                "running the sweep serially",
                RuntimeWarning,
                stacklevel=2,
            )
            use_processes = False

    chunk_states: List[str] = ["pending"] * len(chunks)
    executed = 0
    for chunk_index, chunk in enumerate(chunks):
        # Resume pass: everything already in the store is a hit, never
        # recomputed.  Only the remainder becomes solver work.
        missing: List[SweepUnit] = []
        for unit in chunk:
            payload = store.get(unit.key)
            if payload is not None:
                unit.status = "hit"
                unit.objective = payload.get("objective")
                result.reports[unit.key] = payload
                result.hits += 1
            else:
                missing.append(unit)
        if not missing:
            chunk_states[chunk_index] = "complete"
            _checkpoint_manifest(store, sweep_id, spec, chunk_states, result)
            continue
        if max_chunks is not None and executed >= max_chunks:
            result.pending += len(missing)
            continue
        executed += 1

        groups: Dict[Tuple[int, Optional[float]], List[SweepUnit]] = {}
        for unit in missing:
            groups.setdefault((unit.instance_index, unit.epsilon), []).append(unit)
        tasks = [
            (
                instances[instance_index],
                [
                    (
                        unit.key,
                        unit.algorithm,
                        _unit_config(spec, unit.rng_seed, epsilon),
                    )
                    for unit in group
                ],
                True,
                backoff,
                chaos,
            )
            for (instance_index, epsilon), group in groups.items()
        ]
        if use_processes and len(tasks) > 1:
            workers = min(parallel, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as executor:
                grouped = list(executor.map(_run_instance_group, tasks))
        else:
            grouped = [_run_instance_group(task) for task in tasks]

        outcomes = {
            key: (payload, failure)
            for group in grouped
            for key, payload, failure in group
        }
        # Chunk checkpoint: persist every unit of the completed chunk, then
        # the manifest.  A kill before this line loses only this chunk.
        chunk_failed = 0
        for unit in missing:
            payload, failure = outcomes[unit.key]
            if failure is not None:
                store.put_failure(unit.key, failure)
                unit.status = "failed"
                result.failed += 1
                chunk_failed += 1
                continue
            store.put(unit.key, payload, kind="solve-report")
            store.clear_failure(unit.key)
            if chaos is not None:
                chaos.after_store(store.object_path(unit.key), unit.key)
            unit.status = "solved"
            unit.objective = payload.get("objective")
            result.reports[unit.key] = payload
            result.solved += 1
        chunk_states[chunk_index] = "failed" if chunk_failed else "complete"
        _checkpoint_manifest(store, sweep_id, spec, chunk_states, result)
        logger.info(
            "sweep %s: chunk %d/%d %s (%d solved, %d failed)",
            spec.name,
            chunk_index + 1,
            len(chunks),
            chunk_states[chunk_index],
            len(missing) - chunk_failed,
            chunk_failed,
        )

    result.chunks_run = executed
    result.seconds = time.perf_counter() - started
    if result.complete:
        store.put_run("sweep", result.summary())
    return result


def _checkpoint_manifest(
    store: ResultStore,
    sweep_id: str,
    spec: SweepSpec,
    chunk_states: List[str],
    result: SweepResult,
) -> None:
    store.put_manifest(
        sweep_id,
        {
            "schema": SWEEP_SCHEMA,
            "sweep_id": sweep_id,
            "spec": spec.to_dict(),
            "chunks": list(chunk_states),
            "units": [unit.describe() for unit in result.units],
        },
    )


def sweep_status(spec: SweepSpec, store: ResultStore) -> Dict:
    """Coverage of *spec* in *store* without solving anything.

    Counts per-unit presence directly against the store's objects (not the
    manifest), so it is correct even for a store populated by a different
    sweep that happened to share units.
    """
    instances = [ispec.build() for ispec in spec.instances]
    units = enumerate_units(spec, instances)
    stored = sum(1 for unit in units if store.contains(unit.key))
    failed = sum(
        1
        for unit in units
        if not store.contains(unit.key) and store.get_failure(unit.key) is not None
    )
    manifest = store.get_manifest(spec.sweep_id())
    return {
        "sweep": spec.name,
        "sweep_id": spec.sweep_id(),
        "units": len(units),
        "stored": stored,
        "pending": len(units) - stored,
        "failed": failed,
        "quarantined": len(store.quarantined()),
        "complete": stored == len(units),
        "manifest_chunks": (manifest or {}).get("chunks"),
    }
