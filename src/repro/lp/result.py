"""Solved-LP result object."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


class LPStatus(str, enum.Enum):
    """Normalized solver status."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"

    @classmethod
    def from_scipy(cls, status_code: int) -> "LPStatus":
        """Map :func:`scipy.optimize.linprog` status codes to this enum."""
        mapping = {
            0: cls.OPTIMAL,
            1: cls.ITERATION_LIMIT,
            2: cls.INFEASIBLE,
            3: cls.UNBOUNDED,
            4: cls.NUMERICAL_ERROR,
        }
        return mapping.get(status_code, cls.NUMERICAL_ERROR)


@dataclass
class LPResult:
    """Outcome of solving a :class:`~repro.lp.model.LinearProgram`.

    Attributes
    ----------
    status:
        Normalized solver status.
    objective:
        Optimal objective value (``nan`` unless optimal).
    x:
        Primal solution vector (empty unless optimal).
    solve_seconds:
        Wall-clock time spent inside the solver.
    message:
        Raw backend message, useful when a solve fails.
    metadata:
        Free-form extra information (LP sizes, solver options, ...).
    simplex_iterations:
        Simplex iterations the backend spent, when it reported them
        (warm-start telemetry: a seeded solve should need far fewer).
    ub_duals, eq_duals:
        Row duals of the inequality / equality blocks when the backend
        extracted them (dual-guided coarsening reads the capacity rows).
    """

    status: LPStatus
    objective: float
    x: np.ndarray
    solve_seconds: float = 0.0
    message: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)
    simplex_iterations: Optional[int] = None
    ub_duals: Optional[np.ndarray] = None
    eq_duals: Optional[np.ndarray] = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    def require_optimal(self) -> "LPResult":
        """Return self, raising if the solve did not reach optimality."""
        if not self.is_optimal:
            raise RuntimeError(
                f"LP did not solve to optimality: status={self.status.value}, "
                f"message={self.message!r}"
            )
        return self

    def values(self, indices: np.ndarray) -> np.ndarray:
        """Primal values for a (possibly multidimensional) index array.

        The returned array has the same shape as *indices*; tiny negative
        values produced by the interior-point/HiGHS tolerance are clipped to
        zero so downstream schedule code never sees ``-1e-12`` fractions.
        """
        values = self.x[np.asarray(indices, dtype=np.int64)]
        return np.clip(values, 0.0, None)

    def value(self, index: int) -> float:
        """Primal value of a single variable (clipped at zero)."""
        return float(max(self.x[int(index)], 0.0))

    def summary(self) -> Dict[str, object]:
        """Small dict for experiment reporting."""
        return {
            "status": self.status.value,
            "objective": self.objective,
            "solve_seconds": self.solve_seconds,
            **self.metadata,
        }

    @classmethod
    def failed(cls, status: LPStatus, message: str = "") -> "LPResult":
        """Construct a failure result with no solution vector."""
        return cls(
            status=status,
            objective=float("nan"),
            x=np.empty(0, dtype=float),
            message=message,
        )
