"""Sparse linear-program builder.

Time-indexed coflow LPs are large but extremely sparse (each constraint
touches a handful of the ``O(flows x slots x edges)`` variables), so the
builder accumulates constraint coefficients as COO triplets and only
materializes :class:`scipy.sparse.csr_matrix` objects once, at solve time —
never a dense matrix (see the scipy-sparse guidance in the hpc-parallel
coding guides).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse


class ConstraintSense(str, enum.Enum):
    """Direction of a linear constraint."""

    LESS_EQUAL = "<="
    GREATER_EQUAL = ">="
    EQUAL = "=="


@dataclass(frozen=True)
class VariableBlock:
    """A contiguous block of LP variables registered under one name.

    Blocks make it easy to map semantic variables like ``x[j][i][t]`` onto a
    flat index space: the builder hands back the starting offset and the
    caller keeps whatever multidimensional view it wants (typically a numpy
    array of indices).
    """

    name: str
    start: int
    size: int

    @property
    def stop(self) -> int:
        return self.start + self.size

    def indices(self) -> np.ndarray:
        """The flat variable indices of this block."""
        return np.arange(self.start, self.stop, dtype=np.int64)

    def reshape(self, *shape: int) -> np.ndarray:
        """Index array reshaped to the given semantic shape."""
        expected = int(np.prod(shape)) if shape else 0
        if expected != self.size:
            raise ValueError(
                f"block {self.name!r} has {self.size} variables, cannot reshape "
                f"to {shape}"
            )
        return self.indices().reshape(*shape)


class LinearProgram:
    """Incrementally-built LP ``min c^T x  s.t.  A_ub x <= b_ub, A_eq x = b_eq``.

    All variables are continuous with individual bounds (default ``[0, inf)``).
    Constraints may be added one at a time (:meth:`add_constraint`) or in
    vectorized batches (:meth:`add_constraints_batch`), which is what the
    coflow LP builders use on their hot paths.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._num_vars = 0
        self._blocks: Dict[str, VariableBlock] = {}
        # Objective contributions as (indices, coefficients) array pairs,
        # accumulated additively in objective_vector().
        self._objective: List[Tuple[np.ndarray, np.ndarray]] = []
        # Variable bounds as growable numpy arrays (vectorized fixing of
        # release-time slots is one of the LP assembly hot paths).
        self._lower = np.empty(0, dtype=float)
        self._upper = np.empty(0, dtype=float)
        # COO triplet buffers for inequality (<=) and equality constraints.
        self._ub_rows: List[np.ndarray] = []
        self._ub_cols: List[np.ndarray] = []
        self._ub_vals: List[np.ndarray] = []
        self._ub_rhs: List[float] = []
        self._eq_rows: List[np.ndarray] = []
        self._eq_cols: List[np.ndarray] = []
        self._eq_vals: List[np.ndarray] = []
        self._eq_rhs: List[float] = []

    # ------------------------------------------------------------------ #
    # variables
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return self._num_vars

    @property
    def num_constraints(self) -> int:
        """Total number of (inequality + equality) constraint rows."""
        return len(self._ub_rhs) + len(self._eq_rhs)

    @property
    def num_inequality_constraints(self) -> int:
        return len(self._ub_rhs)

    @property
    def num_equality_constraints(self) -> int:
        return len(self._eq_rhs)

    def add_variables(
        self,
        name: str,
        count: int,
        *,
        lower: float = 0.0,
        upper: Optional[float] = None,
    ) -> VariableBlock:
        """Register *count* new variables under *name*.

        Parameters
        ----------
        name:
            Unique block name (e.g. ``"x"``, ``"X"``, ``"C"``).
        count:
            Number of variables (may be 0 for degenerate instances).
        lower, upper:
            Bounds applied uniformly to the block.  ``upper=None`` means
            unbounded above.
        """
        if name in self._blocks:
            raise ValueError(f"variable block {name!r} already exists")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        block = VariableBlock(name=name, start=self._num_vars, size=count)
        self._blocks[name] = block
        self._num_vars += count
        self._lower = np.concatenate(
            [self._lower, np.full(count, float(lower))]
        )
        self._upper = np.concatenate(
            [self._upper, np.full(count, np.inf if upper is None else float(upper))]
        )
        return block

    def block(self, name: str) -> VariableBlock:
        """Look up a previously registered variable block."""
        return self._blocks[name]

    def set_bounds(self, index: int, lower: float, upper: Optional[float]) -> None:
        """Override the bounds of a single variable."""
        self._lower[index] = lower
        self._upper[index] = np.inf if upper is None else upper

    def fix_variable(self, index: int, value: float) -> None:
        """Pin a variable to a constant (used for pre-release-time slots)."""
        self._lower[index] = value
        self._upper[index] = value

    def fix_variables(self, indices: np.ndarray, value: float) -> None:
        """Pin many variables to a constant at once (vectorized).

        Accepts any integer array (it is flattened); the empty array is a
        no-op.  This is what the vectorized LP builder uses to zero out all
        pre-release-time slots in one call.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        self._lower[idx] = value
        self._upper[idx] = value

    # ------------------------------------------------------------------ #
    # objective
    # ------------------------------------------------------------------ #
    def set_objective_coefficient(self, index: int, coefficient: float) -> None:
        """Add *coefficient* to the objective weight of variable *index*."""
        self._objective.append(
            (
                np.array([int(index)], dtype=np.int64),
                np.array([float(coefficient)], dtype=float),
            )
        )

    def set_objective(
        self, indices: Sequence[int] | np.ndarray, coefficients: Sequence[float] | np.ndarray
    ) -> None:
        """Add objective coefficients for many variables at once."""
        indices = np.asarray(indices, dtype=np.int64)
        coefficients = np.asarray(coefficients, dtype=float)
        if indices.shape != coefficients.shape:
            raise ValueError("indices and coefficients must have the same shape")
        self._objective.append((indices.ravel(), coefficients.ravel().astype(float)))

    def objective_vector(self) -> np.ndarray:
        """Dense objective vector ``c`` (length = number of variables)."""
        c = np.zeros(self._num_vars, dtype=float)
        for idx, coef in self._objective:
            np.add.at(c, idx, coef)
        return c

    # ------------------------------------------------------------------ #
    # constraints
    # ------------------------------------------------------------------ #
    def add_constraint(
        self,
        indices: Sequence[int] | np.ndarray,
        coefficients: Sequence[float] | np.ndarray,
        sense: ConstraintSense | str,
        rhs: float,
    ) -> None:
        """Add a single constraint ``sum coef_k * x[idx_k]  <sense>  rhs``.

        ``>=`` constraints are stored negated as ``<=`` rows, matching the
        ``A_ub x <= b_ub`` form scipy expects.
        """
        sense = ConstraintSense(sense)
        idx = np.asarray(indices, dtype=np.int64).ravel()
        coef = np.asarray(coefficients, dtype=float).ravel()
        if idx.shape != coef.shape:
            raise ValueError("indices and coefficients must have the same length")
        if idx.size == 0:
            # A constraint with no variables is either trivially true or
            # infeasible; reject rather than silently drop it.
            raise ValueError("a constraint must involve at least one variable")
        if sense is ConstraintSense.EQUAL:
            row = np.full(idx.size, len(self._eq_rhs), dtype=np.int64)
            self._eq_rows.append(row)
            self._eq_cols.append(idx)
            self._eq_vals.append(coef)
            self._eq_rhs.append(float(rhs))
            return
        if sense is ConstraintSense.GREATER_EQUAL:
            coef = -coef
            rhs = -rhs
        row = np.full(idx.size, len(self._ub_rhs), dtype=np.int64)
        self._ub_rows.append(row)
        self._ub_cols.append(idx)
        self._ub_vals.append(coef)
        self._ub_rhs.append(float(rhs))

    def add_constraints_batch(
        self,
        row_indices: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
        rhs: np.ndarray,
        sense: ConstraintSense | str,
    ) -> None:
        """Add many constraints at once from pre-assembled COO triplets.

        Parameters
        ----------
        row_indices:
            Local row index (``0 .. len(rhs)-1``) of each coefficient.
        col_indices:
            Variable index of each coefficient.
        values:
            Coefficient values, same length as *row_indices*.
        rhs:
            One right-hand side per local row.
        sense:
            Sense shared by every row of the batch.
        """
        sense = ConstraintSense(sense)
        row_indices = np.asarray(row_indices, dtype=np.int64).ravel()
        col_indices = np.asarray(col_indices, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=float).ravel()
        rhs = np.asarray(rhs, dtype=float).ravel()
        if not (row_indices.shape == col_indices.shape == values.shape):
            raise ValueError("row, col and value arrays must have the same shape")
        if row_indices.size and row_indices.max(initial=0) >= rhs.size:
            raise ValueError("row index exceeds number of right-hand sides")
        if sense is ConstraintSense.EQUAL:
            offset = len(self._eq_rhs)
            self._eq_rows.append(row_indices + offset)
            self._eq_cols.append(col_indices)
            self._eq_vals.append(values)
            self._eq_rhs.extend(rhs.tolist())
            return
        if sense is ConstraintSense.GREATER_EQUAL:
            values = -values
            rhs = -rhs
        offset = len(self._ub_rhs)
        self._ub_rows.append(row_indices + offset)
        self._ub_cols.append(col_indices)
        self._ub_vals.append(values)
        self._ub_rhs.extend(rhs.tolist())

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #
    def _assemble(
        self,
        rows: List[np.ndarray],
        cols: List[np.ndarray],
        vals: List[np.ndarray],
        num_rows: int,
    ) -> Optional[sparse.csr_matrix]:
        if num_rows == 0:
            return None
        row = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        col = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
        val = np.concatenate(vals) if vals else np.empty(0, dtype=float)
        matrix = sparse.coo_matrix(
            (val, (row, col)), shape=(num_rows, self._num_vars)
        )
        return matrix.tocsr()

    def build_matrices(self):
        """Return ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` for scipy.

        ``A_ub``/``A_eq`` are CSR matrices or ``None`` when there are no
        constraints of that kind; ``bounds`` is a list of ``(low, high)``
        tuples.
        """
        c = self.objective_vector()
        a_ub = self._assemble(
            self._ub_rows, self._ub_cols, self._ub_vals, len(self._ub_rhs)
        )
        b_ub = np.array(self._ub_rhs, dtype=float) if self._ub_rhs else None
        a_eq = self._assemble(
            self._eq_rows, self._eq_cols, self._eq_vals, len(self._eq_rhs)
        )
        b_eq = np.array(self._eq_rhs, dtype=float) if self._eq_rhs else None
        bounds = [
            (float(lo), None if np.isinf(hi) else float(hi))
            for lo, hi in zip(self._lower, self._upper)
        ]
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    def bounds_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Variable bounds as ``(lower, upper)`` float arrays (copies).

        ``upper`` uses ``np.inf`` for unbounded variables.  Used by the
        solver's warm-start cache to fingerprint a program cheaply and by the
        builder-equivalence tests.
        """
        return self._lower.copy(), self._upper.copy()

    def size_summary(self) -> Dict[str, int]:
        """Quick size report used by the LP-scaling ablation benchmark."""
        nnz = sum(v.size for v in self._ub_vals) + sum(v.size for v in self._eq_vals)
        return {
            "variables": self._num_vars,
            "inequality_constraints": len(self._ub_rhs),
            "equality_constraints": len(self._eq_rhs),
            "nonzeros": int(nnz),
        }

    def __repr__(self) -> str:
        s = self.size_summary()
        return (
            f"LinearProgram(name={self.name!r}, vars={s['variables']}, "
            f"ineq={s['inequality_constraints']}, eq={s['equality_constraints']}, "
            f"nnz={s['nonzeros']})"
        )
