"""Linear-programming substrate.

The paper solves large time-indexed LPs with Gurobi.  This package provides
the offline equivalent: a small modelling layer
(:class:`~repro.lp.model.LinearProgram`) that assembles objective and
constraints into sparse (CSR) matrices, and a solver wrapper
(:func:`~repro.lp.solver.solve_lp`) around :func:`scipy.optimize.linprog`
with the HiGHS backend.  The LPs are identical to the paper's; only the
solver engine differs.
"""

from repro.lp.model import ConstraintSense, LinearProgram, VariableBlock
from repro.lp.result import LPResult, LPStatus
from repro.lp.solver import LPSolverError, solve_lp

__all__ = [
    "LinearProgram",
    "VariableBlock",
    "ConstraintSense",
    "LPResult",
    "LPStatus",
    "solve_lp",
    "LPSolverError",
]
